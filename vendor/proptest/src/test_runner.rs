//! Run configuration and the deterministic case RNG.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 stream seeded from the test's name: every run of a given
/// test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seeds the stream from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// A uniform value in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }
}
