//! Regex-subset string generation.
//!
//! Proptest treats a `&str` strategy as a regular expression over the
//! values it generates. The workspace's tests only use a simple subset —
//! sequences of character classes with optional `{m}` / `{m,n}`
//! repetition — so that is what this shim parses. Unsupported syntax
//! panics loudly rather than silently generating the wrong language.

use crate::test_runner::TestRng;

/// One `atom{m,n}` unit of the pattern.
struct Piece {
    /// The characters the class admits.
    choices: Vec<char>,
    /// Minimum repetitions.
    min: usize,
    /// Maximum repetitions (inclusive).
    max: usize,
}

/// Samples one string matching `pattern`.
///
/// # Panics
///
/// Panics on regex syntax outside the supported subset.
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = rng.range_inclusive(p.min as u64, p.max as u64) as usize;
        for _ in 0..n {
            let i = rng.below(p.choices.len() as u64) as usize;
            out.push(p.choices[i]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex strategy {pattern:?}"));
                i += 1;
                vec![c]
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$' => {
                panic!(
                    "unsupported regex syntax {:?} in strategy {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in regex strategy {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in regex strategy {pattern:?}");
        pieces.push(Piece { choices, min, max });
    }
    pieces
}

/// Parses a `[...]` class starting just after the `[`; returns the admitted
/// characters and the index just past the `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        // `a-z` range (a `-` before `]` or at the start is literal).
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            assert!(
                lo <= hi,
                "inverted class range in regex strategy {pattern:?}"
            );
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(lo);
            i += 1;
        }
    }
    assert!(
        chars.get(i) == Some(&']'),
        "unclosed character class in regex strategy {pattern:?}"
    );
    assert!(
        !set.is_empty(),
        "empty character class in regex strategy {pattern:?}"
    );
    (set, i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let s = sample_regex("[a-z_]{1,24}", &mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn leading_atom_then_class() {
        let mut rng = TestRng::from_seed(6);
        for _ in 0..200 {
            let s = sample_regex("[a-zA-Z][a-zA-Z0-9.]{0,32}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 33);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn printable_ascii_range() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = sample_regex("[ -~]{0,64}", &mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = TestRng::from_seed(8);
        for _ in 0..100 {
            let s = sample_regex("[a-c _-]{4}", &mut rng);
            assert_eq!(s.len(), 4);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ' | '_' | '-')));
        }
    }
}
