//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, range/`any`/`Just`/regex-string
//! strategies, `prop_map`, [`prop_oneof!`], `collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Unlike the real crate there is no shrinking: cases are generated from
//! a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream seeded
//! from the test's name, so every run of a given test explores the same
//! deterministic case sequence — which suits this repository's
//! determinism-first philosophy.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the common proptest form: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (no shrinking here, so this
/// is `assert!` with proptest's name).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
