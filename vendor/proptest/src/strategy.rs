//! The [`Strategy`] trait and the built-in strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// This shim has no shrinking: a strategy is just a deterministic sampler
/// over the test's RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (see [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (the engine behind
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128 - 1) as u64;
                let off = rng.range_inclusive(0, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                let off = rng.range_inclusive(0, span);
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (-255i32..=255).sample(&mut rng);
            assert!((-255..=255).contains(&v));
            let u = (1usize..2048).sample(&mut rng);
            assert!((1..2048).contains(&u));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_seed(7);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_applies() {
        let s = (0u32..10).prop_map(|v| v * 2);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }
}
