//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: a fixed size or a half-open range, mirroring
/// proptest's `SizeRange` conversions.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

/// A strategy producing `Vec`s of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.range_inclusive(self.size.min as u64, self.size.max as u64) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn length_bounds_hold() {
        let s = vec(any::<u8>(), 1..64);
        let mut rng = TestRng::from_seed(9);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((1..64).contains(&v.len()));
        }
    }

    #[test]
    fn fixed_length() {
        let s = vec(0i32..10, 64);
        let mut rng = TestRng::from_seed(10);
        assert_eq!(s.sample(&mut rng).len(), 64);
    }
}
