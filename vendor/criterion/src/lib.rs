//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of statistical timing it runs each
//! benchmark body a small fixed number of iterations and reports the mean
//! wall time, which keeps `cargo bench` (and bench compilation under
//! `cargo test`) working as a smoke test.

#![forbid(unsafe_code)]

use std::time::Instant;

const SMOKE_ITERS: u32 = 3;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Items processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A label `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs the measured body.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Runs `body` the configured number of times, timing the whole batch.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(body());
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / self.iters as f64;
        println!(
            "      {:>12.1} us/iter (smoke, {} iters)",
            mean_us, self.iters
        );
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_one(&name.to_string(), f);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput (informational here).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("    throughput: {t:?}");
        self
    }

    /// Sets the sample count (ignored by the smoke harness).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored by the smoke harness).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), f);
        self
    }

    /// Runs a parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    println!("    bench {name}");
    let mut b = Bencher { iters: SMOKE_ITERS };
    f(&mut b);
}

/// Re-export matching criterion's; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        $crate::criterion_group!($name, $($rest)*);
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
