//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small API subset it actually uses:
//! [`Bytes`] (cheaply cloneable, sliceable, immutable byte buffer),
//! [`BytesMut`] (growable builder that freezes into `Bytes`), and the
//! [`Buf`]/[`BufMut`] cursor traits with big-endian integer accessors —
//! the same wire semantics as the real crate, so code written against it
//! compiles and round-trips identically if the real dependency is ever
//! restored.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Internally an `Arc<[u8]>` plus a `[start, end)` window, so `clone` and
/// `slice` are O(1) and never copy payload bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Creates a `Bytes` viewing a static slice (no allocation in the real
    /// crate; here a one-time copy into shared storage).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// The number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `self` for the given range (O(1), shares
    /// storage).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` onward; `self` keeps the
    /// prefix.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable, unique byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// The number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Reserves room for at least `n` more bytes.
    pub fn reserve(&mut self, n: usize) {
        self.data.reserve(n);
    }

    /// Empties the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.data).fmt(f)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

/// Read cursor over a byte source. Integer accessors are big-endian,
/// matching the real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable contiguous slice at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on underflow (as do all `get_*` accessors).
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink. Integer writers are big-endian,
/// matching the real `bytes` crate.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes `v` repeated `cnt` times.
    fn put_bytes(&mut self, v: u8, cnt: usize) {
        self.put_slice(&vec![v; cnt]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut m = b.clone();
        let head = m.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&m[..], &[3, 4, 5]);
    }

    #[test]
    fn be_round_trip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0xdead_beef);
        m.put_u64(42);
        m.put_i64(-9);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_i64(), -9);
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn get_past_end_panics() {
        let mut b = Bytes::from_static(b"x");
        let _ = b.get_u32();
    }
}
