//! TOE: terminate the same TCP on the host or on the NIC (paper §1.1).
//!
//! Demonstrates the `hydra-net` TCP-lite stack — handshake, loss
//! recovery, reordering — and the offloading consequence: moving the
//! *same protocol state machine* from the host CPU to the NIC's
//! processor removes nearly all host cycles, interrupts, and two thirds
//! of the bus traffic, while delivering byte-identical data.
//!
//! Run with: `cargo run --release --example toe_tcp`

use hydra::net::tcp::{TcpEndpoint, TcpState};
use hydra::sim::time::SimTime;
use hydra::tivo::toe::{run_bulk_receive, TcpPlacement};

fn main() {
    // --- The protocol machine, standalone. -----------------------------
    let mut client = TcpEndpoint::client(1);
    let mut server = TcpEndpoint::listener(1000);
    let syn = client.connect(SimTime::ZERO);
    let synack = server
        .on_segment(&syn, SimTime::ZERO)
        .pop()
        .expect("syn-ack");
    for seg in client.on_segment(&synack, SimTime::ZERO) {
        server.on_segment(&seg, SimTime::ZERO);
    }
    assert_eq!(client.state(), TcpState::Established);
    assert_eq!(server.state(), TcpState::Established);
    println!("TCP-lite handshake complete: both endpoints Established");

    client.send(b"offloading is the generalization of the TOE");
    for seg in client.pump_output(SimTime::ZERO) {
        server.on_segment(&seg, SimTime::ZERO);
    }
    println!(
        "delivered: {:?}",
        String::from_utf8_lossy(&server.take_deliverable())
    );

    // --- The offload experiment. ----------------------------------------
    println!("\nBulk receive of 200 kB at 2% segment loss:");
    let data: Vec<u8> = (0..200_000usize).map(|i| (i % 249) as u8).collect();
    for placement in TcpPlacement::all() {
        let run = run_bulk_receive(placement, &data, 0.02, 42);
        assert_eq!(run.delivered, data, "TCP must deliver exactly");
        println!("  {run}");
    }
    println!("\nSame state machine, same recovery — only the cycle owner changed.");
}
