//! Deployment internals (§3.4 + §4.2): ODF → layout graph → placement →
//! linking at a device-allocated base → the two loading strategies.
//!
//! This example drives each stage of the pipeline by hand, printing what
//! the runtime normally does behind `CreateOffcode`.
//!
//! Run with: `cargo run --example offload_pipeline`

use hydra::core::device::{DeviceDescriptor, DeviceRegistry};
use hydra::core::layout::{LayoutGraph, Objective};
use hydra::core::offcode::synthetic_object;
use hydra::link::loader::{load_device_side, load_host_side, DeviceMemoryAllocator};
use hydra::odf::odf::OdfDocument;

const STREAMER_ODF: &str = r"<offcode>
  <package>
    <bindname>tivo.Streamer</bindname>
    <GUID>0x7101</GUID>
    <interface><include>/offcodes/streamer.wsdl</include></interface>
  </package>
  <sw-env>
    <import>
      <file>/offcodes/decoder.odf</file>
      <bindname>tivo.Decoder</bindname>
      <reference type=Gang pri=0/>
      <GUID>0x7103</GUID>
    </import>
  </sw-env>
  <targets>
    <device-class id=0x0001>
      <name>Network Device</name>
      <bus>pci</bus>
      <mac>ethernet</mac>
    </device-class>
  </targets>
</offcode>";

const DECODER_ODF: &str = r"<offcode>
  <package>
    <bindname>tivo.Decoder</bindname>
    <GUID>0x7103</GUID>
  </package>
  <targets>
    <device-class id=0x0003><name>GPU</name></device-class>
  </targets>
</offcode>";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Stage 1: parse the manifests. ----------------------------------
    let streamer = OdfDocument::parse(STREAMER_ODF)?;
    let decoder = OdfDocument::parse(DECODER_ODF)?;
    println!(
        "parsed ODFs: {} (imports {}), {}",
        streamer.bind_name, streamer.imports[0].bind_name, decoder.bind_name
    );

    // --- Stage 2: the offloading layout graph. --------------------------
    let mut devices = DeviceRegistry::new();
    let nic = devices.install(DeviceDescriptor::programmable_nic());
    let gpu = devices.install(DeviceDescriptor::gpu());
    let graph = LayoutGraph::from_odfs(&[streamer, decoder], &devices)?;
    println!(
        "layout graph: {} nodes, {} edges ({:?})",
        graph.nodes().len(),
        graph.edges().len(),
        graph.edges()[0].constraint
    );

    // --- Stage 3: placement. --------------------------------------------
    let placement = graph.resolve_ilp(&Objective::MaximizeOffloading)?;
    println!("placement: {placement}");
    assert_eq!(placement.device_of(hydra::core::layout::NodeIdx(0)), nic);
    assert_eq!(placement.device_of(hydra::core::layout::NodeIdx(1)), gpu);

    // --- Stage 4: dynamic loading, both strategies of §4.2. --------------
    let object = synthetic_object("tivo.Streamer", 16 * 1024, 2048);
    println!(
        "\nOffcode object: {} bytes loaded ({} undefined symbols: {:?})",
        object.load_size(),
        object.undefined_symbols().len(),
        object.undefined_symbols()
    );
    let exports = devices.get(nic).exports.clone();

    // Host-side linking: AllocateOffcodeMemory, link at the returned base,
    // ship the finished image.
    let mut alloc = DeviceMemoryAllocator::new(0x1_0000, 2 * 1024 * 1024);
    let (image, plan) = load_host_side(std::slice::from_ref(&object), &mut alloc, &exports)?;
    println!(
        "host-side link : base {:#x}, entry {:#x?}, {} B transferred, \
         host/dev work {}/{} units",
        image.base,
        image.symbol("tivo.Streamer_entry").expect("entry exists"),
        plan.transfer_bytes,
        plan.host_work_units,
        plan.device_work_units
    );

    // Device-side loading: ship the object as-is, the device links.
    let mut alloc2 = DeviceMemoryAllocator::new(0x1_0000, 2 * 1024 * 1024);
    let (image2, plan2) = load_device_side(std::slice::from_ref(&object), &mut alloc2, &exports)?;
    println!(
        "device-side link: base {:#x}, {} B transferred, host/dev work {}/{} units, \
         {} B device memory",
        image2.base,
        plan2.transfer_bytes,
        plan2.host_work_units,
        plan2.device_work_units,
        plan2.device_memory_bytes
    );
    println!(
        "\nidentical images either way: {}",
        image.bytes == image2.bytes
    );
    assert_eq!(image.bytes, image2.bytes);
    Ok(())
}
