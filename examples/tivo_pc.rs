//! TiVoPC: the paper's §6 case study, end to end.
//!
//! 1. Deploy the TiVo component graph through the HYDRA runtime and show
//!    that the Figure 8 layout falls out of the ODF constraints.
//! 2. Run the three video-server variants and print the jitter / CPU /
//!    L2 comparison (Figures 9–10, Tables 2–3).
//! 3. Run the two client variants (Table 4).
//! 4. Record a movie through the smart disk and play it back, verifying
//!    the decoded pixels.
//!
//! Run with: `cargo run --release --example tivo_pc`

use hydra::core::device::{DeviceDescriptor, DeviceRegistry};
use hydra::core::runtime::{Runtime, RuntimeConfig};
use hydra::sim::time::SimDuration;
use hydra::tivo::components::{guids, register_tivo_client};
use hydra::tivo::experiments::{fig10_tab3, fig9_tab2, tab4_client, SuiteConfig};
use hydra::tivo::playback::{run_record_playback, PlaybackConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Deployment: the Figure 8 layout. ---------------------------
    let mut devices = DeviceRegistry::new();
    devices.install(DeviceDescriptor::programmable_nic());
    devices.install(DeviceDescriptor::smart_disk());
    devices.install(DeviceDescriptor::gpu());
    let mut rt = Runtime::new(devices, RuntimeConfig::default());
    register_tivo_client(&mut rt)?;
    rt.create_offcode(guids::GUI, hydra::sim::time::SimTime::ZERO)?;

    println!("TiVoPC offloading layout (Figure 8):");
    for (name, guid) in [
        ("tivo.Gui", guids::GUI),
        ("tivo.Streamer.Net", guids::STREAMER_NET),
        ("tivo.Streamer.Disk", guids::STREAMER_DISK),
        ("tivo.Decoder", guids::DECODER),
        ("tivo.Display", guids::DISPLAY),
        ("tivo.File", guids::FILE),
    ] {
        let id = rt.get_offcode(guid).expect("deployed");
        println!("  {:<20} -> {}", name, rt.device_of(id).expect("placed"));
    }

    // --- 2 + 3. The measured experiments (short runs; use the repro
    // binary with --full for the paper's 10-minute durations). ----------
    let cfg = SuiteConfig {
        duration: SimDuration::from_secs(20),
        seed: 42,
    };
    println!("\n{}", fig9_tab2(&cfg));
    println!("{}", fig10_tab3(&cfg));
    println!("{}", tab4_client(&cfg));

    // --- 4. Record + playback with real bytes. -------------------------
    let run = run_record_playback(PlaybackConfig::default())?;
    println!(
        "Record/playback: {} frames, worst PSNR {:.1} dB, pacing std {:.3} ms",
        run.frames_played,
        run.worst_psnr_db,
        run.playback_gaps_ms.summary().std_dev
    );
    Ok(())
}
