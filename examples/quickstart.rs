//! Quickstart: the paper's Figure 3 flow, end to end.
//!
//! Build a machine with a programmable NIC, register a Checksum Offcode
//! with its ODF, deploy it (`CreateOffcode`), set up a reliable zero-copy
//! unicast channel, install a handler, and invoke the Offcode through a
//! typed proxy — both synchronously and over the channel.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use hydra::core::call::{Call, Value};
use hydra::core::channel::ChannelConfig;
use hydra::core::device::{DeviceDescriptor, DeviceRegistry};
use hydra::core::error::RuntimeError;
use hydra::core::offcode::{Offcode, OffcodeCtx};
use hydra::core::proxy::Proxy;
use hydra::core::runtime::{Runtime, RuntimeConfig};
use hydra::hw::cpu::Cycles;
use hydra::odf::odf::{class_ids, DeviceClassSpec, Guid, OdfDocument};
use hydra::odf::wsdl::{InterfaceSpec, OperationSpec, TypeTag};
use hydra::sim::time::SimTime;

const CHECKSUM_GUID: Guid = Guid(0x6060843); // the GUID from Figure 4

/// A Fletcher-32 checksum Offcode — the paper's running example.
#[derive(Debug)]
struct ChecksumOffcode;

impl Offcode for ChecksumOffcode {
    fn guid(&self) -> Guid {
        CHECKSUM_GUID
    }

    fn bind_name(&self) -> &'static str {
        "hydra.net.utils.Checksum"
    }

    fn handle_call(&mut self, ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError> {
        match call.operation.as_str() {
            "checksum" => {
                let data = call.args[0]
                    .as_bytes()
                    .ok_or_else(|| RuntimeError::Rejected("expected bytes".into()))?;
                // Charge ~1 cycle per byte of NIC processor time.
                ctx.charge(Cycles::new(data.len() as u64));
                let (mut a, mut b) = (0u32, 0u32);
                for chunk in data.chunks(2) {
                    let v = chunk.iter().fold(0u32, |acc, &x| (acc << 8) | u32::from(x));
                    a = (a + v) % 65535;
                    b = (b + a) % 65535;
                }
                Ok(Value::U32((b << 16) | a))
            }
            other => Err(RuntimeError::UnknownOperation(other.to_owned())),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The machine: host + programmable NIC. ------------------------
    let mut devices = DeviceRegistry::new();
    let nic = devices.install(DeviceDescriptor::programmable_nic());
    let mut rt = Runtime::new(devices, RuntimeConfig::default());

    // --- The Offcode's manifesto (ODF), as in Figure 4. ----------------
    let odf = OdfDocument::new("hydra.net.utils.Checksum", CHECKSUM_GUID)
        .with_interface("/offcodes/checksum.wsdl")
        .with_target(DeviceClassSpec {
            id: class_ids::NETWORK,
            name: "Network Device".into(),
            bus: Some("pci".into()),
            mac: Some("ethernet".into()),
            vendor: Some("3COM".into()),
        });
    println!("--- ODF ---\n{}", odf.to_xml());
    rt.register_offcode(odf, || Box::new(ChecksumOffcode))?;

    // --- CreateOffcode: the whole deployment pipeline runs here. -------
    let id = rt.create_offcode(CHECKSUM_GUID, SimTime::ZERO)?;
    println!(
        "deployed hydra.net.utils.Checksum to {}",
        rt.device_of(id).expect("just deployed")
    );
    assert_eq!(rt.device_of(id), Some(nic));

    // --- Figure 3: create a reliable zero-copy channel and connect. ----
    let channel = rt.create_channel(ChannelConfig::figure3(nic))?;
    rt.connect_offcode(channel, id)?;
    println!(
        "channel up via provider '{}'",
        rt.executive_mut()
            .get(channel)
            .expect("channel exists")
            .provider_name()
    );

    // --- Transparent invocation through a typed proxy. -----------------
    let spec = InterfaceSpec::new("IChecksum", CHECKSUM_GUID).with_operation(OperationSpec {
        name: "checksum".into(),
        inputs: vec![("data".into(), TypeTag::Bytes)],
        output: TypeTag::U32,
    });
    let mut proxy = Proxy::new(spec, id);
    let call = proxy.call(
        "checksum",
        vec![Value::Bytes(Bytes::from_static(
            b"tapping into the fountain of cpus",
        ))],
    )?;

    // Send the Call over the channel and pump the runtime.
    let deliver_at = rt.send_call(channel, &call, SimTime::ZERO)?;
    let results = rt.pump(deliver_at);
    for r in &results {
        println!("channel dispatch -> {:?}", r.result);
    }

    // Or invoke synchronously (what the proxy collapses to on-device).
    let direct = rt.invoke(id, &call, deliver_at)?;
    println!("direct invoke  -> {direct}");
    assert_eq!(results[0].result.as_ref().ok(), Some(&direct));
    println!("NIC cycles booked: {}", rt.device_work(nic));
    Ok(())
}
