//! §5 walkthrough: the offloading layout graph as an ILP.
//!
//! Builds a deliberately adversarial layout, prints the generated integer
//! program, and solves it with both the greedy heuristic and the exact
//! branch-and-bound ILP under both of the paper's objectives — showing
//! the case the paper warns about: "for complex scenarios a greedy
//! solution is not always optimal".
//!
//! Run with: `cargo run --example layout_optimizer`

use hydra::core::layout::{LayoutGraph, LayoutNode, Objective};
use hydra::ilp::solve_ilp;
use hydra::odf::odf::{ConstraintKind, Guid};

fn main() {
    // One device (besides the host) with limited bus capacity, three
    // Offcodes: a big standalone one, and a Pull-tied pair whose combined
    // value exceeds the big one.
    let mut g = LayoutGraph::new();
    let big = g.add_node(LayoutNode {
        guid: Guid(1),
        bind_name: "analytics.BulkScan".into(),
        compat: vec![true, true],
        price: 10.0,
    });
    let dec = g.add_node(LayoutNode {
        guid: Guid(2),
        bind_name: "tivo.Decoder".into(),
        compat: vec![true, true],
        price: 6.0,
    });
    let dis = g.add_node(LayoutNode {
        guid: Guid(3),
        bind_name: "tivo.Display".into(),
        compat: vec![true, true],
        price: 6.0,
    });
    g.add_edge(dec, dis, ConstraintKind::Pull);
    let _ = big;

    println!(
        "layout graph: {} offcodes, {} constraint edges",
        g.nodes().len(),
        g.edges().len()
    );
    for n in g.nodes() {
        println!(
            "  {:<22} price {:>4}  compat {:?}",
            n.bind_name, n.price, n.compat
        );
    }

    // Objective 2: maximize bus usage under a capacity of 12.
    let obj = Objective::MaximizeBusUsage {
        capacities: vec![f64::INFINITY, 12.0],
    };

    // Show the generated integer program.
    let (problem, _vars) = g.to_ilp(&obj).expect("objective matches graph");
    println!(
        "\ngenerated ILP: {} binary variables, {} constraints",
        problem.num_vars(),
        problem.num_constraints()
    );
    for c in problem.constraints() {
        let terms: Vec<String> = c
            .terms
            .iter()
            .map(|(v, k)| format!("{k:+}·x{}", v.index()))
            .collect();
        println!("  {:<10} {} {} {}", c.name, terms.join(" "), c.sense, c.rhs);
    }

    // Solve: greedy vs exact.
    let greedy = g.resolve_greedy(&obj);
    let exact = g
        .resolve_ilp(&obj)
        .expect("host fallback is always feasible");
    println!(
        "\ngreedy placement: {greedy}   (bus value {})",
        g.bus_value(&greedy)
    );
    println!(
        "ILP placement:    {exact}   (bus value {})",
        g.bus_value(&exact)
    );
    let result = solve_ilp(&problem);
    println!(
        "branch-and-bound explored {} nodes, pruned {}",
        result.stats.nodes, result.stats.pruned
    );
    assert!(g.bus_value(&exact) > g.bus_value(&greedy));
    println!("\n=> greedy grabbed the big Offcode first and starved the Pull pair;");
    println!("   the exact ILP offloads the pair (value 12 > 10) — the paper's §5 point.");

    // Objective 1 for contrast: maximize offloading count.
    let count = g
        .resolve_ilp(&Objective::MaximizeOffloading)
        .expect("feasible");
    println!(
        "\nunder 'maximized offloading': {count} ({} of 3 offloaded)",
        count.offloaded_count()
    );
}
