//! # HYDRA — operating-system support for programmable devices
//!
//! A full reproduction of *"Tapping into the Fountain of CPUs: On Operating
//! System Support for Programmable Devices"* (Weinsberg, Dolev, Anker,
//! Ben-Yehuda, Wyckoff — ASPLOS 2008) as a Rust workspace.
//!
//! This facade crate re-exports every subsystem:
//!
//! - [`sim`] — deterministic discrete-event simulation kernel
//! - [`hw`] — host hardware models (CPU, L2 cache, buses, DMA, interrupts)
//! - [`net`] — network substrate (packets, switch, UDP-lite, NFS-lite)
//! - [`media`] — toy MPEG codec with I/P/B group-of-pictures structure
//! - [`odf`] — Offcode Description Files (XML manifesto parser)
//! - [`link`] — HOF object format, relocations, dynamic offcode loading
//! - [`ilp`] — simplex LP + branch-and-bound 0/1 ILP solver
//! - [`obs`] — deterministic observability (counters, histograms, spans)
//! - [`verify`] — static deployment verifier (manifest/constraint/
//!   capacity/channel analysis with stable `HVxxx` diagnostics)
//! - [`core`] — the HYDRA runtime: offcodes, channels, layout, deployment
//! - [`devices`] — programmable NIC, smart disk, GPU device models
//! - [`tivo`] — the TiVoPC case study and the paper's experiment harness
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and per-experiment index.

#![forbid(unsafe_code)]

pub use hydra_core as core;
pub use hydra_devices as devices;
pub use hydra_hw as hw;
pub use hydra_ilp as ilp;
pub use hydra_link as link;
pub use hydra_media as media;
pub use hydra_net as net;
pub use hydra_obs as obs;
pub use hydra_odf as odf;
pub use hydra_sim as sim;
pub use hydra_tivo as tivo;
pub use hydra_verify as verify;
