//! Cost-adaptive provider selection: per-size-bucket online re-ranking
//! of candidate providers from a channel's live [`CostProfile`].

use std::collections::BTreeMap;

use hydra_obs::Histogram;

use super::{Channel, ChannelCost, CostProfile};

/// Policy knobs for online, per-size-bucket provider selection on a
/// cost-adaptive channel (see
/// [`super::ChannelExecutive::create_channel_adaptive`]).
///
/// All decisions are functions of the channel's own [`CostProfile`]
/// and sim-time traffic, so selection is deterministic and
/// byte-reproducible: same traffic, same choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Messages a size bucket must accumulate before its first
    /// re-evaluation; colder buckets keep the static advertised-cost
    /// argmin.
    pub min_samples: u64,
    /// Messages between re-evaluations of a bucket: selection is only
    /// reconsidered at these epoch boundaries, never mid-epoch.
    pub epoch: u64,
    /// Hysteresis numerator: a challenger wins only when its estimated
    /// cost times `hysteresis_den` is at most the incumbent's times
    /// `hysteresis_num` (7/8 = the challenger must be ≥ 12.5% better).
    pub hysteresis_num: u64,
    /// Hysteresis denominator (see `hysteresis_num`).
    pub hysteresis_den: u64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            min_samples: 8,
            epoch: 16,
            hysteresis_num: 7,
            hysteresis_den: 8,
        }
    }
}

/// Online selection state of a cost-adaptive channel: the live
/// candidate providers and the per-size-bucket incumbents.
#[derive(Debug)]
pub(super) struct AdaptiveState {
    /// `(name, advertised cost)` of every capable provider, in
    /// registration order (the deterministic tie-break order).
    pub(super) candidates: Vec<(String, ChannelCost)>,
    pub(super) policy: AdaptivePolicy,
    /// Active candidate index per size bucket (keyed by the bucket's
    /// upper bound, as in [`CostProfile::size_bucket`]).
    pub(super) selected: BTreeMap<u64, usize>,
    /// Epoch-boundary re-selections that actually changed a bucket's
    /// provider.
    pub(super) switches: u64,
}

impl AdaptiveState {
    /// Fresh selection state over `candidates` under `policy`.
    pub(super) fn new(candidates: Vec<(String, ChannelCost)>, policy: AdaptivePolicy) -> Self {
        AdaptiveState {
            candidates,
            policy,
            selected: BTreeMap::new(),
            switches: 0,
        }
    }

    /// Index of the candidate with the lowest unloaded advertised
    /// latency for a `bytes`-sized message (ties keep the earliest
    /// registration).
    fn static_default(&self, bytes: usize) -> usize {
        self.candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, c))| c.latency(bytes))
            .map_or(0, |(i, _)| i)
    }
}

impl Channel {
    /// Whether this channel re-selects its provider online from the
    /// live cost profile.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive.is_some()
    }

    /// Epoch-boundary provider switches performed so far (zero on a
    /// fixed-provider channel).
    pub fn provider_switches(&self) -> u64 {
        self.adaptive.as_ref().map_or(0, |s| s.switches)
    }

    /// Names of the live candidate providers of an adaptive channel
    /// (empty on a fixed-provider channel), in registration order.
    pub fn candidate_providers(&self) -> Vec<&str> {
        self.adaptive.as_ref().map_or_else(Vec::new, |s| {
            s.candidates.iter().map(|(n, _)| n.as_str()).collect()
        })
    }

    /// Online provider selection for the next send of `bytes`: picks
    /// (and possibly re-picks) the active candidate for the payload's
    /// size bucket from the live [`CostProfile`], then installs it as
    /// the channel's current provider/cost. No-op on fixed channels.
    ///
    /// A cold bucket (fewer than [`AdaptivePolicy::min_samples`]
    /// observations) uses the static argmin of the advertised unloaded
    /// latency. Warm buckets re-rank only at epoch boundaries: when the
    /// observed p50 shows the pipe is saturated (≥ 2× the incumbent's
    /// unloaded latency, i.e. queueing dominates), candidates are
    /// compared by their *streaming* marginal latency — where a
    /// double-buffered provider's hidden launch pays off — otherwise by
    /// unloaded latency. The incumbent keeps the bucket unless a
    /// challenger clears the policy's hysteresis margin, so selection
    /// cannot flap.
    pub(super) fn select_provider(&mut self, bytes: usize) {
        let Some(state) = self.adaptive.as_mut() else {
            return;
        };
        let bucket = CostProfile::size_bucket(bytes);
        #[allow(clippy::cast_possible_truncation)]
        let rep = bucket as usize;
        let idx = match state.selected.get(&bucket) {
            None => {
                let idx = state.static_default(rep);
                state.selected.insert(bucket, idx);
                idx
            }
            Some(&incumbent) => {
                let hist = self.profile.latency_for(rep);
                let count = hist.map_or(0, Histogram::count);
                let due = count >= state.policy.min_samples
                    && (count - state.policy.min_samples).is_multiple_of(state.policy.epoch);
                if due {
                    let observed_p50 = hist.and_then(Histogram::p50).unwrap_or(0);
                    let inc_cost = state.candidates[incumbent].1;
                    let hot = observed_p50 >= inc_cost.latency(rep).as_nanos().saturating_mul(2);
                    let est = |c: &ChannelCost| {
                        if hot {
                            c.streaming_latency(rep).as_nanos()
                        } else {
                            c.latency(rep).as_nanos()
                        }
                    };
                    let challenger = state
                        .candidates
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, c))| est(c))
                        .map_or(incumbent, |(i, _)| i);
                    let wins = challenger != incumbent
                        && u128::from(est(&state.candidates[challenger].1))
                            * u128::from(state.policy.hysteresis_den)
                            <= u128::from(est(&state.candidates[incumbent].1))
                                * u128::from(state.policy.hysteresis_num);
                    if wins {
                        state.selected.insert(bucket, challenger);
                        state.switches += 1;
                        self.recorder.counter_incr(
                            "channel.provider_switch",
                            &state.candidates[challenger].0,
                        );
                        challenger
                    } else {
                        incumbent
                    }
                } else {
                    incumbent
                }
            }
        };
        let (name, cost) = &state.candidates[idx];
        if *name != self.provider_name {
            self.provider_name.clone_from(name);
            self.cost = *cost;
        }
    }
}
