//! Channel observability: per-channel counters, the live cost profile,
//! and the queue-depth level track.

use std::collections::{BTreeMap, VecDeque};

use hydra_obs::Histogram;
use hydra_sim::time::SimDuration;

use super::Channel;

/// Level-track name for per-channel descriptor-ring occupancy: the
/// deepest open endpoint queue, sampled into telemetry windows by the
/// shared recorder (labeled `chan#N`).
pub const CHANNEL_QUEUE_DEPTH: &str = "channel.queue_depth";

/// Live cost profile of one channel: what communicating through it has
/// *actually* cost so far, as opposed to the provider's advertised
/// [`super::ChannelCost`].
///
/// Latencies are measured from the caller's `now` to the message's
/// delivery instant, so queueing behind earlier messages and retry
/// backoff are included — this is the observed price, not the unloaded
/// one. Messages are binned by payload size into power-of-two buckets
/// (bucket `B` covers sizes in `(B/2, B]`), each bucket holding a
/// latency [`Histogram`] so p50/p99 per size class fall out of
/// [`Histogram::quantile`]. The fixed per-message charge paid at each
/// doorbell accumulates separately as launch overhead — the channel
/// analogue of kernel-launch cost.
#[derive(Debug, Clone, Default)]
pub struct CostProfile {
    messages: u64,
    bytes: u64,
    doorbells: u64,
    launch_overhead_ns: u64,
    ewma_latency_ns: u64,
    first_send_ns: Option<u64>,
    last_delivery_ns: u64,
    by_size: BTreeMap<u64, Histogram>,
}

impl CostProfile {
    /// The power-of-two size bucket a payload of `bytes` falls into
    /// (its upper bound; zero-length payloads share the 1-byte bucket).
    pub fn size_bucket(bytes: usize) -> u64 {
        (bytes.max(1) as u64).next_power_of_two()
    }

    pub(super) fn record(&mut self, send_ns: u64, bytes: u64, latency_ns: u64) {
        self.messages += 1;
        self.bytes += bytes;
        self.ewma_latency_ns = if self.messages == 1 {
            latency_ns
        } else {
            // Integer EWMA with alpha = 1/8: old weight 7/8, new 1/8.
            (7 * self.ewma_latency_ns + latency_ns) / 8
        };
        if self.first_send_ns.is_none() {
            self.first_send_ns = Some(send_ns);
        }
        self.last_delivery_ns = self.last_delivery_ns.max(send_ns + latency_ns);
        self.by_size
            .entry(Self::size_bucket(bytes as usize))
            .or_default()
            .record(latency_ns);
    }

    pub(super) fn doorbell(&mut self, per_message: SimDuration) {
        self.doorbells += 1;
        self.launch_overhead_ns += per_message.as_nanos();
    }

    /// Messages delivered through the channel.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Doorbells rung (single sends, batch submissions, and per-message
    /// retry admissions each pay one).
    pub fn doorbells(&self) -> u64 {
        self.doorbells
    }

    /// Accumulated fixed per-message charge across all doorbells.
    pub fn launch_overhead_ns(&self) -> u64 {
        self.launch_overhead_ns
    }

    /// Exponentially-weighted moving average of observed latency
    /// (alpha 1/8), in nanoseconds. Zero before the first message.
    pub fn ewma_latency_ns(&self) -> u64 {
        self.ewma_latency_ns
    }

    /// Observed payload throughput over the channel's active span
    /// (first send to last delivery), in bytes per second. `None` until
    /// the span is non-empty.
    pub fn throughput_bytes_per_sec(&self) -> Option<u64> {
        let first = self.first_send_ns?;
        let span = self.last_delivery_ns.checked_sub(first)?;
        if span == 0 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation)]
        Some(((u128::from(self.bytes) * 1_000_000_000) / u128::from(span)) as u64)
    }

    /// The size buckets seen so far, ascending: `(upper bound bytes,
    /// latency histogram)`.
    pub fn size_buckets(&self) -> impl Iterator<Item = (u64, &Histogram)> {
        self.by_size.iter().map(|(&b, h)| (b, h))
    }

    /// The latency histogram of the bucket a payload of `bytes` falls
    /// into, if any message of that class has been delivered.
    pub fn latency_for(&self, bytes: usize) -> Option<&Histogram> {
        self.by_size.get(&Self::size_bucket(bytes))
    }
}

/// Per-channel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages consumed by receivers.
    pub received: u64,
    /// Messages dropped (unreliable channel, ring full).
    pub dropped: u64,
    /// Payload bytes accepted.
    pub bytes: u64,
}

impl Channel {
    /// Publishes the deepest open endpoint queue as the channel's
    /// [`CHANNEL_QUEUE_DEPTH`] level track.
    pub(super) fn publish_queue_depth(&self) {
        let depth = self.open_queues().map(VecDeque::len).max().unwrap_or(0);
        self.recorder
            .level_set(CHANNEL_QUEUE_DEPTH, &self.depth_label, depth as u64);
    }
}
