//! Channel reliability: delivery guarantees, ring backpressure, and the
//! retry policy consulted when a send finds every slot taken.
//!
//! Backpressure is pluggable: the channel consults a
//! [`BackpressurePolicy`] trait object whenever the descriptor ring is
//! full, so distributed deployments can substitute cross-host admission
//! policies without touching the delivery path in
//! [`super::delivery`]. The default, [`ExponentialBackoff`], implements
//! the classic deterministic sim-time backoff described by
//! [`RetryPolicy`].

use std::fmt;

use hydra_obs::TraceCtx;
use hydra_sim::time::{SimDuration, SimTime};

use super::{Channel, ChannelError};

/// Delivery guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reliability {
    /// Sends fail (rather than drop) when buffers are exhausted.
    Reliable,
    /// Sends drop silently when buffers are exhausted.
    Unreliable,
}

/// Bounded deterministic retry policy for sends that hit a full ring.
///
/// When a send finds every (open) endpoint queue at capacity, a channel
/// with retry enabled re-attempts at `backoff`, `2·backoff`, `4·backoff`…
/// after `now` — classic exponential backoff, but in *sim time*, so it is
/// byte-reproducible. An attempt succeeds once the descriptor-ring model
/// says slots have freed (payloads already consumed by the device side,
/// i.e. messages whose delivery instant has passed). The policy gives up
/// after `max_attempts` attempts or once the next attempt would land past
/// `now + timeout`, whichever comes first — the send then fails exactly
/// like it would without retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Retry attempts after the initial try; `0` disables retry.
    pub max_attempts: u32,
    /// Wait before the first retry; doubles on each further attempt.
    pub backoff: SimDuration,
    /// Per-send deadline: no attempt is made after `now + timeout`.
    pub timeout: SimDuration,
}

impl RetryPolicy {
    /// No retry: a full ring fails/drops immediately (the historical
    /// behavior, and the default).
    pub const fn none() -> Self {
        RetryPolicy {
            max_attempts: 0,
            backoff: SimDuration::ZERO,
            timeout: SimDuration::ZERO,
        }
    }

    /// A retry policy with the given bounds.
    pub const fn new(max_attempts: u32, backoff: SimDuration, timeout: SimDuration) -> Self {
        RetryPolicy {
            max_attempts,
            backoff,
            timeout,
        }
    }

    /// Whether the policy retries at all.
    pub const fn enabled(&self) -> bool {
        self.max_attempts > 0
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// An admission verdict from a [`BackpressurePolicy`]: when the blocked
/// send may enter the ring and how many backoff attempts it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The sim-time instant the send is admitted at.
    pub at: SimTime,
    /// Backoff attempts spent (1-based: the first retry is attempt 1).
    pub attempts: u32,
}

/// Read-only view of a channel's descriptor ring, handed to a
/// [`BackpressurePolicy`] so it can probe future slot availability
/// without access to the channel's mutable state.
pub struct RingView<'a> {
    channel: &'a Channel,
    capacity: usize,
}

impl RingView<'_> {
    /// The ring's usable capacity (configured capacity minus slots
    /// wedged by injected ring-exhaustion faults).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether an attempt at `at` would find a free slot in every open
    /// endpoint queue. Slot availability follows the descriptor-ring
    /// model: a slot frees once the device side has consumed the
    /// payload, i.e. once a queued message's delivery instant has
    /// passed (receiver-side buffering is the receiver's business, not
    /// the ring's).
    pub fn admits_at(&self, at: SimTime) -> bool {
        self.channel
            .open_queues()
            .all(|q| q.iter().filter(|m| m.deliver_at > at).count() < self.capacity)
    }

    /// The retry policy configured on the channel, for policies that
    /// honor the per-channel [`RetryPolicy`] knobs.
    pub fn retry(&self) -> RetryPolicy {
        self.channel.config.retry
    }
}

/// A pluggable admission policy consulted when a send finds the ring
/// full.
///
/// Implementations must be deterministic functions of the ring view and
/// `now` — no wall clocks, no randomness — so channel behavior stays
/// byte-reproducible. Returning `None` makes the send fail (reliable)
/// or drop (unreliable) exactly as if retry were disabled.
pub trait BackpressurePolicy: fmt::Debug {
    /// The first instant at which the policy can admit the blocked
    /// send, plus the attempts spent finding it; `None` gives up.
    fn admit(&self, ring: &RingView<'_>, now: SimTime) -> Option<Admission>;
}

/// The default [`BackpressurePolicy`]: deterministic exponential
/// backoff driven by the channel's configured [`RetryPolicy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExponentialBackoff;

impl BackpressurePolicy for ExponentialBackoff {
    fn admit(&self, ring: &RingView<'_>, now: SimTime) -> Option<Admission> {
        let policy = ring.retry();
        if !policy.enabled() {
            return None;
        }
        let deadline = now.saturating_add(policy.timeout);
        let mut backoff = policy.backoff;
        let mut attempt_at = now;
        for attempt in 1..=policy.max_attempts {
            let next = attempt_at.saturating_add(backoff);
            if next > deadline || next == SimTime::MAX {
                // Past the per-send deadline — or pinned at the sim-time
                // ceiling, where the clock can no longer advance between
                // attempts and "later" does not exist.
                return None;
            }
            if attempt > 1 && next == attempt_at {
                // Backoff stagnated (saturated doubling): every further
                // attempt would land on this same instant. Give up
                // instead of burning the remaining attempts at it.
                return None;
            }
            attempt_at = next;
            if ring.admits_at(attempt_at) {
                return Some(Admission {
                    at: attempt_at,
                    attempts: attempt,
                });
            }
            backoff = SimDuration::from_nanos(backoff.as_nanos().saturating_mul(2));
        }
        None
    }
}

impl Channel {
    /// Replaces the channel's backpressure policy. The default is
    /// [`ExponentialBackoff`], which honors the config's
    /// [`RetryPolicy`]; cross-host providers can install their own
    /// admission logic without touching the delivery path.
    pub fn set_backpressure_policy(&mut self, policy: Box<dyn BackpressurePolicy>) {
        self.backpressure = policy;
    }

    /// First sim-time instant in `(now, now + timeout]` at which the
    /// backpressure policy can squeeze a message into the ring, plus the
    /// number of backoff attempts it took.
    pub(super) fn retry_admit(&self, now: SimTime) -> Option<(SimTime, u32)> {
        let view = RingView {
            channel: self,
            capacity: self.usable_capacity(),
        };
        self.backpressure
            .admit(&view, now)
            .map(|a| (a.at, a.attempts))
    }

    /// Terminal accounting for a single send that found the ring full and
    /// exhausted (or lacked) retry: reject on reliable, drop on
    /// unreliable — identical to the historical no-retry behavior.
    pub(super) fn send_full_fallout(
        &mut self,
        now: SimTime,
        bytes: u64,
        ctx: TraceCtx,
    ) -> Result<SimTime, ChannelError> {
        match self.config.reliability {
            Reliability::Reliable => {
                self.recorder
                    .counter_incr("channel.rejected", &self.provider_name);
                self.recorder
                    .trace_drop(ctx, "channel.reject", &self.provider_name, 0, now, bytes);
                Err(ChannelError::WouldBlock)
            }
            Reliability::Unreliable => {
                self.stats.dropped += 1;
                self.recorder
                    .counter_incr("channel.dropped", &self.provider_name);
                self.recorder.trace_drop(
                    ctx,
                    "channel.drop",
                    &self.provider_name,
                    self.target_pid(),
                    now,
                    bytes,
                );
                Ok(self.busy_until.max(now) + self.cost.latency(bytes as usize))
            }
        }
    }

    /// Wedges `slots` descriptor-ring slots (injected ring-exhaustion
    /// fault): the usable capacity becomes `capacity - slots`. Wedged
    /// slots belong to the live ring — they are swept when the last
    /// endpoint closes (teardown/migration) or when an endpoint re-opens
    /// on a fresh ring.
    pub fn set_wedged_slots(&mut self, slots: usize) {
        self.wedged_slots = slots;
    }

    /// Descriptor-ring slots currently wedged by injected faults.
    pub fn wedged_slots(&self) -> usize {
        self.wedged_slots
    }

    /// The ring capacity minus wedged slots.
    pub(super) fn usable_capacity(&self) -> usize {
        self.config.capacity.saturating_sub(self.wedged_slots)
    }
}
