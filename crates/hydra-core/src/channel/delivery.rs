//! Channel delivery: configuration, provider cost models, and the
//! single-message send/recv data path.
//!
//! Everything in this module is about moving one message from a sender
//! to the endpoint queues of a channel — admission, serialization on the
//! pipe, delivery instants, and the causal trace chain. Ring-full
//! fallout and retry live in [`super::reliability`]; the vectored paths
//! live in [`super::batching`].

use std::collections::VecDeque;
use std::fmt;

use bytes::Bytes;
use hydra_sim::time::{SimDuration, SimTime};

use crate::device::DeviceId;

use super::{Channel, ChannelMessage, RetryPolicy};

/// Channel transport type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Exactly two endpoints.
    Unicast,
    /// One sender, many receivers.
    Multicast,
}

/// Synchronization guarantee for handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncPolicy {
    /// Handlers see messages in send order, one at a time.
    Sequential,
    /// Handlers may run concurrently (no ordering guarantee).
    Concurrent,
}

/// Buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Buffering {
    /// Direct read/write: the device DMAs straight from/to pinned
    /// application memory; the host CPU never touches the bytes.
    ZeroCopy,
    /// Staged through an intermediate kernel buffer (one CPU copy each
    /// way).
    Copied,
}

/// Full channel configuration (the `ChannelConfig` of the paper's
/// Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelConfig {
    /// Transport type.
    pub transport: Transport,
    /// Delivery guarantee.
    pub reliability: super::Reliability,
    /// Synchronization guarantee.
    pub sync: SyncPolicy,
    /// Buffer management.
    pub buffering: Buffering,
    /// Ring capacity in messages.
    pub capacity: usize,
    /// The device hosting the far endpoint.
    pub target: DeviceId,
    /// Retry/backoff policy applied when the ring is full.
    pub retry: RetryPolicy,
}

impl ChannelConfig {
    /// The configuration from the paper's Figure 3: reliable unicast,
    /// sequential synchronization, zero-copy read/write.
    pub fn figure3(target: DeviceId) -> Self {
        ChannelConfig {
            transport: Transport::Unicast,
            reliability: super::Reliability::Reliable,
            sync: SyncPolicy::Sequential,
            buffering: Buffering::ZeroCopy,
            capacity: 64,
            target,
            retry: RetryPolicy::none(),
        }
    }

    /// The default OOB-channel configuration: unreliable, copied, small.
    pub fn oob(target: DeviceId) -> Self {
        ChannelConfig {
            transport: Transport::Unicast,
            reliability: super::Reliability::Reliable,
            sync: SyncPolicy::Sequential,
            buffering: Buffering::Copied,
            capacity: 16,
            target,
            retry: RetryPolicy::none(),
        }
    }

    /// Builder-style retry policy override.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// A provider's cost metric for a channel.
///
/// The fixed cost of a message splits into two explicit parts, after
/// *Taming Offload Overheads*: `per_message` is the host-side work that
/// can never be avoided (descriptor/word preparation), while
/// `launch_overhead` is the offload-launch charge — the MMIO doorbell
/// write plus the device's engine-start cost. PIO-style providers drive
/// every word from the CPU over the coherent interconnect and have no
/// launch at all; DMA-style providers pay it per doorbell; async
/// double-buffered providers ([`ChannelCost::coalesce_launch`]) hide it
/// behind an in-flight transfer whenever the pipe is already busy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelCost {
    /// One-time endpoint construction cost.
    pub setup: SimDuration,
    /// Fixed host-side cost per message (descriptor or word setup).
    pub per_message: SimDuration,
    /// Offload-launch charge per doorbell (MMIO write + engine start);
    /// zero for CPU-driven providers that never ring one.
    pub launch_overhead: SimDuration,
    /// Async double-buffered amortization: when the pipe is already
    /// busy, the launch overlaps the in-flight transfer and is not
    /// charged again (the next doorbell is pre-armed while the engine
    /// drains the previous buffer).
    pub coalesce_launch: bool,
    /// Sustained payload throughput in bytes per second.
    pub bytes_per_sec: u64,
}

impl ChannelCost {
    /// A cost metric with the launch charge folded into `per_message`
    /// (the historical shape: every send pays the full fixed cost).
    pub const fn basic(setup: SimDuration, per_message: SimDuration, bytes_per_sec: u64) -> Self {
        ChannelCost {
            setup,
            per_message,
            launch_overhead: SimDuration::ZERO,
            coalesce_launch: false,
            bytes_per_sec,
        }
    }

    /// Unloaded end-to-end latency for one message of `bytes` (idle
    /// pipe: the launch overhead is always paid).
    pub fn latency(&self, bytes: usize) -> SimDuration {
        self.per_message + self.launch_overhead + self.wire_time(bytes)
    }

    /// Marginal latency for one message of `bytes` on a saturated pipe:
    /// a coalescing provider hides the launch behind the in-flight
    /// transfer, everyone else still pays it.
    pub fn streaming_latency(&self, bytes: usize) -> SimDuration {
        self.per_message + self.launch_if(false) + self.wire_time(bytes)
    }

    /// Latency of one message of `bytes` given whether the pipe was
    /// idle when the send was admitted.
    pub fn send_latency(&self, bytes: usize, pipe_idle: bool) -> SimDuration {
        self.per_message + self.launch_if(pipe_idle) + self.wire_time(bytes)
    }

    /// The full fixed charge paid at a doorbell rung on an idle/busy
    /// pipe — what the [`super::CostProfile`] accumulates as launch
    /// overhead.
    pub fn launch_charge(&self, pipe_idle: bool) -> SimDuration {
        self.per_message + self.launch_if(pipe_idle)
    }

    /// The launch overhead actually charged for the given pipe state.
    fn launch_if(&self, pipe_idle: bool) -> SimDuration {
        if self.coalesce_launch && !pipe_idle {
            SimDuration::ZERO
        } else {
            self.launch_overhead
        }
    }

    /// Pure payload transfer time for `bytes`, excluding the fixed
    /// per-message (doorbell + descriptor handling) charge.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        let wire = (bytes as u128 * 1_000_000_000).div_ceil(u128::from(self.bytes_per_sec));
        SimDuration::from_nanos(wire as u64)
    }

    /// Effective delivered throughput for back-to-back messages of
    /// `bytes` each, in bytes per second — the fixed charges folded
    /// into the wire rate. This is the size-dependent "bus price" the
    /// ILP layout objective consumes.
    pub fn effective_throughput(&self, bytes: usize) -> u64 {
        let ns = self.streaming_latency(bytes).as_nanos().max(1);
        #[allow(clippy::cast_possible_truncation)]
        {
            ((bytes as u128 * 1_000_000_000) / u128::from(ns)) as u64
        }
    }
}

/// A device-specific channel factory with a cost model.
pub trait ChannelProvider: fmt::Debug {
    /// Provider name for diagnostics.
    fn name(&self) -> &str;

    /// Whether this provider can realize `config`.
    fn supports(&self, config: &ChannelConfig) -> bool;

    /// The price of a channel with this configuration.
    fn cost(&self, config: &ChannelConfig) -> ChannelCost;
}

/// The zero-copy DMA descriptor-ring provider of §4.1 (for device
/// targets).
#[derive(Debug, Clone)]
pub struct ZeroCopyDmaProvider;

impl ChannelProvider for ZeroCopyDmaProvider {
    fn name(&self) -> &'static str {
        "zero-copy-dma"
    }

    fn supports(&self, config: &ChannelConfig) -> bool {
        !config.target.is_host() && config.buffering == Buffering::ZeroCopy
    }

    fn cost(&self, config: &ChannelConfig) -> ChannelCost {
        ChannelCost {
            setup: SimDuration::from_micros(120), // ring + shared region setup
            per_message: SimDuration::from_micros(1), // descriptor prep
            // Synchronous launch: the doorbell MMIO write + DMA engine
            // start is paid on every send (batches still amortize it to
            // one charge per submission).
            launch_overhead: SimDuration::from_micros(2),
            coalesce_launch: false,
            bytes_per_sec: match config.transport {
                Transport::Unicast => 500_000_000,
                Transport::Multicast => 400_000_000,
            },
        }
    }
}

/// A staging-buffer provider: works for any target, costs a copy.
#[derive(Debug, Clone)]
pub struct KernelCopyProvider;

impl ChannelProvider for KernelCopyProvider {
    fn name(&self) -> &'static str {
        "kernel-copy"
    }

    fn supports(&self, _config: &ChannelConfig) -> bool {
        true
    }

    fn cost(&self, config: &ChannelConfig) -> ChannelCost {
        // Syscall + staging copy dominate; there is no device doorbell,
        // so the whole fixed cost is per-message host work.
        ChannelCost::basic(
            SimDuration::from_micros(30),
            SimDuration::from_micros(9),
            if config.target.is_host() {
                1_500_000_000
            } else {
                250_000_000
            },
        )
    }
}

/// Identifier of a live channel.
///
/// Dense `u32` ids, handed out monotonically by the executive (never
/// reused — channel ids appear in resource names and traces, so reuse
/// would alias history). The executive's channel table is a `Vec`
/// indexed by [`ChannelId::idx`], so the send/recv hot path does array
/// indexing instead of hash lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The id as a `Vec` index into channel-side tables.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan#{}", self.0)
    }
}

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// No provider supports the requested configuration.
    NoProvider,
    /// A reliable channel's ring is full; retry after draining.
    WouldBlock,
    /// Unknown channel id.
    NoSuchChannel(ChannelId),
    /// Attaching more endpoints than the transport allows.
    TooManyEndpoints,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::NoProvider => f.write_str("no channel provider supports this config"),
            ChannelError::WouldBlock => f.write_str("channel ring full (reliable channel)"),
            ChannelError::NoSuchChannel(id) => write!(f, "no such channel {id}"),
            ChannelError::TooManyEndpoints => f.write_str("unicast channel already connected"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl Channel {
    /// Number of attached receiving endpoints (open or closed).
    pub fn endpoints(&self) -> usize {
        self.queues.len()
    }

    /// Number of endpoints still open.
    pub fn open_endpoints(&self) -> usize {
        self.closed.iter().filter(|&&c| !c).count()
    }

    /// Whether endpoint `ep` exists and is open.
    pub fn endpoint_open(&self, ep: usize) -> bool {
        self.closed.get(ep).is_some_and(|&c| !c)
    }

    /// Closes endpoint `ep`: queued messages get their traces terminated
    /// with a `channel.endpoint_closed` drop event, and the endpoint
    /// receives nothing from then on (its index stays allocated so other
    /// endpoints keep their positions). Returns `false` if the endpoint
    /// does not exist or is already closed.
    pub fn close_endpoint(&mut self, ep: usize) -> bool {
        if !self.endpoint_open(ep) {
            return false;
        }
        let q = &mut self.queues[ep];
        for msg in q.drain(..) {
            self.recorder.trace_drop(
                msg.trace,
                "channel.endpoint_closed",
                &self.provider_name,
                u64::from(self.config.target.0),
                msg.deliver_at,
                msg.data.len() as u64,
            );
        }
        self.closed[ep] = true;
        if self.open_endpoints() == 0 {
            // The last consumer is gone and the descriptor ring it owned
            // is torn down with it — wedged slots do not outlive the
            // ring (a re-opened endpoint starts from a fresh ring).
            self.wedged_slots = 0;
        }
        self.recorder
            .counter_incr("channel.endpoint_closed", &self.provider_name);
        self.publish_queue_depth();
        true
    }

    /// Queues of open endpoints.
    pub(super) fn open_queues(&self) -> impl Iterator<Item = &VecDeque<ChannelMessage>> {
        self.queues
            .iter()
            .zip(&self.closed)
            .filter(|&(_, &c)| !c)
            .map(|(q, _)| q)
    }

    /// Installs a dispatch handler marker (paper Figure 3:
    /// `InstallCallHandler`). The runtime invokes handlers instead of
    /// requiring the application to poll.
    pub fn install_handler(&mut self) {
        self.handler_installed = true;
    }

    /// Whether a dispatch handler is installed.
    pub fn has_handler(&self) -> bool {
        self.handler_installed
    }

    /// Attaches a receiving endpoint (the runtime's `ConnectOffcode`).
    ///
    /// # Errors
    ///
    /// Unicast channels accept exactly one endpoint.
    pub fn connect_endpoint(&mut self) -> Result<usize, ChannelError> {
        if self.config.transport == Transport::Unicast && !self.queues.is_empty() {
            return Err(ChannelError::TooManyEndpoints);
        }
        if !self.queues.is_empty() && self.open_endpoints() == 0 {
            // Re-opening after every endpoint closed rebuilds the ring
            // from scratch; slots wedged in the old ring are gone.
            self.wedged_slots = 0;
        }
        self.queues.push(VecDeque::new());
        self.closed.push(false);
        Ok(self.queues.len() - 1)
    }

    /// The device id used as the trace "pid" for this channel's far end.
    pub(super) fn target_pid(&self) -> u64 {
        u64::from(self.config.target.0)
    }

    /// Sends a message at `now`, returning its delivery instant.
    ///
    /// Multicast delivers to every endpoint in one send (hardware
    /// multicast: the cost is charged once, per the paper's note).
    ///
    /// Every send mints a [`TraceCtx`]: a *send* event on the host, then
    /// — if the message is accepted — a *hop* event on the target device
    /// as the payload enters the provider's queue/descriptor ring. Lost
    /// or rejected messages close their trace with a *drop* event, so a
    /// fault is visible as an unterminated-by-recv chain, not silence.
    ///
    /// # Errors
    ///
    /// [`ChannelError::WouldBlock`] on a full reliable channel. On a full
    /// unreliable channel the message is counted as dropped and `Ok` is
    /// returned with the nominal delivery time. With a [`RetryPolicy`]
    /// configured, a full ring first backs off deterministically; only
    /// when every attempt inside the policy's bounds still finds the ring
    /// full does the send fail (or drop) as above.
    pub fn send(&mut self, now: SimTime, data: Bytes) -> Result<SimTime, ChannelError> {
        self.select_provider(data.len());
        let bytes = data.len() as u64;
        let ctx = self
            .recorder
            .trace_begin("channel.send", &self.provider_name, 0, now, bytes);
        let mut admit_at = now;
        let any_full = self
            .open_queues()
            .any(|q| q.len() >= self.usable_capacity());
        if any_full {
            match self.retry_admit(now) {
                Some((at, attempts)) => {
                    admit_at = at;
                    self.recorder.counter_add(
                        "channel.retries",
                        &self.provider_name,
                        u64::from(attempts),
                    );
                    self.recorder.observe(
                        "channel.retry_wait_ns",
                        &self.provider_name,
                        at.as_nanos().saturating_sub(now.as_nanos()),
                    );
                }
                None => {
                    return self.send_full_fallout(now, bytes, ctx);
                }
            }
        }
        let start = self.busy_until.max(admit_at);
        // Idle pipe: the doorbell must actually start the engine. Busy
        // pipe: a coalescing (double-buffered) provider pre-armed the
        // launch while the previous transfer drained.
        let pipe_idle = self.busy_until <= admit_at;
        let deliver_at = start + self.cost.send_latency(data.len(), pipe_idle);
        self.busy_until = deliver_at;
        self.stats.sent += 1;
        self.stats.bytes += bytes;
        self.profile.doorbell(self.cost.launch_charge(pipe_idle));
        self.profile.record(
            now.as_nanos(),
            bytes,
            deliver_at.as_nanos().saturating_sub(now.as_nanos()),
        );
        let ctx = self.recorder.trace_hop(
            ctx,
            "provider.hop",
            &self.provider_name,
            self.target_pid(),
            start,
            bytes,
        );
        for (q, &closed) in self.queues.iter_mut().zip(&self.closed) {
            if closed {
                continue;
            }
            q.push_back(ChannelMessage {
                data: data.clone(),
                deliver_at,
                trace: ctx,
            });
        }
        self.recorder
            .counter_incr("channel.sent", &self.provider_name);
        self.recorder
            .counter_add("channel.bytes", &self.provider_name, bytes);
        self.recorder.observe(
            "channel.latency_ns",
            &self.provider_name,
            deliver_at.as_nanos().saturating_sub(now.as_nanos()),
        );
        let backlog = self.queues.iter().map(|q| q.len()).max().unwrap_or(0);
        self.recorder.gauge_max(
            "channel.backlog_high_water",
            &self.provider_name,
            backlog as u64,
        );
        self.publish_queue_depth();
        Ok(deliver_at)
    }

    /// Receives the oldest message visible at `now` on endpoint `ep`.
    ///
    /// The returned message's [`ChannelMessage::trace`] is advanced to
    /// the *recv* event, so the receiver can continue the causal chain
    /// into device-side work.
    pub fn recv(&mut self, now: SimTime, ep: usize) -> Option<ChannelMessage> {
        if !self.endpoint_open(ep) {
            return None;
        }
        let q = self.queues.get_mut(ep)?;
        if q.front().is_some_and(|m| m.deliver_at <= now) {
            self.stats.received += 1;
            self.recorder
                .counter_incr("channel.received", &self.provider_name);
            let mut msg = q.pop_front()?;
            self.publish_queue_depth();
            msg.trace = self.recorder.trace_recv(
                msg.trace,
                "channel.recv",
                &self.provider_name,
                self.target_pid(),
                now,
                msg.data.len() as u64,
            );
            Some(msg)
        } else {
            None
        }
    }

    /// Closes every still-queued message's trace with a *drop* event
    /// (used when the channel is destroyed with messages in flight).
    pub(super) fn drop_pending(&mut self) {
        for q in &mut self.queues {
            for msg in q.drain(..) {
                self.recorder.trace_drop(
                    msg.trace,
                    "channel.destroyed",
                    &self.provider_name,
                    u64::from(self.config.target.0),
                    msg.deliver_at,
                    msg.data.len() as u64,
                );
            }
        }
        self.publish_queue_depth();
    }

    /// Polls whether endpoint `ep` has a visible message at `now` (the
    /// channel API's `poll`).
    pub fn poll(&self, now: SimTime, ep: usize) -> bool {
        self.endpoint_open(ep)
            && self
                .queues
                .get(ep)
                .and_then(|q| q.front())
                .is_some_and(|m| m.deliver_at <= now)
    }

    /// Messages queued (visible or not) on endpoint `ep`.
    pub fn backlog(&self, ep: usize) -> usize {
        self.queues.get(ep).map_or(0, |q| q.len())
    }
}
