//! Channel batching: the vectored send/recv hot paths that amortize the
//! fixed per-doorbell charge over many messages.

use bytes::Bytes;
use hydra_sim::time::SimTime;

use super::{Channel, ChannelMessage, Reliability};

/// The vectored completion of a [`Channel::send_batch`]: what was
/// accepted (and when each accepted message delivers), what was turned
/// away, and when the ring goes idle again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSendOutcome {
    /// Delivery instant of each accepted message, in send order.
    pub delivered_at: Vec<SimTime>,
    /// Messages past the ring's headroom on a **reliable** channel
    /// (the batched analogue of [`super::ChannelError::WouldBlock`]).
    pub rejected: usize,
    /// Messages past the ring's headroom on an **unreliable** channel,
    /// dropped and counted exactly like the single path drops them.
    pub dropped: usize,
    /// Instant the last accepted payload clears the provider ring.
    pub complete_at: SimTime,
    /// Total backoff attempts spent by the channel's
    /// [`super::RetryPolicy`] to squeeze overflow messages in after all
    /// (zero without retry).
    pub retries: u64,
}

impl BatchSendOutcome {
    /// Number of messages accepted into the ring.
    pub fn accepted(&self) -> usize {
        self.delivered_at.len()
    }
}

impl Channel {
    /// Sends a batch of messages at `now` with a **single doorbell**.
    ///
    /// This is the batched hot path: the fixed per-message provider charge
    /// (descriptor handling + doorbell) is paid **once** for the whole
    /// batch, then payloads stream back-to-back at the provider's wire
    /// rate. Message *i* is delivered once the payloads up to and
    /// including it have cleared the ring, so FIFO order — and therefore
    /// observable delivery order — is identical to the equivalent sequence
    /// of single [`Channel::send`] calls, while the total sim time is
    /// strictly smaller for any batch of two or more messages.
    ///
    /// Observability is amortized the same way: one flight-recorder
    /// *send* event plus one provider *hop* event cover the whole batch
    /// (`channel.sent`/`channel.bytes` are bumped by batch totals, and
    /// `channel.batches`/`channel.batch_size` record the batching
    /// itself). Fault paths keep **per-message** accounting: every
    /// message that does not fit gets its own *drop* event
    /// (`channel.reject` on a reliable ring, `channel.drop` on an
    /// unreliable one) and its own counter bump, exactly like the single
    /// path.
    ///
    /// The outcome reports per-message delivery instants for the accepted
    /// prefix plus reject/drop counts for the rest; unlike single `send`
    /// a full reliable ring is not an `Err` but `rejected > 0`.
    pub fn send_batch(&mut self, now: SimTime, batch: &[Bytes]) -> BatchSendOutcome {
        let mut out = BatchSendOutcome {
            delivered_at: Vec::new(),
            rejected: 0,
            dropped: 0,
            complete_at: SimTime::ZERO,
            retries: 0,
        };
        self.send_batch_into(now, batch, &mut out);
        out
    }

    /// [`Channel::send_batch`], but reusing a caller-provided outcome.
    ///
    /// Semantically identical to `send_batch` — same admission, same
    /// delivery instants, same fault accounting — but the per-message
    /// `delivered_at` vector is cleared and refilled in place instead of
    /// freshly allocated, so a steady-state send loop that keeps one
    /// [`BatchSendOutcome`] around performs **zero heap allocations** per
    /// batch once the vector has grown to the working batch size (payload
    /// [`Bytes`] handles are refcounted clones, never copies).
    pub fn send_batch_into(&mut self, now: SimTime, batch: &[Bytes], out: &mut BatchSendOutcome) {
        let start = self.busy_until.max(now);
        out.delivered_at.clear();
        out.rejected = 0;
        out.dropped = 0;
        out.complete_at = start;
        out.retries = 0;
        if batch.is_empty() {
            return;
        }
        let total_bytes: u64 = batch.iter().map(|m| m.len() as u64).sum();
        // A batch selects once, by its mean payload size (one doorbell,
        // one provider: a batch cannot straddle two rings).
        #[allow(clippy::cast_possible_truncation)]
        self.select_provider((total_bytes / batch.len() as u64) as usize);
        let ctx = self.recorder.trace_begin(
            "channel.send_batch",
            &self.provider_name,
            0,
            now,
            total_bytes,
        );
        // Headroom mirrors the single path's per-send check: a send is
        // accepted while no open endpoint queue is at capacity.
        let backlog = self
            .open_queues()
            .map(std::collections::VecDeque::len)
            .max()
            .unwrap_or(0);
        let headroom = self.usable_capacity().saturating_sub(backlog);
        let accepted = batch.len().min(headroom);

        out.delivered_at.reserve(accepted);
        if accepted > 0 {
            let accepted_bytes: u64 = batch[..accepted].iter().map(|m| m.len() as u64).sum();
            let ctx = self.recorder.trace_hop(
                ctx,
                "provider.batch",
                &self.provider_name,
                self.target_pid(),
                start,
                accepted_bytes,
            );
            // One doorbell covers the batch; whether its launch charge
            // is paid depends on the pipe state, exactly like a single
            // send (a coalescing provider submitting onto a busy pipe
            // pays nothing extra).
            let pipe_idle = self.busy_until <= now;
            self.profile.doorbell(self.cost.launch_charge(pipe_idle));
            let mut cum_bytes = 0usize;
            for msg in &batch[..accepted] {
                cum_bytes += msg.len();
                let deliver_at = start + self.cost.send_latency(cum_bytes, pipe_idle);
                self.profile.record(
                    now.as_nanos(),
                    msg.len() as u64,
                    deliver_at.as_nanos().saturating_sub(now.as_nanos()),
                );
                out.delivered_at.push(deliver_at);
                for (q, &ep_closed) in self.queues.iter_mut().zip(&self.closed) {
                    if ep_closed {
                        continue;
                    }
                    q.push_back(ChannelMessage {
                        data: msg.clone(),
                        deliver_at,
                        trace: ctx,
                    });
                }
            }
            self.busy_until = *out.delivered_at.last().expect("accepted > 0");
            self.stats.sent += accepted as u64;
            self.stats.bytes += accepted_bytes;
            self.recorder
                .counter_add("channel.sent", &self.provider_name, accepted as u64);
            self.recorder
                .counter_add("channel.bytes", &self.provider_name, accepted_bytes);
            self.recorder
                .counter_incr("channel.batches", &self.provider_name);
            self.recorder
                .observe("channel.batch_size", &self.provider_name, accepted as u64);
            self.recorder.observe(
                "channel.latency_ns",
                &self.provider_name,
                self.busy_until.as_nanos().saturating_sub(now.as_nanos()),
            );
            let backlog = self.queues.iter().map(|q| q.len()).max().unwrap_or(0);
            self.recorder.gauge_max(
                "channel.backlog_high_water",
                &self.provider_name,
                backlog as u64,
            );
        }
        // Everything past the headroom: with a retry policy each message
        // gets its own deterministic backoff chance to squeeze in (paying
        // its own doorbell — a retried message is effectively a late
        // single send); what still doesn't fit keeps the historical
        // per-message fault accounting of the single path.
        for msg in &batch[accepted..] {
            if let Some((at, attempts)) = self.retry_admit(now) {
                let bytes = msg.len() as u64;
                let start = self.busy_until.max(at);
                let pipe_idle = self.busy_until <= at;
                let deliver_at = start + self.cost.send_latency(msg.len(), pipe_idle);
                self.profile.doorbell(self.cost.launch_charge(pipe_idle));
                self.profile.record(
                    now.as_nanos(),
                    bytes,
                    deliver_at.as_nanos().saturating_sub(now.as_nanos()),
                );
                let mctx = self.recorder.trace_hop(
                    ctx,
                    "provider.retry",
                    &self.provider_name,
                    self.target_pid(),
                    start,
                    bytes,
                );
                for (q, &ep_closed) in self.queues.iter_mut().zip(&self.closed) {
                    if ep_closed {
                        continue;
                    }
                    q.push_back(ChannelMessage {
                        data: msg.clone(),
                        deliver_at,
                        trace: mctx,
                    });
                }
                self.busy_until = deliver_at;
                out.delivered_at.push(deliver_at);
                self.stats.sent += 1;
                self.stats.bytes += bytes;
                out.retries += u64::from(attempts);
                self.recorder
                    .counter_incr("channel.sent", &self.provider_name);
                self.recorder
                    .counter_add("channel.bytes", &self.provider_name, bytes);
                self.recorder.counter_add(
                    "channel.retries",
                    &self.provider_name,
                    u64::from(attempts),
                );
                self.recorder.observe(
                    "channel.retry_wait_ns",
                    &self.provider_name,
                    at.as_nanos().saturating_sub(now.as_nanos()),
                );
                continue;
            }
            match self.config.reliability {
                Reliability::Reliable => {
                    out.rejected += 1;
                    self.recorder
                        .counter_incr("channel.rejected", &self.provider_name);
                    self.recorder.trace_drop(
                        ctx,
                        "channel.reject",
                        &self.provider_name,
                        0,
                        now,
                        msg.len() as u64,
                    );
                }
                Reliability::Unreliable => {
                    out.dropped += 1;
                    self.stats.dropped += 1;
                    self.recorder
                        .counter_incr("channel.dropped", &self.provider_name);
                    self.recorder.trace_drop(
                        ctx,
                        "channel.drop",
                        &self.provider_name,
                        self.target_pid(),
                        now,
                        msg.len() as u64,
                    );
                }
            }
        }
        out.complete_at = self.busy_until.max(start);
        self.publish_queue_depth();
    }

    /// Receives up to `max` messages visible at `now` on endpoint `ep` —
    /// the vectored completion side of the batched data path.
    ///
    /// Message ordering and per-message trace closure are identical to
    /// repeated [`Channel::recv`] calls; only the counter updates are
    /// aggregated into a single `channel.received` bump per batch.
    pub fn recv_batch(&mut self, now: SimTime, ep: usize, max: usize) -> Vec<ChannelMessage> {
        if !self.endpoint_open(ep) {
            return Vec::new();
        }
        let Some(q) = self.queues.get_mut(ep) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while out.len() < max {
            if q.front().is_none_or(|m| m.deliver_at > now) {
                break;
            }
            out.push(q.pop_front().expect("front just checked"));
        }
        if out.is_empty() {
            return out;
        }
        self.publish_queue_depth();
        self.stats.received += out.len() as u64;
        self.recorder
            .counter_add("channel.received", &self.provider_name, out.len() as u64);
        for msg in &mut out {
            msg.trace = self.recorder.trace_recv(
                msg.trace,
                "channel.recv",
                &self.provider_name,
                self.target_pid(),
                now,
                msg.data.len() as u64,
            );
        }
        out
    }
}
