//! Channels: the communication pathways between Offcodes (paper §3.2,
//! §4.1).
//!
//! A channel is created in two steps — configure + create the local
//! endpoint, then attach the target Offcode, which implicitly constructs
//! the far endpoint. Channels are typed by transport (unicast/multicast),
//! reliability, synchronization and buffering policy. Device-specific
//! **channel providers** actually realize a channel and advertise a cost
//! metric ("the 'price' for communicating with the device through a
//! specific channel, in terms of latency and throughput"); the **Channel
//! Executive** picks the cheapest capable provider.
//!
//! The layer is split by concern: [`delivery`] holds configuration,
//! provider cost models and the single-message data path; [`reliability`]
//! the delivery guarantees and pluggable ring backpressure;
//! [`batching`] the vectored hot paths; [`observe`] counters and the
//! live cost profile; [`adaptive`] online provider selection. The
//! public API is re-exported flat from this module, so callers are
//! oblivious to the split.

mod adaptive;
mod batching;
mod delivery;
mod observe;
mod reliability;

pub use adaptive::AdaptivePolicy;
pub use batching::BatchSendOutcome;
pub use delivery::{
    Buffering, ChannelConfig, ChannelCost, ChannelError, ChannelId, ChannelProvider,
    KernelCopyProvider, SyncPolicy, Transport, ZeroCopyDmaProvider,
};
pub use observe::{ChannelStats, CostProfile, CHANNEL_QUEUE_DEPTH};
pub use reliability::{
    Admission, BackpressurePolicy, ExponentialBackoff, Reliability, RetryPolicy, RingView,
};

use std::collections::VecDeque;

use bytes::Bytes;
use hydra_obs::{Recorder, TraceCtx};
use hydra_sim::time::{SimDuration, SimTime};

use crate::device::DeviceId;

use adaptive::AdaptiveState;

/// A message in flight on a channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMessage {
    /// Serialized payload (usually an encoded `Call`).
    pub data: Bytes,
    /// When the message becomes visible at the receiver.
    pub deliver_at: SimTime,
    /// Causal trace stamp: minted at `send`, advanced through the
    /// provider hop, positioned at the `recv` event once received — so
    /// post-receive device work can keep extending the chain.
    pub trace: TraceCtx,
}

/// One live channel.
#[derive(Debug)]
pub struct Channel {
    id: ChannelId,
    config: ChannelConfig,
    provider_name: String,
    cost: ChannelCost,
    /// Next instant the pipe is free (per-channel serialization).
    busy_until: SimTime,
    /// One queue per receiving endpoint.
    queues: Vec<VecDeque<ChannelMessage>>,
    /// Parallel to `queues`: endpoints closed by teardown keep their
    /// index (so other endpoints stay stable) but receive nothing.
    closed: Vec<bool>,
    /// Descriptor-ring slots wedged by injected ring-exhaustion faults;
    /// subtracted from the configured capacity.
    wedged_slots: usize,
    stats: ChannelStats,
    profile: CostProfile,
    /// Online per-bucket provider selection; `None` on a classic
    /// fixed-provider channel.
    adaptive: Option<AdaptiveState>,
    /// Ring admission under backpressure; [`ExponentialBackoff`] by
    /// default.
    backpressure: Box<dyn BackpressurePolicy>,
    /// Label for per-channel level tracks (`chan#N`), built once.
    depth_label: String,
    handler_installed: bool,
    recorder: Recorder,
}

impl Channel {
    fn new(
        id: ChannelId,
        config: ChannelConfig,
        provider_name: String,
        cost: ChannelCost,
        adaptive: Option<AdaptiveState>,
        recorder: Recorder,
    ) -> Self {
        Channel {
            id,
            config,
            provider_name,
            cost,
            busy_until: SimTime::ZERO,
            queues: Vec::new(),
            closed: Vec::new(),
            wedged_slots: 0,
            stats: ChannelStats::default(),
            profile: CostProfile::default(),
            adaptive,
            backpressure: Box::new(ExponentialBackoff),
            depth_label: format!("chan#{}", id.0),
            handler_installed: false,
            recorder,
        }
    }

    /// The channel id.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The chosen provider's name.
    pub fn provider_name(&self) -> &str {
        &self.provider_name
    }

    /// The provider's cost metric.
    pub fn cost(&self) -> ChannelCost {
        self.cost
    }

    /// The counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// The live cost profile: observed latency by size bucket, EWMA
    /// latency, throughput, and accumulated launch overhead.
    pub fn cost_profile(&self) -> &CostProfile {
        &self.profile
    }
}

/// The Channel Executive: provider registry + channel table.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_core::channel::{ChannelConfig, ChannelExecutive};
/// use hydra_core::device::DeviceId;
/// use hydra_sim::time::SimTime;
///
/// let mut exec = ChannelExecutive::with_default_providers();
/// let id = exec.create_channel(ChannelConfig::figure3(DeviceId(1))).unwrap();
/// exec.get_mut(id).unwrap().connect_endpoint().unwrap();
/// let t = exec
///     .get_mut(id).unwrap()
///     .send(SimTime::ZERO, Bytes::from_static(b"call"))
///     .unwrap();
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Default)]
pub struct ChannelExecutive {
    providers: Vec<Box<dyn ChannelProvider>>,
    /// Dense channel table indexed by [`ChannelId::idx`]. Ids are handed
    /// out monotonically and never reused; destroyed channels leave a
    /// `None` slot behind.
    channels: Vec<Option<Channel>>,
    live: usize,
    recorder: Recorder,
}

impl ChannelExecutive {
    /// Creates an executive with no providers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an executive with the built-in providers registered.
    pub fn with_default_providers() -> Self {
        let mut e = Self::new();
        e.register_provider(Box::new(ZeroCopyDmaProvider));
        e.register_provider(Box::new(KernelCopyProvider));
        e
    }

    /// Registers a provider (typically from a device driver).
    pub fn register_provider(&mut self, provider: Box<dyn ChannelProvider>) {
        self.providers.push(provider);
    }

    /// Installs the recorder every subsequently created channel reports
    /// into (the runtime shares its own recorder this way).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The executive's recorder handle.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Every capable provider's bid for `config`, in registration order:
    /// the advertised cost plus the 1 kB-message latency the executive
    /// ranks bids by.
    pub fn quotes(&self, config: &ChannelConfig) -> Vec<(String, ChannelCost, SimDuration)> {
        self.providers
            .iter()
            .filter(|p| p.supports(config))
            .map(|p| {
                let cost = p.cost(config);
                (p.name().to_owned(), cost, cost.latency(1024))
            })
            .collect()
    }

    /// Exports the provider family as `hydra-verify`'s static
    /// [`ServiceTable`](hydra_verify::ServiceTable), probed against the
    /// Figure-3 NIC channel shape. This is the *only* path certification
    /// costs come from: the table is derived from the same
    /// [`ChannelProvider::cost`] implementations the executive's auction
    /// and the adaptive per-bucket selection use, so the static analysis
    /// and the runtime can never disagree on costs.
    pub fn service_table(&self) -> hydra_verify::ServiceTable {
        let probe = ChannelConfig::figure3(DeviceId(1));
        let providers = self
            .providers
            .iter()
            .filter(|p| p.supports(&probe))
            .map(|p| {
                let cost = p.cost(&probe);
                hydra_verify::ServiceModel {
                    provider: p.name().to_owned(),
                    setup_ns: cost.setup.as_nanos(),
                    per_message_ns: cost.per_message.as_nanos(),
                    launch_overhead_ns: cost.launch_overhead.as_nanos(),
                    coalesce_launch: cost.coalesce_launch,
                    bytes_per_sec: cost.bytes_per_sec,
                }
            })
            .collect();
        hydra_verify::ServiceTable {
            providers,
            adaptive: true,
            ring_capacity: probe.capacity as u64,
            device_ns_per_msg: hydra_verify::service::DEVICE_NS_PER_MSG,
            device_bytes_per_sec: hydra_verify::service::DEVICE_BYTES_PER_SEC,
        }
    }

    /// Creates a channel, selecting the supporting provider with the
    /// lowest latency for a nominal 1 kB message.
    ///
    /// # Errors
    ///
    /// Fails when no provider supports the configuration.
    pub fn create_channel(&mut self, config: ChannelConfig) -> Result<ChannelId, ChannelError> {
        let best = self
            .providers
            .iter()
            .filter(|p| p.supports(&config))
            .min_by_key(|p| p.cost(&config).latency(1024))
            .ok_or(ChannelError::NoProvider)?;
        let id = ChannelId(self.channels.len() as u32);
        self.recorder
            .counter_incr("channel.provider_selected", best.name());
        let channel = Channel::new(
            id,
            config,
            best.name().to_owned(),
            best.cost(&config),
            None,
            self.recorder.clone(),
        );
        self.channels.push(Some(channel));
        self.live += 1;
        Ok(id)
    }

    /// Creates a channel pinned to the named provider, bypassing the
    /// cost auction — the benchmarking/pinning API behind the crossover
    /// sweeps (each provider measured in isolation).
    ///
    /// # Errors
    ///
    /// Fails when no provider of that name supports the configuration.
    pub fn create_channel_forced(
        &mut self,
        config: ChannelConfig,
        provider: &str,
    ) -> Result<ChannelId, ChannelError> {
        let chosen = self
            .providers
            .iter()
            .find(|p| p.name() == provider && p.supports(&config))
            .ok_or(ChannelError::NoProvider)?;
        let id = ChannelId(self.channels.len() as u32);
        self.recorder
            .counter_incr("channel.provider_selected", chosen.name());
        let channel = Channel::new(
            id,
            config,
            chosen.name().to_owned(),
            chosen.cost(&config),
            None,
            self.recorder.clone(),
        );
        self.channels.push(Some(channel));
        self.live += 1;
        Ok(id)
    }

    /// Creates a **cost-adaptive** channel: every supporting provider
    /// stays a live candidate, and each message-size bucket re-selects
    /// among them online from the channel's [`CostProfile`] under
    /// `policy` (see [`AdaptivePolicy`] for the deterministic
    /// hysteresis rules). The initial provider is the same static
    /// argmin [`ChannelExecutive::create_channel`] would pick.
    ///
    /// # Errors
    ///
    /// Fails when no provider supports the configuration.
    pub fn create_channel_adaptive(
        &mut self,
        config: ChannelConfig,
        policy: AdaptivePolicy,
    ) -> Result<ChannelId, ChannelError> {
        let candidates: Vec<(String, ChannelCost)> = self
            .providers
            .iter()
            .filter(|p| p.supports(&config))
            .map(|p| (p.name().to_owned(), p.cost(&config)))
            .collect();
        let initial = candidates
            .iter()
            .min_by_key(|(_, c)| c.latency(1024))
            .ok_or(ChannelError::NoProvider)?
            .clone();
        let id = ChannelId(self.channels.len() as u32);
        self.recorder
            .counter_incr("channel.provider_selected", &initial.0);
        self.recorder
            .counter_incr("channel.adaptive_created", &initial.0);
        let channel = Channel::new(
            id,
            config,
            initial.0,
            initial.1,
            Some(AdaptiveState::new(candidates, policy)),
            self.recorder.clone(),
        );
        self.channels.push(Some(channel));
        self.live += 1;
        Ok(id)
    }

    /// The live channel ids, in ascending id order — a deterministic
    /// iteration order for whole-executive sweeps (fault propagation,
    /// teardown audits).
    pub fn ids(&self) -> Vec<ChannelId> {
        self.channels
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|_| ChannelId(i as u32)))
            .collect()
    }

    /// Shared access to a channel.
    pub fn get(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.get(id.idx()).and_then(Option::as_ref)
    }

    /// Exclusive access to a channel.
    pub fn get_mut(&mut self, id: ChannelId) -> Option<&mut Channel> {
        self.channels.get_mut(id.idx()).and_then(Option::as_mut)
    }

    /// Destroys a channel, returning whether it existed. Undelivered
    /// messages get a *drop* trace event so their chains terminate
    /// visibly rather than dangling. The id's table slot is retired, not
    /// recycled.
    pub fn destroy(&mut self, id: ChannelId) -> bool {
        match self.channels.get_mut(id.idx()).and_then(Option::take) {
            Some(mut ch) => {
                ch.drop_pending();
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// Number of live channels.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no channels are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> ChannelExecutive {
        ChannelExecutive::with_default_providers()
    }

    #[test]
    fn executive_picks_cheapest_provider() {
        let mut e = exec();
        // Zero-copy to a device: the DMA provider wins.
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        assert_eq!(e.get(id).unwrap().provider_name(), "zero-copy-dma");
        // Copied buffering: only the kernel provider supports it.
        let id2 = e.create_channel(ChannelConfig::oob(DeviceId(1))).unwrap();
        assert_eq!(e.get(id2).unwrap().provider_name(), "kernel-copy");
    }

    #[test]
    fn no_provider_is_an_error() {
        let mut e = ChannelExecutive::new();
        assert_eq!(
            e.create_channel(ChannelConfig::figure3(DeviceId(1))),
            Err(ChannelError::NoProvider)
        );
    }

    #[test]
    fn service_table_pins_the_conservative_default() {
        // The table the executive exports from its live providers must
        // agree byte-for-byte with the conservative default the verifier
        // falls back to — if a provider's ChannelCost changes, both this
        // test and the default must move together, keeping the analysis
        // and the runtime on one cost table.
        let mut e = ChannelExecutive::with_default_providers();
        crate::providers::install_extras(&mut e);
        assert_eq!(
            e.service_table(),
            hydra_verify::ServiceTable::conservative_default()
        );
    }

    #[test]
    fn send_and_receive_in_order() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let t1 = ch.send(SimTime::ZERO, Bytes::from_static(b"one")).unwrap();
        let t2 = ch.send(SimTime::ZERO, Bytes::from_static(b"two")).unwrap();
        assert!(t2 > t1, "messages serialize on the channel");
        // Not visible before delivery time.
        assert!(ch.recv(SimTime::ZERO, ep).is_none());
        assert!(!ch.poll(SimTime::ZERO, ep));
        let m1 = ch.recv(t1, ep).unwrap();
        assert_eq!(&m1.data[..], b"one");
        let m2 = ch.recv(t2, ep).unwrap();
        assert_eq!(&m2.data[..], b"two");
        assert_eq!(ch.stats().sent, 2);
        assert_eq!(ch.stats().received, 2);
    }

    #[test]
    fn reliable_full_ring_blocks() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 2;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"c")),
            Err(ChannelError::WouldBlock)
        );
        // Draining unblocks.
        let t = SimTime::from_secs(1);
        ch.recv(t, 0).unwrap();
        assert!(ch.send(t, Bytes::from_static(b"c")).is_ok());
    }

    #[test]
    fn unreliable_full_ring_drops() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 1;
        cfg.reliability = Reliability::Unreliable;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
        assert_eq!(ch.stats().dropped, 1);
        assert_eq!(ch.stats().sent, 1);
    }

    #[test]
    fn unicast_allows_single_endpoint() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        assert_eq!(ch.connect_endpoint(), Err(ChannelError::TooManyEndpoints));
    }

    #[test]
    fn multicast_fans_out_with_single_charge() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.transport = Transport::Multicast;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep0 = ch.connect_endpoint().unwrap();
        let ep1 = ch.connect_endpoint().unwrap();
        let t = ch.send(SimTime::ZERO, Bytes::from_static(b"x")).unwrap();
        assert_eq!(ch.stats().sent, 1, "one send covers all endpoints");
        assert!(ch.recv(t, ep0).is_some());
        assert!(ch.recv(t, ep1).is_some());
    }

    #[test]
    fn latency_scales_with_size() {
        let cost = ZeroCopyDmaProvider.cost(&ChannelConfig::figure3(DeviceId(1)));
        assert!(cost.latency(1_000_000) > cost.latency(100) * 10);
    }

    #[test]
    fn handler_installation_flag() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        assert!(!e.get(id).unwrap().has_handler());
        e.get_mut(id).unwrap().install_handler();
        assert!(e.get(id).unwrap().has_handler());
    }

    #[test]
    fn destroy_removes_channel() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        assert!(e.destroy(id));
        assert!(!e.destroy(id));
        assert!(e.get(id).is_none());
        assert!(e.is_empty());
    }

    fn payloads(n: usize, bytes: usize) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(vec![i as u8; bytes])).collect()
    }

    #[test]
    fn batched_send_beats_singles_in_sim_time() {
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let mut e = exec();
        let single = e.create_channel(cfg).unwrap();
        let batched = e.create_channel(cfg).unwrap();
        e.get_mut(single).unwrap().connect_endpoint().unwrap();
        e.get_mut(batched).unwrap().connect_endpoint().unwrap();
        let msgs = payloads(8, 1024);
        let mut last_single = SimTime::ZERO;
        for m in &msgs {
            last_single = e
                .get_mut(single)
                .unwrap()
                .send(SimTime::ZERO, m.clone())
                .unwrap();
        }
        let outcome = e.get_mut(batched).unwrap().send_batch(SimTime::ZERO, &msgs);
        assert_eq!(outcome.accepted(), 8);
        // One doorbell instead of eight: exactly 7 fixed charges
        // (descriptor prep + launch overhead) saved.
        let cost = e.get(single).unwrap().cost();
        let fixed = cost.per_message + cost.launch_overhead;
        assert_eq!(outcome.complete_at + fixed * 7, last_single);
    }

    #[test]
    fn batch_delivery_matches_single_path_order() {
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let mut e = exec();
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let msgs = payloads(5, 64);
        let outcome = ch.send_batch(SimTime::ZERO, &msgs);
        // Delivery instants are strictly increasing (FIFO preserved).
        for w in outcome.delivered_at.windows(2) {
            assert!(w[0] < w[1]);
        }
        let got = ch.recv_batch(outcome.complete_at, ep, usize::MAX);
        assert_eq!(got.len(), 5);
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m.data, msgs[i]);
        }
        assert_eq!(ch.stats().sent, 5);
        assert_eq!(ch.stats().received, 5);
    }

    #[test]
    fn send_batch_into_reuses_buffer_and_matches_send_batch() {
        let mk = || {
            let mut e = exec();
            let mut cfg = ChannelConfig::figure3(DeviceId(1));
            cfg.capacity = 4;
            let id = e.create_channel(cfg).unwrap();
            (e, id)
        };
        let (mut e1, id1) = mk();
        let (mut e2, id2) = mk();
        e1.get_mut(id1).unwrap().connect_endpoint().unwrap();
        e2.get_mut(id2).unwrap().connect_endpoint().unwrap();

        let mut reused = BatchSendOutcome {
            delivered_at: Vec::new(),
            rejected: 0,
            dropped: 0,
            complete_at: SimTime::ZERO,
            retries: 0,
        };
        // Same channel state, same batches: the reusing path must produce
        // outcome-identical results to the allocating path, round after
        // round, without the vector ever shrinking (steady state = no
        // allocation once it has grown to the working batch size).
        for round in 0..4u64 {
            let msgs = payloads(6, 32 + round as usize);
            let now = SimTime::from_micros(round * 50);
            let fresh = e1.get_mut(id1).unwrap().send_batch(now, &msgs);
            e2.get_mut(id2)
                .unwrap()
                .send_batch_into(now, &msgs, &mut reused);
            assert_eq!(reused, fresh, "round {round}");
            assert!(reused.delivered_at.capacity() >= reused.accepted());
            let cap = reused.delivered_at.capacity();
            // Drain both so the next round starts from identical state.
            for (e, id) in [(&mut e1, id1), (&mut e2, id2)] {
                let ch = e.get_mut(id).unwrap();
                ch.recv_batch(fresh.complete_at, 0, usize::MAX);
            }
            e2.get_mut(id2).unwrap().send_batch_into(
                SimTime::from_micros(round * 50 + 25),
                &[],
                &mut reused,
            );
            assert_eq!(reused.accepted(), 0);
            assert_eq!(
                reused.delivered_at.capacity(),
                cap,
                "clear() keeps the buffer"
            );
        }
    }

    #[test]
    fn reliable_batch_rejects_overflow_with_per_message_drops() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 3;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(5, 16));
        assert_eq!(outcome.accepted(), 3);
        assert_eq!(outcome.rejected, 2);
        assert_eq!(outcome.dropped, 0);
        assert_eq!(ch.stats().sent, 3);
        let snap = e.recorder().snapshot();
        assert_eq!(snap.counter_total("channel.rejected"), 2);
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 2, "one drop event per rejected message");
        assert!(drops.iter().all(|d| d.name == "channel.reject"));
    }

    #[test]
    fn unreliable_batch_drops_overflow_and_counts() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(2));
        cfg.capacity = 2;
        cfg.reliability = Reliability::Unreliable;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(6, 16));
        assert_eq!(
            (outcome.accepted(), outcome.rejected, outcome.dropped),
            (2, 0, 4)
        );
        assert_eq!(ch.stats().dropped, 4);
        let snap = e.recorder().snapshot();
        assert_eq!(snap.counter_total("channel.dropped"), 4);
        assert_eq!(snap.events_kind("drop").len(), 4);
    }

    #[test]
    fn batch_amortizes_flight_events_and_aggregates_counters() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(3)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(8, 128));
        ch.recv_batch(outcome.complete_at, ep, usize::MAX);
        let snap = e.recorder().snapshot();
        // One send + one hop event for the whole batch...
        assert_eq!(snap.events_kind("send").len(), 1);
        assert_eq!(snap.events_kind("hop").len(), 1);
        // ...but chain closure stays per message.
        assert_eq!(snap.events_kind("recv").len(), 8);
        assert_eq!(snap.counter_total("channel.sent"), 8);
        assert_eq!(snap.counter_total("channel.bytes"), 8 * 128);
        assert_eq!(snap.counter_total("channel.batches"), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::from_micros(5), &[]);
        assert_eq!(outcome.accepted(), 0);
        assert_eq!(outcome.complete_at, SimTime::from_micros(5));
        assert!(e.recorder().snapshot().events.is_empty());
    }

    #[test]
    fn recv_batch_respects_visibility_and_max() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(4, 32));
        // Nothing visible before the first delivery.
        assert!(ch.recv_batch(SimTime::ZERO, ep, usize::MAX).is_empty());
        // Only the first two visible at the second delivery instant.
        let t2 = outcome.delivered_at[1];
        assert_eq!(ch.recv_batch(t2, ep, usize::MAX).len(), 2);
        // `max` caps the dequeue even when more is visible.
        assert_eq!(ch.recv_batch(outcome.complete_at, ep, 1).len(), 1);
        assert_eq!(ch.backlog(ep), 1);
    }

    #[test]
    fn retry_backoff_admits_once_ring_drains() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
            4,
            SimDuration::from_micros(10),
            SimDuration::from_millis(1),
        ));
        cfg.capacity = 2;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let t1 = ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        let t2 = ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
        assert!(t2 > t1);
        // Ring full at ZERO — but both slots free once the device has
        // consumed the payloads (deliver instants pass), so backoff
        // eventually admits the third send instead of blocking.
        let t3 = ch.send(SimTime::ZERO, Bytes::from_static(b"c")).unwrap();
        assert!(t3 > t2, "retried send delivers after the earlier ones");
        assert_eq!(ch.stats().sent, 3);
        let snap = e.recorder().snapshot();
        assert!(snap.counter_total("channel.retries") >= 1);
        assert_eq!(snap.counter_total("channel.rejected"), 0);
    }

    #[test]
    fn retry_timeout_still_blocks() {
        let mut e = exec();
        // Backoff instants: 10us, 30us, 70us… but the ring only frees
        // after its in-flight payloads deliver (several microseconds per
        // message) — with a 1us timeout no attempt fits.
        let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
            3,
            SimDuration::from_micros(10),
            SimDuration::from_micros(1),
        ));
        cfg.capacity = 1;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"b")),
            Err(ChannelError::WouldBlock)
        );
        let snap = e.recorder().snapshot();
        assert_eq!(snap.counter_total("channel.retries"), 0);
        assert_eq!(snap.counter_total("channel.rejected"), 1);
    }

    #[test]
    fn retry_saturation_at_the_sim_ceiling_gives_up_cleanly() {
        let mut e = exec();
        // Backoff and timeout so large that every attempt instant (and
        // the deadline itself) saturates to SimTime::MAX. The old
        // behavior scheduled attempt after attempt at that one pinned
        // instant — and could "admit" a send at a point the clock can
        // never reach, overflowing the delivery computation.
        let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
            6,
            SimDuration::from_nanos(u64::MAX / 2),
            SimDuration::MAX,
        ));
        cfg.capacity = 1;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        // Fill the single ring slot early; the message stays queued.
        ch.send(SimTime::from_millis(1), Bytes::from_static(b"a"))
            .unwrap();
        let near_ceiling = SimTime::from_nanos(u64::MAX - 1_000);
        assert_eq!(
            ch.send(near_ceiling, Bytes::from_static(b"b")),
            Err(ChannelError::WouldBlock),
            "saturated backoff gives up instead of burning attempts at the ceiling"
        );
        let snap = e.recorder().snapshot();
        assert_eq!(snap.counter_total("channel.retries"), 0);
        assert_eq!(snap.counter_total("channel.rejected"), 1);
    }

    #[test]
    fn wedged_slots_sweep_with_the_ring() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.transport = Transport::Multicast;
        cfg.capacity = 4;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep0 = ch.connect_endpoint().unwrap();
        ch.set_wedged_slots(3);
        assert_eq!(ch.wedged_slots(), 3);
        // Closing the last endpoint tears the ring down — and the wedge
        // with it (the historical bug left it pinned forever).
        assert!(ch.close_endpoint(ep0));
        assert_eq!(ch.wedged_slots(), 0);
        // A wedge applied while dormant dies when a fresh endpoint
        // re-opens on a rebuilt ring.
        ch.set_wedged_slots(2);
        let ep1 = ch.connect_endpoint().unwrap();
        assert_eq!(ch.wedged_slots(), 0);
        // Full configured capacity is usable again.
        let mut last = SimTime::ZERO;
        for i in 0..4u8 {
            last = ch.send(SimTime::ZERO, Bytes::from(vec![i; 8])).unwrap();
        }
        assert_eq!(ch.backlog(ep1), 4);
        assert_eq!(ch.recv_batch(last, ep1, usize::MAX).len(), 4);
    }

    #[test]
    fn custom_backpressure_policy_is_consulted() {
        #[derive(Debug)]
        struct AdmitNever;
        impl BackpressurePolicy for AdmitNever {
            fn admit(&self, _ring: &RingView<'_>, _now: SimTime) -> Option<Admission> {
                None
            }
        }
        #[derive(Debug)]
        struct FixedDelay(SimDuration);
        impl BackpressurePolicy for FixedDelay {
            fn admit(&self, ring: &RingView<'_>, now: SimTime) -> Option<Admission> {
                let at = now.saturating_add(self.0);
                ring.admits_at(at).then_some(Admission { at, attempts: 1 })
            }
        }

        // A policy that never admits turns a retry-enabled channel into
        // an immediate-reject one.
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
            4,
            SimDuration::from_micros(10),
            SimDuration::from_millis(1),
        ));
        cfg.capacity = 1;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.set_backpressure_policy(Box::new(AdmitNever));
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"b")),
            Err(ChannelError::WouldBlock)
        );
        // A custom policy admits independently of the configured
        // RetryPolicy (here: retry disabled, yet the send still waits
        // out the ring and lands).
        let mut cfg2 = ChannelConfig::figure3(DeviceId(1));
        cfg2.capacity = 1;
        let id2 = e.create_channel(cfg2).unwrap();
        let ch2 = e.get_mut(id2).unwrap();
        ch2.connect_endpoint().unwrap();
        ch2.set_backpressure_policy(Box::new(FixedDelay(SimDuration::from_micros(50))));
        let t1 = ch2.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        let t2 = ch2
            .send(SimTime::ZERO, Bytes::from_static(b"b"))
            .expect("custom policy admits after its fixed delay");
        assert!(t2 > t1);
        assert!(t2 >= SimTime::from_micros(50));
    }

    #[test]
    fn batch_overflow_retries_surface_in_outcome() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
            8,
            SimDuration::from_micros(20),
            SimDuration::from_millis(10),
        ));
        cfg.capacity = 3;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(5, 16));
        // 3 fit the headroom; the 2 overflow messages back off and get in.
        assert_eq!(outcome.accepted(), 5);
        assert_eq!(outcome.rejected, 0);
        assert!(
            outcome.retries >= 2,
            "retries surfaced: {}",
            outcome.retries
        );
        assert_eq!(ch.stats().sent, 5);
        // Without retry the same batch rejects the overflow and reports
        // zero retries.
        cfg.retry = RetryPolicy::none();
        let id2 = e.create_channel(cfg).unwrap();
        let ch2 = e.get_mut(id2).unwrap();
        ch2.connect_endpoint().unwrap();
        let outcome2 = ch2.send_batch(SimTime::ZERO, &payloads(5, 16));
        assert_eq!(
            (outcome2.accepted(), outcome2.rejected, outcome2.retries),
            (3, 2, 0)
        );
    }

    #[test]
    fn retry_is_deterministic() {
        let run = || {
            let mut e = exec();
            let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
                5,
                SimDuration::from_micros(7),
                SimDuration::from_millis(2),
            ));
            cfg.capacity = 2;
            let id = e.create_channel(cfg).unwrap();
            let ch = e.get_mut(id).unwrap();
            ch.connect_endpoint().unwrap();
            let mut ts = Vec::new();
            for i in 0..6u8 {
                ts.push(ch.send(SimTime::ZERO, Bytes::from(vec![i; 64])).ok());
            }
            ts
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cost_profile_tracks_observed_prices() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        assert_eq!(ch.cost_profile().messages(), 0);
        assert_eq!(ch.cost_profile().ewma_latency_ns(), 0);
        assert!(ch.cost_profile().throughput_bytes_per_sec().is_none());
        // Two size classes: small control messages and large payloads.
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now = ch.send(now, Bytes::from(vec![0u8; 100])).unwrap();
        }
        for _ in 0..5 {
            now = ch.send(now, Bytes::from(vec![0u8; 60_000])).unwrap();
        }
        ch.recv_batch(now, ep, usize::MAX);
        let p = ch.cost_profile();
        assert_eq!(p.messages(), 15);
        assert_eq!(p.bytes(), 10 * 100 + 5 * 60_000);
        assert_eq!(p.doorbells(), 15);
        let fixed = ch.cost().launch_charge(true).as_nanos();
        assert_eq!(p.launch_overhead_ns(), 15 * fixed);
        // Each send was issued at the previous delivery instant, so the
        // observed latency is the unloaded cost — and the size classes
        // land in distinct buckets with distinct quantiles.
        let small = p.latency_for(100).unwrap();
        let large = p.latency_for(60_000).unwrap();
        assert_eq!(small.count(), 10);
        assert_eq!(large.count(), 5);
        assert!(large.p50().unwrap() > small.p99().unwrap());
        assert_eq!(CostProfile::size_bucket(100), 128);
        assert_eq!(CostProfile::size_bucket(60_000), 65_536);
        assert_eq!(CostProfile::size_bucket(0), 1);
        assert!(p.ewma_latency_ns() > 0);
        assert!(p.throughput_bytes_per_sec().unwrap() > 0);
        let buckets: Vec<u64> = p.size_buckets().map(|(b, _)| b).collect();
        assert_eq!(buckets, vec![128, 65_536]);
    }

    #[test]
    fn batch_pays_one_launch_overhead_charge() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send_batch(SimTime::ZERO, &payloads(8, 256));
        let p = ch.cost_profile();
        assert_eq!(p.messages(), 8);
        assert_eq!(p.doorbells(), 1, "one doorbell for the whole batch");
        assert_eq!(
            p.launch_overhead_ns(),
            ch.cost().launch_charge(true).as_nanos()
        );
    }

    #[test]
    fn queue_depth_level_rises_and_drains() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let mut last = SimTime::ZERO;
        for i in 0..3u8 {
            last = ch.send(SimTime::ZERO, Bytes::from(vec![i; 64])).unwrap();
        }
        e.recorder().sample_window(SimTime::from_millis(1));
        e.get_mut(id).unwrap().recv_batch(last, ep, usize::MAX);
        e.recorder().sample_window(SimTime::from_millis(2));
        let snap = e.recorder().snapshot();
        assert_eq!(
            snap.windows[0].level(CHANNEL_QUEUE_DEPTH, "chan#0"),
            Some(3)
        );
        assert_eq!(
            snap.windows[1].level(CHANNEL_QUEUE_DEPTH, "chan#0"),
            Some(0)
        );
    }

    #[test]
    fn closed_endpoint_receives_nothing_and_drops_queued() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let t = ch.send(SimTime::ZERO, Bytes::from_static(b"x")).unwrap();
        assert!(ch.close_endpoint(ep));
        assert!(!ch.close_endpoint(ep), "double close is a no-op");
        assert!(!ch.endpoint_open(ep));
        assert_eq!(ch.open_endpoints(), 0);
        assert!(ch.recv(t, ep).is_none());
        assert!(!ch.poll(t, ep));
        assert!(ch.recv_batch(t, ep, usize::MAX).is_empty());
        // The queued message's trace terminated with a drop event.
        let snap = e.recorder().snapshot();
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].name, "channel.endpoint_closed");
        assert_eq!(snap.counter_total("channel.endpoint_closed"), 1);
    }

    #[test]
    fn wedged_slots_shrink_the_ring() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 4;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.set_wedged_slots(3);
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"b")),
            Err(ChannelError::WouldBlock),
            "capacity 4 minus 3 wedged slots leaves room for one"
        );
    }

    #[test]
    fn send_recv_emits_connected_trace_chain() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(3)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let t = ch.send(SimTime::ZERO, Bytes::from_static(b"call")).unwrap();
        ch.recv(t, ep).unwrap();
        let snap = e.recorder().snapshot();
        let sends = snap.events_kind("send");
        let hops = snap.events_kind("hop");
        let recvs = snap.events_kind("recv");
        assert_eq!((sends.len(), hops.len(), recvs.len()), (1, 1, 1));
        // One connected chain: send -> hop -> recv.
        assert_eq!(hops[0].parent, Some(sends[0].id));
        assert_eq!(recvs[0].parent, Some(hops[0].id));
        assert!(sends
            .iter()
            .chain(&hops)
            .chain(&recvs)
            .all(|e| e.trace == sends[0].trace));
        // The chain spans host (pid 0) and the target device (pid 3).
        assert_eq!(sends[0].device, 0);
        assert_eq!(hops[0].device, 3);
        assert_eq!(recvs[0].device, 3);
    }

    #[test]
    fn rejected_send_closes_trace_with_drop() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 1;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"b")),
            Err(ChannelError::WouldBlock)
        );
        let snap = e.recorder().snapshot();
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].name, "channel.reject");
        assert_eq!(
            snap.counter("channel.rejected", "zero-copy-dma"),
            Some(1),
            "reliable rejection has its own counter"
        );
    }

    #[test]
    fn unreliable_drop_and_destroy_close_traces() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(2));
        cfg.capacity = 1;
        cfg.reliability = Reliability::Unreliable;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
        // Destroy with "a" still queued: its trace must also terminate.
        e.destroy(id);
        let snap = e.recorder().snapshot();
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 2);
        assert_eq!(drops[0].name, "channel.drop");
        assert_eq!(drops[1].name, "channel.destroyed");
        // Every minted trace ends in a terminal event (recv or drop).
        for send in snap.events_kind("send") {
            let chain = snap.trace_events(send.trace);
            let last = chain.last().unwrap();
            assert!(last.kind == "recv" || last.kind == "drop");
        }
    }
}
