//! Device health tracking: sim-time heartbeats and a
//! Healthy → Suspect → Failed state machine.
//!
//! The runtime expects every non-host device to "beat" at least once per
//! [`HealthPolicy::heartbeat_every`]. A device model that has fail-stopped
//! (its [`hydra_sim::fault::FaultInjector`] says `crashed`) goes silent;
//! after [`HealthPolicy::suspect_after`] missed beats the monitor marks it
//! Suspect, after [`HealthPolicy::fail_after`] it is Failed. A Suspect
//! device that resumes beating (a stall that cleared) is restored to
//! Healthy by the next [`HealthMonitor::poll`], which reports the
//! recovery edge like any other transition. Failure is sticky: a Failed
//! device never returns to service in this model, which keeps recovery
//! decisions (re-layout, migration) final and replayable.
//!
//! The monitor is pure bookkeeping — no wall clock, no channels — so two
//! runs over the same fault schedule produce byte-identical transitions.

use hydra_sim::{SimDuration, SimTime};

use crate::device::DeviceId;

/// Liveness verdict for one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeviceHealth {
    /// Heartbeats arriving on schedule.
    Healthy,
    /// Missed enough beats to be suspicious; still in the layout.
    Suspect,
    /// Declared dead. Sticky — never leaves this state.
    Failed,
}

impl std::fmt::Display for DeviceHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeviceHealth::Healthy => "healthy",
            DeviceHealth::Suspect => "suspect",
            DeviceHealth::Failed => "failed",
        })
    }
}

/// Thresholds for the heartbeat state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Expected beat interval per device.
    pub heartbeat_every: SimDuration,
    /// Missed beats before Healthy degrades to Suspect.
    pub suspect_after: u32,
    /// Missed beats before the device is declared Failed.
    pub fail_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            heartbeat_every: SimDuration::from_millis(1),
            suspect_after: 2,
            fail_after: 4,
        }
    }
}

/// One state-machine edge observed by [`HealthMonitor::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// The device that changed state.
    pub device: DeviceId,
    /// Its previous state.
    pub from: DeviceHealth,
    /// Its new state.
    pub to: DeviceHealth,
    /// Consecutive beats missed when the edge fired.
    pub missed: u32,
}

#[derive(Debug, Clone, Copy)]
struct DeviceTrack {
    last_beat: SimTime,
    state: DeviceHealth,
}

/// Tracks heartbeats for a fleet of devices and reports state changes.
///
/// Device index 0 is the host by convention and is exempt: the host
/// cannot fail in this model (it is where Offcodes fall back *to*).
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    tracks: Vec<DeviceTrack>,
}

impl HealthMonitor {
    /// A monitor for `devices` devices, all Healthy, last beat at time 0.
    #[must_use]
    pub fn new(policy: HealthPolicy, devices: usize) -> Self {
        HealthMonitor {
            policy,
            tracks: vec![
                DeviceTrack {
                    last_beat: SimTime::ZERO,
                    state: DeviceHealth::Healthy,
                };
                devices
            ],
        }
    }

    /// The configured policy.
    #[must_use]
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Number of tracked devices (including the exempt host slot).
    #[must_use]
    pub fn devices(&self) -> usize {
        self.tracks.len()
    }

    /// Record a heartbeat from `device` at `now`. Failed is sticky and
    /// ignores late beats.
    ///
    /// The beat only refreshes the deadline clock — the Suspect → Healthy
    /// edge itself fires from the next [`HealthMonitor::poll`], so a
    /// device that resumes beating after a stall produces an observable
    /// recovery transition instead of silently snapping back (the
    /// historical behavior reset state here, and `poll` — the only place
    /// transitions are reported — never saw the recovery).
    pub fn beat(&mut self, device: DeviceId, now: SimTime) {
        let Some(track) = self.tracks.get_mut(device.idx()) else {
            return;
        };
        if track.state == DeviceHealth::Failed {
            return;
        }
        track.last_beat = track.last_beat.max(now);
    }

    /// Evaluate every device against the deadline at `now` and return the
    /// transitions that fired, in device order.
    pub fn poll(&mut self, now: SimTime) -> Vec<HealthTransition> {
        let mut out = Vec::new();
        let period = self.policy.heartbeat_every.as_nanos();
        if period == 0 {
            return out;
        }
        for (idx, track) in self.tracks.iter_mut().enumerate() {
            if idx == 0 || track.state == DeviceHealth::Failed {
                continue;
            }
            let elapsed = now.as_nanos().saturating_sub(track.last_beat.as_nanos());
            let missed = u32::try_from(elapsed / period).unwrap_or(u32::MAX);
            let next = if missed >= self.policy.fail_after {
                DeviceHealth::Failed
            } else if missed >= self.policy.suspect_after {
                DeviceHealth::Suspect
            } else {
                DeviceHealth::Healthy
            };
            if next != track.state {
                out.push(HealthTransition {
                    device: DeviceId(idx as u32),
                    from: track.state,
                    to: next,
                    missed,
                });
                track.state = next;
            }
        }
        out
    }

    /// Current state of `device` (Healthy for unknown indices, so a
    /// monitor built before hot-plug stays permissive).
    #[must_use]
    pub fn state(&self, device: DeviceId) -> DeviceHealth {
        self.tracks
            .get(device.idx())
            .map_or(DeviceHealth::Healthy, |t| t.state)
    }

    /// Force `device` straight to Failed (e.g. the runtime saw the crash
    /// directly instead of waiting out the deadline).
    pub fn mark_failed(&mut self, device: DeviceId) {
        if device.0 == 0 {
            return;
        }
        if let Some(track) = self.tracks.get_mut(device.idx()) {
            track.state = DeviceHealth::Failed;
        }
    }

    /// Whether `device` has been declared Failed.
    #[must_use]
    pub fn is_failed(&self, device: DeviceId) -> bool {
        self.state(device) == DeviceHealth::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn silence_escalates_healthy_suspect_failed() {
        let mut mon = HealthMonitor::new(HealthPolicy::default(), 3);
        mon.beat(DeviceId(1), at_ms(0));
        mon.beat(DeviceId(2), at_ms(0));
        assert!(mon.poll(at_ms(1)).is_empty());

        // Device 2 keeps beating; device 1 goes silent.
        mon.beat(DeviceId(2), at_ms(2));
        let t = mon.poll(at_ms(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].device, DeviceId(1));
        assert_eq!(t[0].to, DeviceHealth::Suspect);

        mon.beat(DeviceId(2), at_ms(4));
        let t = mon.poll(at_ms(4));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, DeviceHealth::Failed);
        assert!(mon.is_failed(DeviceId(1)));
        assert_eq!(mon.state(DeviceId(2)), DeviceHealth::Healthy);
    }

    #[test]
    fn beat_clears_suspect_but_failed_is_sticky() {
        let mut mon = HealthMonitor::new(HealthPolicy::default(), 2);
        let t = mon.poll(at_ms(3));
        assert_eq!(t[0].to, DeviceHealth::Suspect);
        mon.beat(DeviceId(1), at_ms(3));
        // The beat refreshes the deadline; the recovery edge itself is
        // poll's to report.
        assert_eq!(mon.state(DeviceId(1)), DeviceHealth::Suspect);
        let t = mon.poll(at_ms(3));
        assert_eq!(t.len(), 1);
        assert_eq!(
            (t[0].from, t[0].to),
            (DeviceHealth::Suspect, DeviceHealth::Healthy)
        );
        assert_eq!(mon.state(DeviceId(1)), DeviceHealth::Healthy);

        mon.mark_failed(DeviceId(1));
        mon.beat(DeviceId(1), at_ms(4));
        assert!(mon.is_failed(DeviceId(1)));
        assert!(mon.poll(at_ms(100)).is_empty());
    }

    #[test]
    fn stall_then_recover_round_trips_through_suspect() {
        let mut mon = HealthMonitor::new(HealthPolicy::default(), 2);
        mon.beat(DeviceId(1), at_ms(1));
        assert!(mon.poll(at_ms(2)).is_empty());
        // Two missed beats while stalled: Suspect, but not yet Failed.
        let t = mon.poll(at_ms(3));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, DeviceHealth::Suspect);
        assert_eq!(t[0].missed, 2);
        // The stall clears and beats resume before the fail deadline.
        mon.beat(DeviceId(1), at_ms(4));
        let t = mon.poll(at_ms(4));
        assert_eq!(t.len(), 1);
        assert_eq!(
            (t[0].from, t[0].to),
            (DeviceHealth::Suspect, DeviceHealth::Healthy)
        );
        // Recovered for good: later polls stay quiet while beats flow.
        mon.beat(DeviceId(1), at_ms(5));
        assert!(mon.poll(at_ms(5)).is_empty());
    }

    #[test]
    fn host_is_exempt() {
        let mut mon = HealthMonitor::new(HealthPolicy::default(), 2);
        mon.mark_failed(DeviceId(0));
        assert!(mon.poll(at_ms(1000)).iter().all(|t| t.device.0 != 0));
        assert_eq!(mon.state(DeviceId(0)), DeviceHealth::Healthy);
    }

    #[test]
    fn skipping_straight_to_failed_reports_one_edge() {
        let mut mon = HealthMonitor::new(HealthPolicy::default(), 2);
        let t = mon.poll(at_ms(50));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].from, DeviceHealth::Healthy);
        assert_eq!(t[0].to, DeviceHealth::Failed);
        assert!(t[0].missed >= 4);
    }
}
