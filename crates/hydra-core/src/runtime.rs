//! The HYDRA runtime: depot, deployment pipeline, invocation.
//!
//! This is the paper's §3.4/§4 machinery end to end. Applications register
//! Offcode implementations (with their ODFs) in the **depot**, then call
//! [`Runtime::create_offcode`]. The runtime gathers the transitive import
//! closure, builds the offloading layout graph, resolves placement (exact
//! ILP or greedy), links each Offcode's object file at a device-allocated
//! base address (falling back to the host CPU when a device cannot take
//! it, per §3.4), constructs OOB channels, registers everything in the
//! hierarchical resource tree, and drives the two-phase
//! `initialize`/`start` protocol.
//!
//! Channels created here are one-directional sender → connected
//! Offcode(s); return values travel through the `Call`'s return
//! descriptor (the runtime hands them back from [`Runtime::invoke`] and
//! [`Runtime::pump`]).

use std::collections::HashMap;

use bytes::Bytes;
use hydra_hw::cpu::Cycles;
use hydra_link::linker::LinkedImage;
use hydra_link::loader::{
    load_device_side, load_host_side, DeviceMemoryAllocator, LoadError, LoadPlan, LoadStrategy,
};
use hydra_obs::{MetricsSnapshot, Recorder, SpanId};
use hydra_odf::odf::{Guid, OdfDocument};
use hydra_sim::fault::{FaultInjector, FaultPlan};
use hydra_sim::time::{SimDuration, SimTime};

use crate::call::{Call, Value};
use crate::channel::{BatchSendOutcome, ChannelConfig, ChannelError, ChannelExecutive, ChannelId};
use crate::device::{DeviceId, DeviceRegistry};
use crate::error::{MigrateError, MigrateLeg, RuntimeError};
use crate::health::{DeviceHealth, HealthMonitor, HealthPolicy};
use crate::layout::{GraphDelta, LayoutGraph, NodeIdx, Objective, Placement};
use crate::offcode::{Offcode, OffcodeCtx, OffcodeId};
use crate::resource::{ResourceId, ResourceKind, ResourceManager};

/// Which layout resolver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Exact branch-and-bound ILP (paper §5).
    Ilp,
    /// The greedy heuristic.
    Greedy,
}

/// Runtime policy knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Layout objective.
    pub objective: Objective,
    /// Layout resolver.
    pub solver: SolverKind,
    /// Offcode loading strategy (§4.2).
    pub load_strategy: LoadStrategy,
    /// Flight-recorder capacity in trace events; older events are evicted
    /// (and counted) once the ring is full.
    pub flight_capacity: usize,
    /// Run the static verifier (`hydra-verify`) as a pre-flight gate in
    /// [`Runtime::create_offcode`] and reject deployments with
    /// error-severity diagnostics before anything is linked. On by
    /// default; the escape hatch exists for tests that deliberately
    /// deploy broken sets to exercise runtime fallback paths.
    pub verify_deployments: bool,
    /// Also run the quantitative certification passes (flow bounds
    /// HV040–HV044 and ring-race detection HV050–HV051) in the
    /// pre-flight gate, rejecting deployments whose declared traffic is
    /// statically unservable or whose ring sharing can race. Off by
    /// default: quantitative findings depend on `<traffic>` declarations
    /// most existing sets do not carry, and shared-instance reuse (a
    /// deliberate paper feature) would otherwise need per-set waivers.
    /// [`Runtime::certify_deployment`] reports the full certification
    /// regardless of this flag.
    pub certify_deployments: bool,
    /// Heartbeat deadlines for the device health monitor driven by
    /// [`Runtime::pulse`].
    pub health: HealthPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            objective: Objective::MaximizeOffloading,
            solver: SolverKind::Ilp,
            load_strategy: LoadStrategy::HostSideLink,
            flight_capacity: hydra_obs::trace::DEFAULT_FLIGHT_CAPACITY,
            verify_deployments: true,
            certify_deployments: false,
            health: HealthPolicy::default(),
        }
    }
}

/// Lifecycle state of a deployed Offcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lifecycle {
    /// Linked and placed; `initialize` not yet called.
    Loaded,
    /// `initialize` succeeded.
    Initialized,
    /// `start` succeeded; fully operational.
    Started,
}

struct DepotEntry {
    odf: OdfDocument,
    factory: Box<dyn Fn() -> Box<dyn Offcode>>,
}

impl std::fmt::Debug for DepotEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepotEntry")
            .field("odf", &self.odf.bind_name)
            .finish_non_exhaustive()
    }
}

/// A deployed instance's public record.
#[derive(Debug)]
pub struct Deployment {
    /// The instance id.
    pub id: OffcodeId,
    /// Where it landed.
    pub device: DeviceId,
    /// Its lifecycle state.
    pub state: Lifecycle,
    /// Its default out-of-band channel.
    pub oob: ChannelId,
    /// The load-cost accounting.
    pub plan: LoadPlan,
}

#[derive(Debug)]
struct Instance {
    offcode: Box<dyn Offcode>,
    guid: Guid,
    device: DeviceId,
    state: Lifecycle,
    oob: ChannelId,
    resource: ResourceId,
    plan: LoadPlan,
    #[allow(dead_code)]
    image: LinkedImage,
}

/// A value returned through a channel dispatch (see [`Runtime::pump`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchResult {
    /// The Offcode that handled the call.
    pub handler: OffcodeId,
    /// The call's return descriptor id.
    pub return_id: u64,
    /// The returned value (or the error, stringified).
    pub result: Result<Value, String>,
}

/// The HYDRA runtime.
///
/// # Examples
///
/// See `examples/quickstart.rs` for the full Figure-3 flow; the unit
/// tests below deploy multi-Offcode applications with constraints.
#[derive(Debug)]
pub struct Runtime {
    devices: DeviceRegistry,
    config: RuntimeConfig,
    executive: ChannelExecutive,
    resources: ResourceManager,
    app_root: ResourceId,
    // The Guid-keyed maps below are the API boundary (depot, ODF,
    // verify); everything on the invoke/pump hot path uses dense
    // integer ids into the Vec tables that follow.
    depot: HashMap<Guid, DepotEntry>,
    bind_names: HashMap<String, Guid>,
    /// Instance table indexed by [`OffcodeId::idx`]. Ids are handed out
    /// monotonically from 1 (slot 0 is permanently empty); teardown
    /// retires a slot without recycling it.
    instances: Vec<Option<Instance>>,
    deployed_by_guid: HashMap<Guid, OffcodeId>,
    allocators: Vec<DeviceMemoryAllocator>,
    /// Receiver bindings per channel, indexed by [`ChannelId::idx`].
    connections: Vec<Option<Vec<(usize, OffcodeId)>>>,
    /// Cycles charged per device, indexed by [`DeviceId::idx`].
    device_work: Vec<Cycles>,
    next_offcode: u32,
    recorder: Recorder,
    health: HealthMonitor,
    injectors: Vec<Option<FaultInjector>>,
}

/// What failure recovery did for one fail-stopped device (see
/// [`Runtime::on_device_failure`]). All vectors are sorted so identical
/// runs produce identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The device that failed.
    pub device: DeviceId,
    /// Bind names of every Offcode the recovery had to move (those on the
    /// failed device plus constraint-dragged peers), sorted.
    pub displaced: Vec<String>,
    /// Snapshot migrations performed: (guid, where it landed), in the
    /// order they ran.
    pub migrated: Vec<(Guid, DeviceId)>,
    /// How many displaced Offcodes ended up on the host.
    pub host_fallbacks: usize,
    /// Offcodes without snapshot support that were redeployed fresh.
    pub redeployed: Vec<Guid>,
    /// Whether the achieved placement satisfies the recovery layout graph
    /// (false only if a cascade of load failures bent the constraints).
    pub constraints_ok: bool,
}

impl Runtime {
    fn instance(&self, id: OffcodeId) -> Option<&Instance> {
        self.instances.get(id.idx()).and_then(Option::as_ref)
    }

    fn instance_mut(&mut self, id: OffcodeId) -> Option<&mut Instance> {
        self.instances.get_mut(id.idx()).and_then(Option::as_mut)
    }

    /// Live instances in ascending id order.
    fn iter_instances(&self) -> impl Iterator<Item = (OffcodeId, &Instance)> {
        self.instances
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|inst| (OffcodeId(i as u32), inst)))
    }

    /// The (possibly fresh) binding list of a channel.
    fn connections_entry(&mut self, chan: ChannelId) -> &mut Vec<(usize, OffcodeId)> {
        let i = chan.idx();
        if self.connections.len() <= i {
            self.connections.resize_with(i + 1, || None);
        }
        self.connections[i].get_or_insert_with(Vec::new)
    }

    /// Creates a runtime over a set of installed devices.
    pub fn new(devices: DeviceRegistry, config: RuntimeConfig) -> Self {
        let mut resources = ResourceManager::new();
        let app_root = resources.register_root(ResourceKind::Other, "oa-application");
        let allocators: Vec<DeviceMemoryAllocator> = devices
            .iter()
            .map(|(_, d)| DeviceMemoryAllocator::new(0x1_0000, d.offcode_memory))
            .collect();
        let recorder = Recorder::new();
        recorder.set_flight_capacity(config.flight_capacity);
        let mut executive = ChannelExecutive::with_default_providers();
        executive.set_recorder(recorder.clone());
        let health = HealthMonitor::new(config.health, allocators.len());
        let injectors = (0..allocators.len()).map(|_| None).collect();
        Runtime {
            devices,
            config,
            executive,
            resources,
            app_root,
            depot: HashMap::new(),
            bind_names: HashMap::new(),
            instances: vec![None], // ids start at 1; slot 0 stays empty
            deployed_by_guid: HashMap::new(),
            device_work: vec![Cycles::ZERO; allocators.len()],
            allocators,
            connections: Vec::new(),
            next_offcode: 1,
            recorder,
            health,
            injectors,
        }
    }

    /// Installs a deterministic fault schedule: one injector per device,
    /// split from the plan's seed. Scenario code that also drives device
    /// *models* derives its own injectors from the same plan, so the
    /// runtime's health view and the models' behavior agree tick for tick.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for (k, slot) in self.injectors.iter_mut().enumerate() {
            let injector = plan.injector(k);
            *slot = if injector.is_inert() {
                None
            } else {
                Some(injector)
            };
        }
    }

    /// The health monitor's current verdict for a device.
    pub fn device_health(&self, device: DeviceId) -> DeviceHealth {
        self.health.state(device)
    }

    /// One health tick. Collects heartbeats from every device that has
    /// not fail-stopped (a crashed device goes silent and earns a
    /// `fault.heartbeat_missed` count), propagates ring-exhaustion faults
    /// into channel capacity, escalates missed deadlines through the
    /// Healthy → Suspect → Failed state machine, and runs
    /// [`Runtime::on_device_failure`] for every device that crosses into
    /// Failed. Call it on a cadence of [`HealthPolicy::heartbeat_every`].
    ///
    /// # Errors
    ///
    /// Propagates recovery failures; see [`Runtime::on_device_failure`].
    pub fn pulse(&mut self, now: SimTime) -> Result<Vec<RecoveryReport>, RuntimeError> {
        for k in 1..self.injectors.len() {
            let silent = self.injectors[k]
                .as_ref()
                .is_some_and(|f| f.crashed(now) || f.stall_penalty(now) > SimDuration::ZERO);
            let device = DeviceId(k as u32);
            if silent {
                // Crashed devices go dark; a stalled device is alive but
                // too wedged to service its heartbeat deadline, so both
                // miss the beat and let the Suspect escalation run.
                self.recorder
                    .counter_incr("fault.heartbeat_missed", &device.to_string());
            } else {
                self.health.beat(device, now);
            }
        }
        for chan in self.executive.ids() {
            let Some((target, live_ring)) = self
                .executive
                .get(chan)
                .map(|c| (c.config().target, c.open_endpoints() > 0))
            else {
                continue;
            };
            // Wedged slots belong to the live descriptor ring: a channel
            // whose endpoints all closed (teardown, Offcode migration)
            // rebuilds its ring and must not inherit the wedge, and an
            // injector whose fault window produced zero wedged slots
            // sweeps any count a previous pulse propagated.
            let wedged = if live_ring {
                self.injectors
                    .get(target.idx())
                    .and_then(Option::as_ref)
                    .map_or(0, |f| f.wedged_slots(now))
            } else {
                0
            };
            if let Some(ch) = self.executive.get_mut(chan) {
                ch.set_wedged_slots(wedged);
                if wedged > 0 {
                    self.recorder
                        .counter_incr("fault.ring_wedged", &target.to_string());
                }
            }
        }
        let transitions = self.health.poll(now);
        let mut reports = Vec::new();
        for t in transitions {
            match t.to {
                DeviceHealth::Suspect => self
                    .recorder
                    .counter_incr("fault.device_suspect", &t.device.to_string()),
                DeviceHealth::Failed => reports.push(self.on_device_failure(t.device, now)?),
                DeviceHealth::Healthy => self
                    .recorder
                    .counter_incr("fault.device_recovered", &t.device.to_string()),
            }
        }
        Ok(reports)
    }

    /// The runtime's observability recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// An ordering-stable report of everything recorded so far: pipeline
    /// stage spans, channel counters/histograms, solver and loader
    /// statistics — plus every live channel's [`CostProfile`] and
    /// provider-selection state, so the observed channel prices and the
    /// executive's online decisions are auditable from one snapshot.
    /// Identical runs render identical snapshots (see
    /// `tests/obs_determinism.rs`).
    ///
    /// [`CostProfile`]: crate::channel::CostProfile
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.recorder.snapshot();
        snap.channels = self
            .executive
            .ids()
            .into_iter()
            .filter_map(|id| self.executive.get(id))
            .map(|ch| {
                let p = ch.cost_profile();
                hydra_obs::ChannelProfileSample {
                    label: ch.id().to_string(),
                    provider: ch.provider_name().to_owned(),
                    adaptive: ch.is_adaptive(),
                    switches: ch.provider_switches(),
                    messages: p.messages(),
                    bytes: p.bytes(),
                    doorbells: p.doorbells(),
                    launch_overhead_ns: p.launch_overhead_ns(),
                    ewma_latency_ns: p.ewma_latency_ns(),
                    throughput_bytes_per_sec: p.throughput_bytes_per_sec().unwrap_or(0),
                    buckets: p
                        .size_buckets()
                        .map(|(bucket, h)| hydra_obs::ProfileBucketSample {
                            bucket_bytes: bucket,
                            count: h.count(),
                            p50_ns: h.p50().unwrap_or(0),
                            p99_ns: h.p99().unwrap_or(0),
                        })
                        .collect(),
                }
            })
            .collect();
        snap
    }

    /// The flight recorder's causal event chains rendered as Chrome
    /// trace-event JSON — load the output in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev). Sim-time microseconds on the
    /// timeline, one "process" track per device, flow arrows stitching
    /// each message's send → hop → recv chain across devices. Identical
    /// runs export byte-identical JSON.
    pub fn trace_export(&self) -> String {
        hydra_obs::chrome_trace(&self.recorder.snapshot())
    }

    /// The device registry.
    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// The channel executive (e.g. to read per-channel cost profiles).
    pub fn executive(&self) -> &ChannelExecutive {
        &self.executive
    }

    /// The channel executive (e.g. to register device-specific providers).
    pub fn executive_mut(&mut self) -> &mut ChannelExecutive {
        &mut self.executive
    }

    /// The resource tree.
    pub fn resources(&self) -> &ResourceManager {
        &self.resources
    }

    /// Registers and deploys the standard pseudo-Offcodes (`hydra.Heap`,
    /// `hydra.Runtime` — paper §4) so applications can `GetOffcode` them
    /// by bind name, exactly like the paper's Figure 3 obtains
    /// `hydra.ChannelExecutive`.
    ///
    /// # Errors
    ///
    /// Fails if the pseudo GUIDs are already taken or deployment fails.
    pub fn install_pseudo_offcodes(&mut self, now: SimTime) -> Result<(), RuntimeError> {
        self.register_offcode(crate::pseudo::HeapOffcode::odf(), || {
            Box::new(crate::pseudo::HeapOffcode::new(1 << 20))
        })?;
        self.register_offcode(crate::pseudo::RuntimeInfoOffcode::odf(), || {
            Box::new(crate::pseudo::RuntimeInfoOffcode::new())
        })?;
        self.create_offcode(crate::pseudo::HEAP_GUID, now)?;
        self.create_offcode(crate::pseudo::RUNTIME_GUID, now)?;
        Ok(())
    }

    /// Registers an Offcode implementation with its ODF in the depot.
    ///
    /// # Errors
    ///
    /// Rejects duplicate GUIDs.
    pub fn register_offcode(
        &mut self,
        odf: OdfDocument,
        factory: impl Fn() -> Box<dyn Offcode> + 'static,
    ) -> Result<(), RuntimeError> {
        if self.depot.contains_key(&odf.guid) {
            return Err(RuntimeError::Rejected(format!(
                "guid {} already in depot",
                odf.guid
            )));
        }
        self.bind_names.insert(odf.bind_name.clone(), odf.guid);
        self.depot.insert(
            odf.guid,
            DepotEntry {
                odf,
                factory: Box::new(factory),
            },
        );
        Ok(())
    }

    /// Resolves a bind name to a depot GUID (`hydra.Runtime`'s
    /// `GetOffcode` by name).
    pub fn lookup_bind_name(&self, bind_name: &str) -> Option<Guid> {
        self.bind_names.get(bind_name).copied()
    }

    /// The deployed instance implementing `guid`, if any.
    pub fn get_offcode(&self, guid: Guid) -> Option<OffcodeId> {
        self.deployed_by_guid.get(&guid).copied()
    }

    /// The device hosting a deployed instance.
    pub fn device_of(&self, id: OffcodeId) -> Option<DeviceId> {
        self.instance(id).map(|i| i.device)
    }

    /// Public deployment records, ordered by instance id (the table's
    /// natural order).
    pub fn deployments(&self) -> Vec<Deployment> {
        self.iter_instances()
            .map(|(id, inst)| Deployment {
                id,
                device: inst.device,
                state: inst.state,
                oob: inst.oob,
                plan: inst.plan,
            })
            .collect()
    }

    /// Cycles charged per device so far.
    pub fn device_work(&self, device: DeviceId) -> Cycles {
        self.device_work
            .get(device.idx())
            .copied()
            .unwrap_or(Cycles::ZERO)
    }

    /// The `CreateOffcode` API: deploys the Offcode identified by `guid`
    /// together with the transitive closure of its imports, returning the
    /// root instance id.
    ///
    /// Already-deployed Offcodes in the closure are reused (the paper's
    /// component-reuse motivation); their placement is left untouched.
    ///
    /// # Errors
    ///
    /// Fails if any Offcode in the closure is missing from the depot, the
    /// layout is unsatisfiable, loading fails even after the host
    /// fallback, or an `initialize`/`start` hook rejects. On failure all
    /// partially deployed instances are rolled back.
    pub fn create_offcode(&mut self, guid: Guid, now: SimTime) -> Result<OffcodeId, RuntimeError> {
        if let Some(existing) = self.deployed_by_guid.get(&guid) {
            return Ok(*existing);
        }
        // 1. Transitive closure, root first (DFS, de-duplicated).
        let (order, odfs) = self.deployment_closure(guid)?;
        let root_label = self.depot[&guid].odf.bind_name.clone();
        self.recorder
            .span("deploy.closure", &root_label, now, order.len() as u64);

        // 2. Static pre-flight verification (on by default): reject
        // provably broken deployments before anything is linked.
        if self.config.verify_deployments {
            let report = if self.config.certify_deployments {
                self.run_certifier(guid, &order, &odfs, now).report
            } else {
                self.run_verifier(guid, &order, &odfs, now)
            };
            if report.has_errors() {
                let rendered: Vec<String> = report.errors().map(ToString::to_string).collect();
                return Err(RuntimeError::Verification(rendered.join("; ")));
            }
        }

        // 3. Layout graph over the not-yet-deployed closure. Imports that
        // point outside the set (already deployed) are dropped from the
        // graph: their constraints were satisfied at their own deployment.
        let graph = LayoutGraph::from_odfs(&odfs, &self.devices)?;
        self.recorder.span(
            "deploy.layout",
            &root_label,
            now,
            (graph.nodes().len() + graph.edges().len()) as u64,
        );

        // 4. Resolve placement. Under the exact solver, also run the
        // greedy heuristic on the same graph so the snapshot can compare
        // solution quality and modeled solve effort (the deterministic
        // stand-in for "solve time").
        let placement = match self.config.solver {
            SolverKind::Ilp => {
                let (placement, stats) = graph.resolve_ilp_with_stats(&self.config.objective)?;
                if stats.presolved {
                    self.recorder.counter_incr("solver.presolved", "ilp");
                }
                self.recorder
                    .counter_add("solver.nodes_explored", "ilp", stats.nodes);
                self.recorder
                    .counter_add("solver.bounds_pruned", "ilp", stats.pruned);
                self.recorder.counter_add(
                    "solver.offloaded",
                    "ilp",
                    placement.offloaded_count() as u64,
                );
                let greedy = graph.resolve_greedy(&self.config.objective);
                self.recorder.counter_add(
                    "solver.offloaded",
                    "greedy",
                    greedy.offloaded_count() as u64,
                );
                self.recorder.span("deploy.solve", "ilp", now, stats.nodes);
                placement
            }
            SolverKind::Greedy => {
                let placement = graph.resolve_greedy(&self.config.objective);
                self.recorder.counter_add(
                    "solver.offloaded",
                    "greedy",
                    placement.offloaded_count() as u64,
                );
                self.recorder
                    .span("deploy.solve", "greedy", now, graph.nodes().len() as u64);
                placement
            }
        };
        graph.check(&placement)?;

        // 5. Load + instantiate each, with host fallback on device OOM.
        let mut created: Vec<OffcodeId> = Vec::new();
        let result = self.deploy_all(&order, &placement, now, &mut created);
        match result {
            Ok(()) => Ok(*created.first().expect("closure is non-empty")),
            Err(e) => {
                // Roll back everything created in this call.
                for id in created {
                    self.teardown(id);
                }
                Err(e)
            }
        }
    }

    /// Convenience: `create_offcode` by bind name.
    ///
    /// # Errors
    ///
    /// As [`Runtime::create_offcode`]; also fails if the name is unknown.
    pub fn create_offcode_by_name(
        &mut self,
        bind_name: &str,
        now: SimTime,
    ) -> Result<OffcodeId, RuntimeError> {
        let guid = self
            .lookup_bind_name(bind_name)
            .ok_or_else(|| RuntimeError::Rejected(format!("unknown bind name '{bind_name}'")))?;
        self.create_offcode(guid, now)
    }

    /// The not-yet-deployed transitive import closure of `guid`, root
    /// first, plus the closure's ODFs with imports narrowed to the set
    /// (imports of already-deployed Offcodes were satisfied at their own
    /// deployment).
    fn deployment_closure(
        &self,
        guid: Guid,
    ) -> Result<(Vec<Guid>, Vec<OdfDocument>), RuntimeError> {
        let mut order: Vec<Guid> = Vec::new();
        let mut stack = vec![guid];
        while let Some(g) = stack.pop() {
            if order.contains(&g) || self.deployed_by_guid.contains_key(&g) {
                continue;
            }
            let entry = self.depot.get(&g).ok_or(RuntimeError::NotInDepot(g))?;
            order.push(g);
            for imp in &entry.odf.imports {
                stack.push(imp.guid);
            }
        }
        let odfs: Vec<OdfDocument> = order
            .iter()
            .map(|g| {
                let mut odf = self.depot[g].odf.clone();
                odf.imports.retain(|imp| order.contains(&imp.guid));
                odf
            })
            .collect();
        Ok((order, odfs))
    }

    /// Runs the static verifier over a closure, feeding pass statistics
    /// into the observability recorder. Demands are the real linked
    /// object sizes (each factory's object file), not the ODF estimates.
    fn run_verifier(
        &self,
        root: Guid,
        order: &[Guid],
        odfs: &[OdfDocument],
        now: SimTime,
    ) -> hydra_verify::Report {
        let table = self.devices.verify_table();
        let demands: Vec<u64> = order
            .iter()
            .map(|g| u64::from((self.depot[g].factory)().object_file().load_size()))
            .collect();
        let roots = [root];
        let report = hydra_verify::verify(&hydra_verify::VerifyInput {
            odfs,
            devices: &table,
            demands: Some(&demands),
            roots: Some(&roots),
        });
        self.record_verify_report(root, now, &report);
        report
    }

    /// Runs the full certification (structural passes plus flow bounds
    /// and ring-race analysis) over a closure, with the service table
    /// exported straight from the live channel executive.
    fn run_certifier(
        &self,
        root: Guid,
        order: &[Guid],
        odfs: &[OdfDocument],
        now: SimTime,
    ) -> hydra_verify::Certification {
        let table = self.devices.verify_table();
        let services = self.executive.service_table();
        let demands: Vec<u64> = order
            .iter()
            .map(|g| u64::from((self.depot[g].factory)().object_file().load_size()))
            .collect();
        let roots = [root];
        let cert = hydra_verify::certify(&hydra_verify::CertifyInput {
            verify: hydra_verify::VerifyInput {
                odfs,
                devices: &table,
                demands: Some(&demands),
                roots: Some(&roots),
            },
            services: &services,
            overlay: None,
        });
        self.record_verify_report(root, now, &cert.report);
        cert
    }

    /// Feeds a verification/certification report's pass statistics into
    /// the observability recorder.
    fn record_verify_report(&self, root: Guid, now: SimTime, report: &hydra_verify::Report) {
        let root_label = self
            .depot
            .get(&root)
            .map_or_else(String::new, |e| e.odf.bind_name.clone());
        let total_work: u64 = report.passes.iter().map(|p| p.work_units).sum();
        self.recorder
            .span("deploy.verify", &root_label, now, total_work);
        for pass in &report.passes {
            self.recorder
                .counter_add("verify.pass_work", pass.name, pass.work_units);
            self.recorder
                .counter_add("verify.diagnostics", pass.name, pass.diagnostics as u64);
        }
        self.recorder.counter_add(
            "verify.errors",
            "",
            report.count(hydra_verify::Severity::Error) as u64,
        );
        self.recorder.counter_add(
            "verify.warnings",
            "",
            report.count(hydra_verify::Severity::Warning) as u64,
        );
    }

    /// Statically verifies the deployment closure of `guid` without
    /// deploying anything. Runs the full certification (all six passes,
    /// including flow bounds and ring-race analysis) and returns its
    /// report — a superset of what the default pre-flight gate inside
    /// [`Runtime::create_offcode`] acts on.
    ///
    /// # Errors
    ///
    /// Fails only if an Offcode in the closure is missing from the depot;
    /// verifier findings are returned in the report, not as errors.
    pub fn verify_deployment(
        &self,
        guid: Guid,
        now: SimTime,
    ) -> Result<hydra_verify::Report, RuntimeError> {
        Ok(self.certify_deployment(guid, now)?.report)
    }

    /// Certifies the deployment closure of `guid` without deploying
    /// anything: the combined six-pass report plus the quantitative
    /// certificate (per-ring queue/latency bounds, per-chain latency,
    /// per-device utilization), costed from the live executive's
    /// provider table.
    ///
    /// # Errors
    ///
    /// Fails only if an Offcode in the closure is missing from the
    /// depot.
    pub fn certify_deployment(
        &self,
        guid: Guid,
        now: SimTime,
    ) -> Result<hydra_verify::Certification, RuntimeError> {
        let (order, odfs) = self.deployment_closure(guid)?;
        Ok(self.run_certifier(guid, &order, &odfs, now))
    }

    fn deploy_all(
        &mut self,
        order: &[Guid],
        placement: &Placement,
        now: SimTime,
        created: &mut Vec<OffcodeId>,
    ) -> Result<(), RuntimeError> {
        let link_span = self.recorder.span("deploy.link_load", "", now, 0);
        for (n, &g) in order.iter().enumerate() {
            let device = placement.0[n];
            let id = self.deploy_one(g, device, Some((link_span, now)))?;
            created.push(id);
            let plan = self.instance(id).expect("just deployed").plan;
            self.recorder
                .add_span_work(link_span, plan.host_work_units + plan.device_work_units);
        }
        self.recorder
            .span("deploy.channels", "", now, created.len() as u64);
        // Phase 1: initialize leaves first (imports precede importers in
        // reverse order).
        self.recorder
            .span("deploy.initialize", "", now, created.len() as u64);
        for &id in created.iter().rev() {
            self.run_phase(id, now, Phase::Initialize)?;
        }
        // Phase 2: start, same order.
        self.recorder
            .span("deploy.start", "", now, created.len() as u64);
        for &id in created.iter().rev() {
            self.run_phase(id, now, Phase::Start)?;
        }
        Ok(())
    }

    /// Links and loads `guid`'s object at exactly `device` — no host
    /// fallback, nothing registered. The migration path uses this to
    /// validate the target *before* destroying the source instance.
    fn load_at(
        &mut self,
        guid: Guid,
        device: DeviceId,
    ) -> Result<(Box<dyn Offcode>, LinkedImage, LoadPlan), LoadError> {
        let entry = &self.depot[&guid];
        let offcode = (entry.factory)();
        let object = offcode.object_file();
        let exports = self.devices.get(device).exports.clone();
        let attempt = match self.config.load_strategy {
            LoadStrategy::HostSideLink => load_host_side(
                std::slice::from_ref(&object),
                &mut self.allocators[device.idx()],
                &exports,
            ),
            LoadStrategy::DeviceSideLink => load_device_side(
                std::slice::from_ref(&object),
                &mut self.allocators[device.idx()],
                &exports,
            ),
        };
        attempt.map(|(image, plan)| (offcode, image, plan))
    }

    fn deploy_one(
        &mut self,
        guid: Guid,
        device: DeviceId,
        span_parent: Option<(SpanId, SimTime)>,
    ) -> Result<OffcodeId, RuntimeError> {
        // Try the chosen device; fall back to the host on OOM (§3.4).
        let (device, offcode, image, plan) = match self.load_at(guid, device) {
            Ok((offcode, image, plan)) => (device, offcode, image, plan),
            Err(LoadError::Memory(_)) if !device.is_host() => {
                self.recorder.counter_incr("deploy.host_fallback", "");
                let entry = &self.depot[&guid];
                let offcode = (entry.factory)();
                let object = offcode.object_file();
                let exports = self.devices.get(DeviceId::HOST).exports.clone();
                let (image, plan) = load_host_side(
                    &[object],
                    &mut self.allocators[DeviceId::HOST.idx()],
                    &exports,
                )?;
                (DeviceId::HOST, offcode, image, plan)
            }
            Err(e) => return Err(e.into()),
        };
        self.register_loaded(guid, device, offcode, image, plan, span_parent)
    }

    /// Registers an already-loaded image as a live instance: accounting
    /// counters, resource subtree, OOB channel, instance table entry.
    fn register_loaded(
        &mut self,
        guid: Guid,
        device: DeviceId,
        offcode: Box<dyn Offcode>,
        image: LinkedImage,
        plan: LoadPlan,
        span_parent: Option<(SpanId, SimTime)>,
    ) -> Result<OffcodeId, RuntimeError> {
        let bind_name = self.depot[&guid].odf.bind_name.clone();
        let strategy_label = match plan.strategy {
            LoadStrategy::HostSideLink => "host-side",
            LoadStrategy::DeviceSideLink => "device-side",
        };
        self.recorder.counter_incr("load.strategy", strategy_label);
        self.recorder
            .counter_add("link.relocations_applied", "", plan.relocations_applied);
        self.recorder
            .counter_add("link.transfer_bytes", "", plan.transfer_bytes);
        if let Some((parent, at)) = span_parent {
            self.recorder.child_span(
                parent,
                "deploy.offcode",
                &bind_name,
                at,
                plan.host_work_units + plan.device_work_units,
            );
        }

        let id = OffcodeId(self.next_offcode);
        self.next_offcode += 1;
        let resource = self
            .resources
            .register(ResourceKind::Offcode, &bind_name, self.app_root)
            .expect("app root is live");
        self.resources
            .register(
                ResourceKind::Memory,
                &format!("{bind_name}.image"),
                resource,
            )
            .expect("offcode resource is live");
        let oob = self.executive.create_channel(ChannelConfig::oob(device))?;
        let ep = self
            .executive
            .get_mut(oob)
            .expect("channel just created")
            .connect_endpoint()
            .expect("first endpoint");
        self.connections_entry(oob).push((ep, id));
        self.resources
            .register(ResourceKind::Channel, &format!("{bind_name}.oob"), resource)
            .expect("offcode resource is live");

        debug_assert_eq!(self.instances.len(), id.idx(), "ids are monotonic");
        self.instances.push(Some(Instance {
            offcode,
            guid,
            device,
            state: Lifecycle::Loaded,
            oob,
            resource,
            plan,
            image,
        }));
        self.deployed_by_guid.insert(guid, id);
        Ok(id)
    }

    fn run_phase(&mut self, id: OffcodeId, now: SimTime, phase: Phase) -> Result<(), RuntimeError> {
        let inst = self
            .instance_mut(id)
            .ok_or(RuntimeError::NoSuchInstance(id.0))?;
        let expected = match phase {
            Phase::Initialize => Lifecycle::Loaded,
            Phase::Start => Lifecycle::Initialized,
        };
        if inst.state != expected {
            return Err(RuntimeError::BadState("phase out of order"));
        }
        let mut ctx = OffcodeCtx::new(now, inst.device);
        let r = match phase {
            Phase::Initialize => inst.offcode.initialize(&mut ctx),
            Phase::Start => inst.offcode.start(&mut ctx),
        };
        let device = inst.device;
        let charged = ctx.charged();
        let outbox = ctx.take_outbox();
        match r {
            Ok(()) => {
                inst.state = match phase {
                    Phase::Initialize => Lifecycle::Initialized,
                    Phase::Start => Lifecycle::Started,
                };
                self.book_work(device, charged);
                self.deliver_outbox(outbox, now);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn book_work(&mut self, device: DeviceId, work: Cycles) {
        self.device_work[device.idx()] += work;
    }

    fn deliver_outbox(&mut self, outbox: Vec<(ChannelId, Bytes)>, now: SimTime) {
        for (chan, data) in outbox {
            if let Some(ch) = self.executive.get_mut(chan) {
                // Errors (ring full on a reliable channel) are surfaced as
                // drop statistics; a production system would back-pressure.
                let _ = ch.send(now, data);
            }
        }
    }

    /// Creates a channel (the application-side `CreateChannel`).
    ///
    /// # Errors
    ///
    /// Fails if no provider supports the configuration.
    pub fn create_channel(&mut self, config: ChannelConfig) -> Result<ChannelId, RuntimeError> {
        Ok(self.executive.create_channel(config)?)
    }

    /// Creates a channel pinned to a named provider (benchmarking /
    /// explicit placement; see
    /// [`ChannelExecutive::create_channel_forced`]).
    ///
    /// # Errors
    ///
    /// Fails if no provider of that name supports the configuration.
    pub fn create_channel_forced(
        &mut self,
        config: ChannelConfig,
        provider: &str,
    ) -> Result<ChannelId, RuntimeError> {
        Ok(self.executive.create_channel_forced(config, provider)?)
    }

    /// Creates a cost-adaptive channel whose provider is re-selected
    /// online per message-size bucket from its live cost profile (see
    /// [`ChannelExecutive::create_channel_adaptive`]).
    ///
    /// # Errors
    ///
    /// Fails if no provider supports the configuration.
    pub fn create_channel_adaptive(
        &mut self,
        config: ChannelConfig,
        policy: crate::channel::AdaptivePolicy,
    ) -> Result<ChannelId, RuntimeError> {
        Ok(self.executive.create_channel_adaptive(config, policy)?)
    }

    /// Connects a deployed Offcode as a receiver on a channel (the
    /// channel's `ConnectOffcode`).
    ///
    /// # Errors
    ///
    /// Fails for unknown channels/instances or over-connected unicast
    /// channels.
    pub fn connect_offcode(
        &mut self,
        channel: ChannelId,
        id: OffcodeId,
    ) -> Result<(), RuntimeError> {
        let Some(inst) = self.instance(id) else {
            return Err(RuntimeError::NoSuchInstance(id.0));
        };
        let device = inst.device;
        let resource = inst.resource;
        let ch = self
            .executive
            .get_mut(channel)
            .ok_or(RuntimeError::Channel(ChannelError::NoSuchChannel(channel)))?;
        if ch.config().target != device {
            return Err(RuntimeError::Rejected(format!(
                "channel targets {} but {id} runs on {device}",
                ch.config().target
            )));
        }
        let ep = ch.connect_endpoint()?;
        self.connections_entry(channel).push((ep, id));
        self.resources
            .register(ResourceKind::Channel, &format!("{channel}"), resource)
            .expect("instance resource is live");
        Ok(())
    }

    /// Sends an encoded call from the application side of a channel.
    ///
    /// # Errors
    ///
    /// Propagates channel errors (unknown channel, ring full).
    pub fn send_call(
        &mut self,
        channel: ChannelId,
        call: &Call,
        now: SimTime,
    ) -> Result<SimTime, RuntimeError> {
        let ch = self
            .executive
            .get_mut(channel)
            .ok_or(RuntimeError::Channel(ChannelError::NoSuchChannel(channel)))?;
        Ok(ch.send(now, call.encode())?)
    }

    /// Sends a batch of encoded calls from the application side of a
    /// channel in one provider operation (single doorbell), returning
    /// the per-message delivery schedule and fault counts.
    ///
    /// # Errors
    ///
    /// Fails only when the channel does not exist; per-message capacity
    /// faults are reported in the returned [`BatchSendOutcome`].
    pub fn send_call_batch(
        &mut self,
        channel: ChannelId,
        calls: &[Call],
        now: SimTime,
    ) -> Result<BatchSendOutcome, RuntimeError> {
        let ch = self
            .executive
            .get_mut(channel)
            .ok_or(RuntimeError::Channel(ChannelError::NoSuchChannel(channel)))?;
        let encoded: Vec<_> = calls.iter().map(Call::encode).collect();
        Ok(ch.send_batch(now, &encoded))
    }

    /// Synchronously invokes a deployed Offcode (the proxy's transparent
    /// invocation path collapses to this once the Call reaches the
    /// target device).
    ///
    /// # Errors
    ///
    /// Propagates the Offcode's own error.
    pub fn invoke(
        &mut self,
        id: OffcodeId,
        call: &Call,
        now: SimTime,
    ) -> Result<Value, RuntimeError> {
        let inst = self
            .instance_mut(id)
            .ok_or(RuntimeError::NoSuchInstance(id.0))?;
        if inst.state != Lifecycle::Started {
            return Err(RuntimeError::BadState("offcode not started"));
        }
        let device = inst.device;
        let mut ctx = OffcodeCtx::new(now, device);
        let result = inst.offcode.handle_call(&mut ctx, call);
        let charged = ctx.charged();
        let outbox = ctx.take_outbox();
        self.book_work(device, charged);
        self.deliver_outbox(outbox, now);
        result
    }

    /// Delivers every visible channel message to its connected Offcodes,
    /// cascading until quiescent (bounded). Returns the dispatch results
    /// in delivery order.
    pub fn pump(&mut self, now: SimTime) -> Vec<DispatchResult> {
        let mut results = Vec::new();
        for _round in 0..64 {
            let mut progressed = false;
            // Sweep the dense connection table in ascending channel-id
            // order (invokes cannot add channels mid-round).
            for ci in 0..self.connections.len() {
                let Some(bindings) = self.connections[ci].clone() else {
                    continue;
                };
                let chan = ChannelId(ci as u32);
                for (ep, id) in bindings {
                    while let Some(msg) =
                        self.executive.get_mut(chan).and_then(|ch| ch.recv(now, ep))
                    {
                        progressed = true;
                        let result = match Call::decode(msg.data) {
                            Err(e) => Err(RuntimeError::from(e).to_string()),
                            Ok(call) => {
                                let return_id = call.return_id;
                                let r = self.invoke(id, &call, now).map_err(|e| e.to_string());
                                results.push(DispatchResult {
                                    handler: id,
                                    return_id,
                                    result: r,
                                });
                                continue;
                            }
                        };
                        results.push(DispatchResult {
                            handler: id,
                            return_id: 0,
                            result,
                        });
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        results
    }

    /// Migrates a deployed Offcode to another device, carrying its state
    /// through [`Offcode::snapshot`]/[`Offcode::restore`].
    ///
    /// The move is transactional. Everything that can be checked without
    /// destroying the source — snapshot support, ODF compatibility, the
    /// hydra-verify capacity precheck against the target's *live* free
    /// memory, and the actual link/load at the target — happens first;
    /// any failure there returns a [`MigrateError`] with the original
    /// instance untouched. Only then is the source torn down. If a
    /// post-teardown leg (restore or a phase hook) fails, the Offcode is
    /// redeployed on the host with its snapshot restored
    /// ([`MigrateError::FellBack`]); the instance is lost only if that
    /// host fallback fails too ([`MigrateError::Unrecoverable`]).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoSuchInstance`] for unknown ids; otherwise
    /// [`RuntimeError::Migrate`] as above.
    pub fn migrate(
        &mut self,
        id: OffcodeId,
        target: DeviceId,
        now: SimTime,
    ) -> Result<OffcodeId, RuntimeError> {
        let inst = self
            .instance(id)
            .ok_or(RuntimeError::NoSuchInstance(id.0))?;
        let guid = inst.guid;
        let bind_name = self.depot[&guid].odf.bind_name.clone();
        let Some(state) = inst.offcode.snapshot() else {
            return Err(MigrateError::NotMigratable { bind_name }.into());
        };
        // Validate the target against the ODF's device classes.
        let odf = &self.depot[&guid].odf;
        let compat = self.devices.compatibility(&odf.targets);
        if target.idx() >= compat.len() || !compat[target.idx()] {
            return Err(MigrateError::IncompatibleTarget { bind_name, target }.into());
        }
        if let Err(detail) = self.precheck_migration_capacity(guid, target) {
            return Err(MigrateError::InsufficientCapacity {
                bind_name,
                target,
                detail,
            }
            .into());
        }
        // Reserve the target: link and load there with no fallback, so a
        // load failure leaves the source instance running.
        let (offcode, image, plan) = match self.load_at(guid, target) {
            Ok(loaded) => loaded,
            Err(e) => {
                return Err(MigrateError::TargetLoadFailed {
                    bind_name,
                    target,
                    detail: e.to_string(),
                }
                .into())
            }
        };
        // Point of no return: the source is destroyed, the reserved copy
        // takes over.
        self.teardown(id);
        self.recorder.counter_incr("deploy.migrations", "");
        let new_id = match self.register_loaded(guid, target, offcode, image, plan, None) {
            Ok(new_id) => new_id,
            Err(e) => {
                return self.migrate_fallback(guid, &bind_name, state, MigrateLeg::Load, &e, now)
            }
        };
        match self.finish_migration(new_id, state.clone(), now) {
            Ok(()) => Ok(new_id),
            Err((leg, detail)) => {
                self.teardown(new_id);
                self.migrate_fallback(guid, &bind_name, state, leg, &detail, now)
            }
        }
    }

    /// Restore + two-phase startup on a freshly registered migration
    /// target. Returns which leg failed so the caller can fall back.
    fn finish_migration(
        &mut self,
        id: OffcodeId,
        state: Bytes,
        now: SimTime,
    ) -> Result<(), (MigrateLeg, String)> {
        let inst = self.instance_mut(id).expect("just registered");
        inst.offcode
            .restore(state)
            .map_err(|e| (MigrateLeg::Restore, e.to_string()))?;
        self.run_phase(id, now, Phase::Initialize)
            .map_err(|e| (MigrateLeg::Initialize, e.to_string()))?;
        self.run_phase(id, now, Phase::Start)
            .map_err(|e| (MigrateLeg::Start, e.to_string()))?;
        Ok(())
    }

    /// Post-teardown rescue: redeploy on the host, restore the snapshot,
    /// and report [`MigrateError::FellBack`] — or
    /// [`MigrateError::Unrecoverable`] if even the host path fails.
    fn migrate_fallback(
        &mut self,
        guid: Guid,
        bind_name: &str,
        state: Bytes,
        leg: MigrateLeg,
        detail: &impl std::fmt::Display,
        now: SimTime,
    ) -> Result<OffcodeId, RuntimeError> {
        self.recorder.counter_incr("recover.host_fallback", "");
        let unrecoverable = |detail: String| {
            RuntimeError::from(MigrateError::Unrecoverable {
                bind_name: bind_name.to_owned(),
                leg,
                detail,
            })
        };
        let fallback = self
            .deploy_one(guid, DeviceId::HOST, None)
            .map_err(|e| unrecoverable(format!("{detail}; host fallback: {e}")))?;
        if let Err((fleg, fdetail)) = self.finish_migration(fallback, state, now) {
            self.teardown(fallback);
            return Err(unrecoverable(format!(
                "{detail}; host fallback {fleg}: {fdetail}"
            )));
        }
        Err(MigrateError::FellBack {
            bind_name: bind_name.to_owned(),
            leg,
            detail: detail.to_string(),
            fallback,
        }
        .into())
    }

    /// The hydra-verify capacity pass, narrowed to this one Offcode
    /// pinned on `target`, whose budget is the allocator's *live* free
    /// space (the registry's static table reflects total memory, not what
    /// is left after earlier deployments).
    fn precheck_migration_capacity(&self, guid: Guid, target: DeviceId) -> Result<(), String> {
        if target.is_host() {
            return Ok(()); // the host is the fallback, never pre-rejected
        }
        let entry = &self.depot[&guid];
        let full = self.devices.verify_table();
        let mut target_info = full.devices[target.idx()].clone();
        target_info.offcode_memory = self.allocators[target.idx()].available();
        let table = hydra_verify::DeviceTable {
            devices: vec![full.devices[0].clone(), target_info],
        };
        let mut odf = entry.odf.clone();
        odf.imports.clear();
        let demand = u64::from((entry.factory)().object_file().load_size());
        let odfs = [odf];
        let demands = [demand];
        let roots = [guid];
        let report = hydra_verify::verify(&hydra_verify::VerifyInput {
            odfs: &odfs,
            devices: &table,
            demands: Some(&demands),
            roots: Some(&roots),
        });
        if report.has_errors() {
            let rendered: Vec<String> = report.errors().map(ToString::to_string).collect();
            return Err(rendered.join("; "));
        }
        Ok(())
    }

    /// Failure recovery: quiesce everything on `failed`, re-run the
    /// layout solver over the surviving devices (failed devices masked,
    /// non-migratable healthy instances pinned where they run, so Gang
    /// and Pull constraints are honored against reality), then migrate
    /// snapshot-able Offcodes to their new homes — the host is the last
    /// resort — and redeploy the rest fresh.
    ///
    /// [`Runtime::pulse`] calls this automatically when the health
    /// monitor declares a device Failed; it is public so scenario code
    /// that detects a crash out-of-band can trigger recovery directly.
    ///
    /// # Errors
    ///
    /// Rejects the host (it cannot fail-stop in this model); propagates
    /// layout failures and unrecoverable migrations.
    pub fn on_device_failure(
        &mut self,
        failed: DeviceId,
        now: SimTime,
    ) -> Result<RecoveryReport, RuntimeError> {
        if failed.is_host() {
            return Err(RuntimeError::Rejected("the host cannot fail-stop".into()));
        }
        self.health.mark_failed(failed);
        let label = failed.to_string();
        self.recorder.counter_incr("fault.device_failed", &label);

        // Already sorted by id: iter_instances walks the dense table in
        // ascending order.
        let deployed: Vec<(OffcodeId, Guid, DeviceId)> = self
            .iter_instances()
            .map(|(id, inst)| (id, inst.guid, inst.device))
            .collect();
        let on_failed = deployed.iter().filter(|&&(_, _, d)| d == failed).count();
        let span = self
            .recorder
            .span("recover.device", &label, now, on_failed as u64);
        if on_failed == 0 {
            return Ok(RecoveryReport {
                device: failed,
                displaced: Vec::new(),
                migrated: Vec::new(),
                host_fallbacks: 0,
                redeployed: Vec::new(),
                constraints_ok: true,
            });
        }

        // Re-layout over all live instances: imports narrowed to the set,
        // every failed device masked, healthy non-migratable instances
        // pinned to their current home.
        let in_set: Vec<Guid> = deployed.iter().map(|&(_, g, _)| g).collect();
        let odfs: Vec<OdfDocument> = deployed
            .iter()
            .map(|&(_, g, _)| {
                let mut odf = self.depot[&g].odf.clone();
                odf.imports.retain(|imp| in_set.contains(&imp.guid));
                odf
            })
            .collect();
        let mut graph = LayoutGraph::from_odfs(&odfs, &self.devices)?;
        for k in 1..self.allocators.len() {
            let device = DeviceId(k as u32);
            if self.health.is_failed(device) {
                graph.mask_device(device)?;
            }
        }
        for (n, &(id, _, dev)) in deployed.iter().enumerate() {
            let migratable = self
                .instance(id)
                .expect("deployed list is live")
                .offcode
                .snapshot()
                .is_some();
            if dev != failed && !migratable && !self.health.is_failed(dev) {
                graph.pin_node(NodeIdx(n), dev);
            }
        }
        let placement = match self.config.solver {
            SolverKind::Ilp => {
                // Incremental repair: warm-start from where everything is
                // deployed right now and re-solve only the component the
                // failure actually disturbed (with a proven-equal
                // fallback to the full ILP inside).
                let prev = Placement(deployed.iter().map(|&(_, _, d)| d).collect());
                let (placement, stats) = graph.repair(
                    &prev,
                    &GraphDelta::MaskDevice(failed),
                    &self.config.objective,
                )?;
                self.recorder
                    .counter_add("recover.repaired_nodes", &label, stats.repaired_nodes);
                self.recorder
                    .counter_add("recover.warm_start_hits", &label, stats.warm_start_hits);
                self.recorder
                    .counter_add("solver.nodes_explored", "repair", stats.nodes);
                self.recorder
                    .counter_add("solver.bounds_pruned", "repair", stats.pruned);
                placement
            }
            SolverKind::Greedy => graph.resolve_greedy(&self.config.objective),
        };
        graph.check(&placement)?;

        let mut displaced = Vec::new();
        let mut migrated = Vec::new();
        let mut redeployed = Vec::new();
        let mut host_fallbacks = 0usize;
        for (n, &(id, guid, dev)) in deployed.iter().enumerate() {
            let want = placement.0[n];
            if want == dev && dev != failed {
                continue;
            }
            displaced.push(self.depot[&guid].odf.bind_name.clone());
            let migratable = self
                .instance(id)
                .expect("deployed list is live")
                .offcode
                .snapshot()
                .is_some();
            if migratable {
                let landed = match self.migrate(id, want, now) {
                    Ok(_) => want,
                    Err(RuntimeError::Migrate(MigrateError::InsufficientCapacity { .. }))
                        if !want.is_host() =>
                    {
                        // The survivor is full: the host is the last resort.
                        self.migrate(id, DeviceId::HOST, now)?;
                        DeviceId::HOST
                    }
                    Err(RuntimeError::Migrate(MigrateError::FellBack { .. })) => DeviceId::HOST,
                    Err(e) => return Err(e),
                };
                self.recorder.counter_incr("recover.migrations", "");
                let bind = &self.depot[&guid].odf.bind_name;
                let ctx =
                    self.recorder
                        .trace_begin("recover.migrate", bind, u64::from(dev.0), now, 0);
                self.recorder
                    .trace_recv(ctx, "recover.landed", bind, u64::from(landed.0), now, 0);
                if landed.is_host() {
                    host_fallbacks += 1;
                }
                migrated.push((guid, landed));
            } else {
                // No snapshot support: state is lost, a fresh instance is
                // the only option.
                self.teardown(id);
                let new_id = self.deploy_one(guid, want, None)?;
                self.run_phase(new_id, now, Phase::Initialize)?;
                self.run_phase(new_id, now, Phase::Start)?;
                self.recorder.counter_incr("recover.redeployed", "");
                let final_dev = self.instance(new_id).expect("just deployed").device;
                let bind = &self.depot[&guid].odf.bind_name;
                let ctx =
                    self.recorder
                        .trace_begin("recover.redeploy", bind, u64::from(dev.0), now, 0);
                self.recorder.trace_recv(
                    ctx,
                    "recover.landed",
                    bind,
                    u64::from(final_dev.0),
                    now,
                    0,
                );
                if final_dev.is_host() {
                    host_fallbacks += 1;
                }
                redeployed.push(guid);
            }
        }
        self.recorder.add_span_work(span, migrated.len() as u64);

        let achieved = Placement(
            deployed
                .iter()
                .map(|&(_, g, _)| {
                    self.deployed_by_guid
                        .get(&g)
                        .and_then(|&id| self.instance(id))
                        .map_or(DeviceId::HOST, |inst| inst.device)
                })
                .collect(),
        );
        let constraints_ok = graph.check(&achieved).is_ok();
        displaced.sort();
        Ok(RecoveryReport {
            device: failed,
            displaced,
            migrated,
            host_fallbacks,
            redeployed,
            constraints_ok,
        })
    }

    /// Tears down a deployed Offcode: releases its resource subtree,
    /// destroys its channels, closes its endpoints on every channel it
    /// was connected to as a receiver, and forgets the instance. Sweeping
    /// the endpoints matters: a surviving sender must not keep queueing
    /// into a dead receiver's slot, and the connection table must not
    /// keep orphaned keys ([`Runtime::audit_connections`] checks both).
    pub fn teardown(&mut self, id: OffcodeId) -> bool {
        let Some(inst) = self.instances.get_mut(id.idx()).and_then(Option::take) else {
            return false;
        };
        self.deployed_by_guid.remove(&inst.guid);
        let _ = self.resources.release(inst.resource);
        self.executive.destroy(inst.oob);
        if let Some(slot) = self.connections.get_mut(inst.oob.idx()) {
            *slot = None;
        }
        // Sweep the dense table in ascending channel-id order.
        for ci in 0..self.connections.len() {
            let Some(bindings) = self.connections[ci].as_mut() else {
                continue;
            };
            let chan = ChannelId(ci as u32);
            let executive = &mut self.executive;
            bindings.retain(|&(ep, oc)| {
                if oc == id {
                    if let Some(ch) = executive.get_mut(chan) {
                        ch.close_endpoint(ep);
                    }
                    false
                } else {
                    true
                }
            });
            if bindings.is_empty() {
                self.connections[ci] = None;
            }
        }
        true
    }

    /// Invariant sweep over the channel-connection table; an empty result
    /// means no orphans. Reported problems (sorted): empty binding lists,
    /// bindings for destroyed channels, bindings pointing at dead
    /// instances, bindings whose endpoint is closed, and wedged
    /// descriptor-ring slots outliving their ring (a channel with zero
    /// open endpoints has no live ring to wedge).
    pub fn audit_connections(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for chan in self.executive.ids() {
            let Some(ch) = self.executive.get(chan) else {
                continue;
            };
            if ch.wedged_slots() > 0 && ch.open_endpoints() == 0 {
                problems.push(format!(
                    "{chan}: {} wedged slot(s) on a torn-down ring",
                    ch.wedged_slots()
                ));
            }
        }
        for (ci, slot) in self.connections.iter().enumerate() {
            let Some(bindings) = slot else { continue };
            let chan = ChannelId(ci as u32);
            if bindings.is_empty() {
                problems.push(format!("{chan}: empty binding list"));
                continue;
            }
            let Some(ch) = self.executive.get(chan) else {
                problems.push(format!("{chan}: bindings for destroyed channel"));
                continue;
            };
            for &(ep, id) in bindings {
                if self.instance(id).is_none() {
                    problems.push(format!(
                        "{chan}: endpoint {ep} bound to dead instance #{}",
                        id.0
                    ));
                }
                if !ch.endpoint_open(ep) {
                    problems.push(format!("{chan}: endpoint {ep} is closed but still bound"));
                }
            }
        }
        problems.sort();
        problems
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Initialize,
    Start,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceDescriptor;
    use hydra_odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Import};

    fn class(id: u32) -> DeviceClassSpec {
        DeviceClassSpec {
            id,
            name: format!("class-{id}"),
            bus: None,
            mac: None,
            vendor: None,
        }
    }

    #[derive(Debug)]
    struct Counter {
        guid: Guid,
        name: String,
        initialized: bool,
        started: bool,
        count: u64,
    }

    impl Counter {
        fn boxed(guid: u64, name: &str) -> Box<dyn Offcode> {
            Box::new(Counter {
                guid: Guid(guid),
                name: name.to_owned(),
                initialized: false,
                started: false,
                count: 0,
            })
        }
    }

    impl Offcode for Counter {
        fn guid(&self) -> Guid {
            self.guid
        }
        fn bind_name(&self) -> &str {
            &self.name
        }
        fn initialize(&mut self, _ctx: &mut OffcodeCtx) -> Result<(), RuntimeError> {
            self.initialized = true;
            Ok(())
        }
        fn start(&mut self, _ctx: &mut OffcodeCtx) -> Result<(), RuntimeError> {
            if !self.initialized {
                return Err(RuntimeError::BadState("start before initialize"));
            }
            self.started = true;
            Ok(())
        }
        fn handle_call(
            &mut self,
            ctx: &mut OffcodeCtx,
            call: &Call,
        ) -> Result<Value, RuntimeError> {
            ctx.charge(Cycles::new(1_000));
            match call.operation.as_str() {
                "incr" => {
                    self.count += 1;
                    Ok(Value::U64(self.count))
                }
                "get" => Ok(Value::U64(self.count)),
                other => Err(RuntimeError::UnknownOperation(other.to_owned())),
            }
        }
    }

    fn full_registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic()); // dev1
        reg.install(DeviceDescriptor::smart_disk()); // dev2
        reg.install(DeviceDescriptor::gpu()); // dev3
        reg
    }

    fn runtime() -> Runtime {
        Runtime::new(full_registry(), RuntimeConfig::default())
    }

    #[test]
    fn deploys_single_offcode_to_matching_device() {
        let mut rt = runtime();
        let odf = OdfDocument::new("t.Checksum", Guid(1)).with_target(class(class_ids::NETWORK));
        rt.register_offcode(odf, || Counter::boxed(1, "t.Checksum"))
            .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        assert_eq!(rt.device_of(id), Some(DeviceId(1)));
        let deps = rt.deployments();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].state, Lifecycle::Started);
    }

    #[test]
    fn create_is_idempotent_per_guid() {
        let mut rt = runtime();
        rt.register_offcode(OdfDocument::new("a", Guid(1)), || Counter::boxed(1, "a"))
            .unwrap();
        let id1 = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        let id2 = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(rt.deployments().len(), 1);
    }

    #[test]
    fn deploys_import_closure_with_constraints() {
        let mut rt = runtime();
        let streamer = OdfDocument::new("t.Streamer", Guid(1))
            .with_target(class(class_ids::NETWORK))
            .with_import(Import {
                file: String::new(),
                bind_name: "t.Decoder".into(),
                guid: Guid(2),
                constraint: ConstraintKind::Gang,
                priority: 0,
            });
        let decoder = OdfDocument::new("t.Decoder", Guid(2))
            .with_target(class(class_ids::GPU))
            .with_import(Import {
                file: String::new(),
                bind_name: "t.Display".into(),
                guid: Guid(3),
                constraint: ConstraintKind::Pull,
                priority: 0,
            });
        let display = OdfDocument::new("t.Display", Guid(3)).with_target(class(class_ids::GPU));
        rt.register_offcode(streamer, || Counter::boxed(1, "t.Streamer"))
            .unwrap();
        rt.register_offcode(decoder, || Counter::boxed(2, "t.Decoder"))
            .unwrap();
        rt.register_offcode(display, || Counter::boxed(3, "t.Display"))
            .unwrap();

        let root = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        assert_eq!(rt.deployments().len(), 3);
        assert_eq!(rt.device_of(root), Some(DeviceId(1))); // NIC
        let dec = rt.get_offcode(Guid(2)).unwrap();
        let dis = rt.get_offcode(Guid(3)).unwrap();
        // Pull: decoder and display together on the GPU.
        assert_eq!(rt.device_of(dec), Some(DeviceId(3)));
        assert_eq!(rt.device_of(dis), Some(DeviceId(3)));
    }

    #[test]
    fn missing_import_fails_cleanly() {
        let mut rt = runtime();
        let a = OdfDocument::new("a", Guid(1)).with_import(Import {
            file: String::new(),
            bind_name: "ghost".into(),
            guid: Guid(99),
            constraint: ConstraintKind::Link,
            priority: 0,
        });
        rt.register_offcode(a, || Counter::boxed(1, "a")).unwrap();
        assert_eq!(
            rt.create_offcode(Guid(1), SimTime::ZERO),
            Err(RuntimeError::NotInDepot(Guid(99)))
        );
        assert!(rt.deployments().is_empty());
    }

    #[test]
    fn oom_falls_back_to_host() {
        let mut reg = DeviceRegistry::new();
        let mut tiny_nic = DeviceDescriptor::programmable_nic();
        tiny_nic.offcode_memory = 64; // cannot hold anything
        reg.install(tiny_nic);
        // Pre-flight verification would reject this deployment up front
        // (HV020); switch it off to exercise the load-time fallback path.
        let config = RuntimeConfig {
            verify_deployments: false,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(reg, config);
        let odf = OdfDocument::new("t.Big", Guid(1)).with_target(class(class_ids::NETWORK));
        rt.register_offcode(odf, || Counter::boxed(1, "t.Big"))
            .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        assert_eq!(rt.device_of(id), Some(DeviceId::HOST));
    }

    #[test]
    fn verifier_gate_rejects_overcommitted_deployment() {
        let mut reg = DeviceRegistry::new();
        let mut tiny_nic = DeviceDescriptor::programmable_nic();
        tiny_nic.offcode_memory = 64;
        reg.install(tiny_nic);
        let mut rt = Runtime::new(reg, RuntimeConfig::default());
        let odf = OdfDocument::new("t.Big", Guid(1)).with_target(class(class_ids::NETWORK));
        rt.register_offcode(odf, || Counter::boxed(1, "t.Big"))
            .unwrap();
        match rt.create_offcode(Guid(1), SimTime::ZERO) {
            Err(RuntimeError::Verification(msg)) => assert!(msg.contains("HV020"), "{msg}"),
            other => panic!("expected verification rejection, got {other:?}"),
        }
        assert!(rt.deployments().is_empty());
        let snap = rt.metrics_snapshot();
        assert_eq!(snap.counter("verify.errors", ""), Some(1));
        assert!(snap.counter("verify.diagnostics", "capacity").unwrap() >= 1);
    }

    #[test]
    fn verify_deployment_reports_without_deploying() {
        let mut rt = runtime();
        let a = OdfDocument::new("a", Guid(1))
            .with_target(class(class_ids::NETWORK))
            .with_import(Import {
                file: String::new(),
                bind_name: "b".into(),
                guid: Guid(2),
                constraint: ConstraintKind::Gang,
                priority: 0,
            });
        let b = OdfDocument::new("b", Guid(2))
            .with_target(class(class_ids::NETWORK))
            .with_import(Import {
                file: String::new(),
                bind_name: "a".into(),
                guid: Guid(1),
                constraint: ConstraintKind::Gang,
                priority: 0,
            });
        rt.register_offcode(a, || Counter::boxed(1, "a")).unwrap();
        rt.register_offcode(b, || Counter::boxed(1, "b")).unwrap();
        let report = rt.verify_deployment(Guid(1), SimTime::ZERO).unwrap();
        assert!(report.has_errors());
        assert!(report
            .errors()
            .any(|d| d.code == hydra_verify::HvCode::GangCycle));
        // Nothing was deployed, but the pass metrics were recorded.
        assert!(rt.deployments().is_empty());
        let snap = rt.metrics_snapshot();
        assert!(snap.counter_total("verify.pass_work") > 0);
        assert_eq!(snap.spans_named("deploy.verify").len(), 1);
        // The gate acts on the same report.
        assert!(matches!(
            rt.create_offcode(Guid(1), SimTime::ZERO),
            Err(RuntimeError::Verification(_))
        ));
    }

    #[test]
    fn clean_deployment_passes_verifier_gate() {
        let mut rt = runtime();
        rt.register_offcode(
            OdfDocument::new("ok", Guid(1)).with_target(class(class_ids::NETWORK)),
            || Counter::boxed(1, "ok"),
        )
        .unwrap();
        let report = rt.verify_deployment(Guid(1), SimTime::ZERO).unwrap();
        assert!(!report.has_errors());
        assert!(rt.create_offcode(Guid(1), SimTime::ZERO).is_ok());
    }

    #[test]
    fn invoke_routes_to_offcode_and_books_work() {
        let mut rt = runtime();
        rt.register_offcode(
            OdfDocument::new("c", Guid(1)).with_target(class(class_ids::NETWORK)),
            || Counter::boxed(1, "c"),
        )
        .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        let call = Call::new(Guid(1), "incr");
        assert_eq!(rt.invoke(id, &call, SimTime::ZERO).unwrap(), Value::U64(1));
        assert_eq!(rt.invoke(id, &call, SimTime::ZERO).unwrap(), Value::U64(2));
        assert_eq!(rt.device_work(DeviceId(1)), Cycles::new(2_000));
        assert!(matches!(
            rt.invoke(id, &Call::new(Guid(1), "nope"), SimTime::ZERO),
            Err(RuntimeError::UnknownOperation(_))
        ));
    }

    #[test]
    fn channel_dispatch_via_pump() {
        let mut rt = runtime();
        rt.register_offcode(
            OdfDocument::new("c", Guid(1)).with_target(class(class_ids::NETWORK)),
            || Counter::boxed(1, "c"),
        )
        .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        let chan = rt
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        rt.connect_offcode(chan, id).unwrap();
        let call = Call::new(Guid(1), "incr").with_return_id(42);
        let deliver_at = rt.send_call(chan, &call, SimTime::ZERO).unwrap();
        // Nothing visible before delivery.
        assert!(rt.pump(SimTime::ZERO).is_empty());
        let results = rt.pump(deliver_at);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].handler, id);
        assert_eq!(results[0].return_id, 42);
        assert_eq!(results[0].result, Ok(Value::U64(1)));
    }

    #[test]
    fn batched_calls_dispatch_via_pump() {
        let mut rt = runtime();
        rt.register_offcode(
            OdfDocument::new("c", Guid(1)).with_target(class(class_ids::NETWORK)),
            || Counter::boxed(1, "c"),
        )
        .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        let chan = rt
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        rt.connect_offcode(chan, id).unwrap();
        let calls: Vec<Call> = (0..4)
            .map(|i| Call::new(Guid(1), "incr").with_return_id(i))
            .collect();
        let outcome = rt.send_call_batch(chan, &calls, SimTime::ZERO).unwrap();
        assert_eq!(outcome.accepted(), 4);
        assert_eq!(outcome.rejected + outcome.dropped, 0);
        let results = rt.pump(outcome.complete_at);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.return_id, i as u64);
            assert_eq!(r.result, Ok(Value::U64(i as u64 + 1)));
        }
    }

    #[test]
    fn teardown_releases_resources_and_instances() {
        let mut rt = runtime();
        rt.register_offcode(
            OdfDocument::new("c", Guid(1)).with_target(class(class_ids::NETWORK)),
            || Counter::boxed(1, "c"),
        )
        .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        let live_before = rt.resources().len();
        assert!(rt.teardown(id));
        assert!(!rt.teardown(id));
        assert!(rt.resources().len() < live_before);
        assert_eq!(rt.get_offcode(Guid(1)), None);
        assert!(matches!(
            rt.invoke(id, &Call::new(Guid(1), "incr"), SimTime::ZERO),
            Err(RuntimeError::NoSuchInstance(_))
        ));
    }

    #[test]
    fn greedy_solver_also_deploys() {
        let mut rt = Runtime::new(
            full_registry(),
            RuntimeConfig {
                solver: SolverKind::Greedy,
                ..RuntimeConfig::default()
            },
        );
        rt.register_offcode(
            OdfDocument::new("c", Guid(1)).with_target(class(class_ids::GPU)),
            || Counter::boxed(1, "c"),
        )
        .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        assert_eq!(rt.device_of(id), Some(DeviceId(3)));
    }

    #[test]
    fn device_side_loading_strategy_works() {
        let mut rt = Runtime::new(
            full_registry(),
            RuntimeConfig {
                load_strategy: LoadStrategy::DeviceSideLink,
                ..RuntimeConfig::default()
            },
        );
        rt.register_offcode(
            OdfDocument::new("c", Guid(1)).with_target(class(class_ids::NETWORK)),
            || Counter::boxed(1, "c"),
        )
        .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        let dep = rt.deployments().into_iter().find(|d| d.id == id).unwrap();
        assert_eq!(dep.plan.strategy, LoadStrategy::DeviceSideLink);
    }

    #[test]
    fn trace_export_spans_devices_and_respects_flight_capacity() {
        let mut rt = Runtime::new(
            full_registry(),
            RuntimeConfig {
                flight_capacity: 8,
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(rt.recorder().flight_capacity(), 8);
        rt.register_offcode(
            OdfDocument::new("c", Guid(1)).with_target(class(class_ids::NETWORK)),
            || Counter::boxed(1, "c"),
        )
        .unwrap();
        let id = rt.create_offcode(Guid(1), SimTime::ZERO).unwrap();
        let chan = rt
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        rt.connect_offcode(chan, id).unwrap();
        let call = Call::new(Guid(1), "incr");
        let deliver_at = rt.send_call(chan, &call, SimTime::ZERO).unwrap();
        rt.pump(deliver_at);
        let json = rt.trace_export();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"channel.recv\""));
        // Host (pid 0) and the NIC (pid 1) both appear as processes.
        assert!(json.contains("\"args\":{\"name\":\"host\"}"));
        assert!(json.contains("\"args\":{\"name\":\"device-1\"}"));
        assert_eq!(json, rt.trace_export(), "export is stable");
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut rt = runtime();
        rt.register_offcode(OdfDocument::new("a", Guid(1)), || Counter::boxed(1, "a"))
            .unwrap();
        assert!(rt
            .register_offcode(OdfDocument::new("b", Guid(1)), || Counter::boxed(1, "b"))
            .is_err());
    }
}
