//! Call objects and argument marshaling.
//!
//! Paper §3.1: "All interface methods return a Call object that contains
//! the relevant method information including the serialized input
//! parameters. Once a Call object is obtained, it can be sent to a target
//! device … by using a connected channel." [`Call`] is that object: an
//! interface GUID, an operation name, typed arguments ([`Value`]), and an
//! optional return descriptor. Calls have a compact binary encoding (what
//! actually crosses the bus) and can be type-checked against a WSDL-lite
//! [`InterfaceSpec`].

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hydra_odf::odf::Guid;
use hydra_odf::wsdl::{InterfaceSpec, TypeTag};

/// A marshalable value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// No value.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Unsigned 32-bit.
    U32(u32),
    /// Unsigned 64-bit.
    U64(u64),
    /// Signed 64-bit.
    I64(i64),
    /// Raw bytes (zero-copy friendly).
    Bytes(Bytes),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The value's type tag.
    pub fn type_tag(&self) -> TypeTag {
        match self {
            Value::Unit => TypeTag::Unit,
            Value::Bool(_) => TypeTag::Bool,
            Value::U32(_) => TypeTag::U32,
            Value::U64(_) => TypeTag::U64,
            Value::I64(_) => TypeTag::I64,
            Value::Bytes(_) => TypeTag::Bytes,
            Value::Str(_) => TypeTag::Str,
        }
    }

    /// Serialized size in bytes (tag byte + payload).
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::U32(_) => 4,
            Value::U64(_) | Value::I64(_) => 8,
            Value::Bytes(b) => 4 + b.len(),
            Value::Str(s) => 4 + s.len(),
        }
    }

    /// Extracts bytes, if this is a `Bytes` value.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts a u64 (widening u32), if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U32(v) => Some(u64::from(*v)),
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    fn encode(&self, b: &mut BytesMut) {
        match self {
            Value::Unit => b.put_u8(0),
            Value::Bool(v) => {
                b.put_u8(1);
                b.put_u8(u8::from(*v));
            }
            Value::U32(v) => {
                b.put_u8(2);
                b.put_u32(*v);
            }
            Value::U64(v) => {
                b.put_u8(3);
                b.put_u64(*v);
            }
            Value::I64(v) => {
                b.put_u8(4);
                b.put_i64(*v);
            }
            Value::Bytes(v) => {
                b.put_u8(5);
                b.put_u32(v.len() as u32);
                b.put_slice(v);
            }
            Value::Str(v) => {
                b.put_u8(6);
                b.put_u32(v.len() as u32);
                b.put_slice(v.as_bytes());
            }
        }
    }

    fn decode(raw: &mut Bytes) -> Result<Value, MarshalError> {
        if !raw.has_remaining() {
            return Err(MarshalError::Truncated);
        }
        let tag = raw.get_u8();
        let need = |raw: &Bytes, n: usize| {
            if raw.remaining() < n {
                Err(MarshalError::Truncated)
            } else {
                Ok(())
            }
        };
        match tag {
            0 => Ok(Value::Unit),
            1 => {
                need(raw, 1)?;
                Ok(Value::Bool(raw.get_u8() != 0))
            }
            2 => {
                need(raw, 4)?;
                Ok(Value::U32(raw.get_u32()))
            }
            3 => {
                need(raw, 8)?;
                Ok(Value::U64(raw.get_u64()))
            }
            4 => {
                need(raw, 8)?;
                Ok(Value::I64(raw.get_i64()))
            }
            5 => {
                need(raw, 4)?;
                let n = raw.get_u32() as usize;
                need(raw, n)?;
                Ok(Value::Bytes(raw.split_to(n)))
            }
            6 => {
                need(raw, 4)?;
                let n = raw.get_u32() as usize;
                need(raw, n)?;
                let s = String::from_utf8(raw.split_to(n).to_vec())
                    .map_err(|_| MarshalError::BadUtf8)?;
                Ok(Value::Str(s))
            }
            _ => Err(MarshalError::UnknownTag(tag)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::U32(v) => write!(f, "{v}u32"),
            Value::U64(v) => write!(f, "{v}u64"),
            Value::I64(v) => write!(f, "{v}i64"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// Marshaling failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarshalError {
    /// Stream ended inside a value.
    Truncated,
    /// Unknown type tag on the wire.
    UnknownTag(u8),
    /// Invalid UTF-8 in a string value.
    BadUtf8,
}

impl fmt::Display for MarshalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarshalError::Truncated => f.write_str("call data truncated"),
            MarshalError::UnknownTag(t) => write!(f, "unknown value tag {t}"),
            MarshalError::BadUtf8 => f.write_str("invalid utf-8 in string value"),
        }
    }
}

impl std::error::Error for MarshalError {}

/// Type-check failures against an interface spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTypeError {
    /// The interface GUID does not match the spec.
    WrongInterface {
        /// GUID in the call.
        got: Guid,
        /// GUID of the spec.
        want: Guid,
    },
    /// The operation does not exist.
    NoSuchOperation(String),
    /// Wrong number of arguments.
    ArityMismatch {
        /// Arguments provided.
        got: usize,
        /// Arguments expected.
        want: usize,
    },
    /// An argument has the wrong type.
    TypeMismatch {
        /// Zero-based argument position.
        position: usize,
        /// Provided type.
        got: TypeTag,
        /// Expected type.
        want: TypeTag,
    },
}

impl fmt::Display for CallTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallTypeError::WrongInterface { got, want } => {
                write!(f, "call targets {got} but spec is {want}")
            }
            CallTypeError::NoSuchOperation(op) => write!(f, "no such operation '{op}'"),
            CallTypeError::ArityMismatch { got, want } => {
                write!(f, "expected {want} arguments, got {got}")
            }
            CallTypeError::TypeMismatch {
                position,
                got,
                want,
            } => write!(f, "argument {position}: expected {want}, got {got}"),
        }
    }
}

impl std::error::Error for CallTypeError {}

/// A marshaled method invocation.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_core::call::{Call, Value};
/// use hydra_odf::odf::Guid;
///
/// let call = Call::new(Guid(500), "checksum")
///     .with_arg(Value::Bytes(Bytes::from_static(b"payload")));
/// let decoded = Call::decode(call.encode()).unwrap();
/// assert_eq!(decoded, call);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Target interface GUID.
    pub interface: Guid,
    /// Operation name.
    pub operation: String,
    /// Marshaled arguments.
    pub args: Vec<Value>,
    /// Caller-assigned id used to match the return value (the "return
    /// descriptor" of §4.1); 0 for one-way calls.
    pub return_id: u64,
}

impl Call {
    /// Creates a call with no arguments.
    pub fn new(interface: Guid, operation: impl Into<String>) -> Self {
        Call {
            interface,
            operation: operation.into(),
            args: Vec::new(),
            return_id: 0,
        }
    }

    /// Appends an argument.
    pub fn with_arg(mut self, value: Value) -> Self {
        self.args.push(value);
        self
    }

    /// Sets the return descriptor id.
    pub fn with_return_id(mut self, id: u64) -> Self {
        self.return_id = id;
        self
    }

    /// Serialized size (what a channel charges for).
    pub fn wire_size(&self) -> usize {
        8 + 2 + self.operation.len() + 8 + 2 + self.args.iter().map(Value::wire_size).sum::<usize>()
    }

    /// Serializes the call.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_size());
        b.put_u64(self.interface.0);
        b.put_u16(self.operation.len() as u16);
        b.put_slice(self.operation.as_bytes());
        b.put_u64(self.return_id);
        b.put_u16(self.args.len() as u16);
        for a in &self.args {
            a.encode(&mut b);
        }
        b.freeze()
    }

    /// Deserializes a call.
    ///
    /// # Errors
    ///
    /// Fails on truncation, unknown tags, or invalid UTF-8.
    pub fn decode(mut raw: Bytes) -> Result<Call, MarshalError> {
        if raw.remaining() < 10 {
            return Err(MarshalError::Truncated);
        }
        let interface = Guid(raw.get_u64());
        let op_len = raw.get_u16() as usize;
        if raw.remaining() < op_len + 10 {
            return Err(MarshalError::Truncated);
        }
        let operation =
            String::from_utf8(raw.split_to(op_len).to_vec()).map_err(|_| MarshalError::BadUtf8)?;
        let return_id = raw.get_u64();
        let argc = raw.get_u16() as usize;
        let mut args = Vec::with_capacity(argc.min(64));
        for _ in 0..argc {
            args.push(Value::decode(&mut raw)?);
        }
        Ok(Call {
            interface,
            operation,
            args,
            return_id,
        })
    }

    /// Type-checks the call against an interface spec.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found.
    pub fn check_against(&self, spec: &InterfaceSpec) -> Result<(), CallTypeError> {
        if self.interface != spec.guid {
            return Err(CallTypeError::WrongInterface {
                got: self.interface,
                want: spec.guid,
            });
        }
        let op = spec
            .operation(&self.operation)
            .ok_or_else(|| CallTypeError::NoSuchOperation(self.operation.clone()))?;
        if self.args.len() != op.inputs.len() {
            return Err(CallTypeError::ArityMismatch {
                got: self.args.len(),
                want: op.inputs.len(),
            });
        }
        for (i, (arg, (_, want))) in self.args.iter().zip(&op.inputs).enumerate() {
            if arg.type_tag() != *want {
                return Err(CallTypeError::TypeMismatch {
                    position: i,
                    got: arg.type_tag(),
                    want: *want,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Call {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}(", self.interface, self.operation)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_odf::wsdl::OperationSpec;

    fn all_values() -> Vec<Value> {
        vec![
            Value::Unit,
            Value::Bool(true),
            Value::U32(42),
            Value::U64(u64::MAX),
            Value::I64(-7),
            Value::Bytes(Bytes::from_static(b"data")),
            Value::Str("héllo".into()),
        ]
    }

    #[test]
    fn call_round_trip_all_types() {
        let mut call = Call::new(Guid(9), "op").with_return_id(77);
        for v in all_values() {
            call = call.with_arg(v);
        }
        let decoded = Call::decode(call.encode()).unwrap();
        assert_eq!(decoded, call);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let mut call = Call::new(Guid(9), "operation_name");
        for v in all_values() {
            call = call.with_arg(v);
        }
        assert_eq!(call.encode().len(), call.wire_size());
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let call = Call::new(Guid(1), "f")
            .with_arg(Value::Str("x".into()))
            .with_arg(Value::U32(5));
        let raw = call.encode();
        for cut in 0..raw.len() {
            assert!(
                Call::decode(raw.slice(0..cut)).is_err(),
                "prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let call = Call::new(Guid(1), "f").with_arg(Value::U32(5));
        let mut raw = call.encode().to_vec();
        // Flip the type tag (right after the 2-byte arg count).
        let tag_pos = 8 + 2 + 1 + 8 + 2;
        raw[tag_pos] = 99;
        assert_eq!(
            Call::decode(Bytes::from(raw)),
            Err(MarshalError::UnknownTag(99))
        );
    }

    #[test]
    fn bad_utf8_rejected() {
        let call = Call::new(Guid(1), "f").with_arg(Value::Str("ab".into()));
        let mut raw = call.encode().to_vec();
        let len = raw.len();
        raw[len - 1] = 0xFF;
        raw[len - 2] = 0xFE;
        assert_eq!(Call::decode(Bytes::from(raw)), Err(MarshalError::BadUtf8));
    }

    fn checksum_spec() -> InterfaceSpec {
        InterfaceSpec::new("IChecksum", Guid(500)).with_operation(OperationSpec {
            name: "checksum".into(),
            inputs: vec![("data".into(), TypeTag::Bytes)],
            output: TypeTag::U32,
        })
    }

    #[test]
    fn type_check_accepts_valid_call() {
        let call =
            Call::new(Guid(500), "checksum").with_arg(Value::Bytes(Bytes::from_static(b"x")));
        assert!(call.check_against(&checksum_spec()).is_ok());
    }

    #[test]
    fn type_check_rejects_wrong_interface() {
        let call = Call::new(Guid(501), "checksum");
        assert!(matches!(
            call.check_against(&checksum_spec()),
            Err(CallTypeError::WrongInterface { .. })
        ));
    }

    #[test]
    fn type_check_rejects_unknown_operation() {
        let call = Call::new(Guid(500), "verify");
        assert_eq!(
            call.check_against(&checksum_spec()),
            Err(CallTypeError::NoSuchOperation("verify".into()))
        );
    }

    #[test]
    fn type_check_rejects_arity() {
        let call = Call::new(Guid(500), "checksum");
        assert_eq!(
            call.check_against(&checksum_spec()),
            Err(CallTypeError::ArityMismatch { got: 0, want: 1 })
        );
    }

    #[test]
    fn type_check_rejects_wrong_type() {
        let call = Call::new(Guid(500), "checksum").with_arg(Value::U32(1));
        assert_eq!(
            call.check_against(&checksum_spec()),
            Err(CallTypeError::TypeMismatch {
                position: 0,
                got: TypeTag::U32,
                want: TypeTag::Bytes
            })
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::U32(7).as_u64(), Some(7));
        assert_eq!(Value::U64(9).as_u64(), Some(9));
        assert_eq!(Value::Str("x".into()).as_u64(), None);
        let b = Bytes::from_static(b"z");
        assert_eq!(Value::Bytes(b.clone()).as_bytes(), Some(&b));
        assert_eq!(Value::Unit.as_bytes(), None);
    }

    #[test]
    fn display_formats() {
        let call = Call::new(Guid(1), "f")
            .with_arg(Value::U32(5))
            .with_arg(Value::Str("s".into()));
        assert_eq!(call.to_string(), "guid:1::f(5u32, \"s\")");
    }
}
