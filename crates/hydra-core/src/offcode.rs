//! The Offcode component model (paper §3.1).
//!
//! "An Offcode is a component that contains its state, a well-defined
//! interface and a thread of control." In this reproduction an Offcode is
//! a Rust object implementing [`Offcode`]: the runtime deploys it to a
//! (simulated) device, drives its two-phase initialization
//! (`initialize` → `start`), and routes [`Call`]s to it. The
//! [`OffcodeCtx`] passed to every entry point is the Offcode's window to
//! the world: the clock, the device it runs on, compute-cost charging,
//! and channel sends — everything else is deliberately out of reach, like
//! firmware.

use std::fmt;

use bytes::Bytes;
use hydra_hw::cpu::Cycles;
use hydra_link::object::{HofObject, Section, Symbol, SymbolKind};
use hydra_odf::odf::Guid;
use hydra_sim::time::SimTime;

use crate::call::{Call, Value};
use crate::channel::ChannelId;
use crate::device::DeviceId;
use crate::error::RuntimeError;

/// Identifier of a deployed Offcode instance.
///
/// Dense `u32` ids, handed out monotonically starting at 1 (never
/// reused — instance ids appear in traces and dispatch results). The
/// runtime's instance table is a `Vec` indexed by [`OffcodeId::idx`],
/// so the invoke/pump hot path does array indexing instead of hash
/// lookups; `Guid` survives only at the API boundary (depot, ODF,
/// verify).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OffcodeId(pub u32);

impl OffcodeId {
    /// The id as a `Vec` index into instance-side tables.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OffcodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offcode#{}", self.0)
    }
}

/// The execution context handed to an Offcode's entry points.
///
/// Compute cost is *declared*, not measured: an Offcode calls
/// [`OffcodeCtx::charge`] with the cycles its logic would cost, and the
/// runtime books them against the hosting device's processor. Sends are
/// collected and executed by the runtime after the entry point returns
/// (the Offcode never touches another Offcode's memory).
#[derive(Debug)]
pub struct OffcodeCtx {
    now: SimTime,
    device: DeviceId,
    charged: Cycles,
    outbox: Vec<(ChannelId, Bytes)>,
}

impl OffcodeCtx {
    /// Creates a context for an entry-point invocation.
    pub fn new(now: SimTime, device: DeviceId) -> Self {
        OffcodeCtx {
            now,
            device,
            charged: Cycles::ZERO,
            outbox: Vec::new(),
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The device this Offcode is deployed on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Declares compute work performed by the current entry point.
    pub fn charge(&mut self, work: Cycles) {
        self.charged += work;
    }

    /// Total work declared so far in this invocation.
    pub fn charged(&self) -> Cycles {
        self.charged
    }

    /// Queues a raw message on a channel (executed by the runtime after
    /// the entry point returns).
    pub fn send(&mut self, channel: ChannelId, data: Bytes) {
        self.outbox.push((channel, data));
    }

    /// Queues a marshaled call on a channel.
    pub fn send_call(&mut self, channel: ChannelId, call: &Call) {
        self.send(channel, call.encode());
    }

    /// Drains the queued sends (runtime use).
    pub fn take_outbox(&mut self) -> Vec<(ChannelId, Bytes)> {
        std::mem::take(&mut self.outbox)
    }
}

/// A deployable component.
///
/// The `IOffcode` interface of the paper: identity, two-phase startup,
/// and call handling. Types implementing this trait are registered in the
/// runtime's Offcode depot with a factory and an ODF.
pub trait Offcode: fmt::Debug {
    /// The Offcode's GUID (must match its ODF).
    fn guid(&self) -> Guid;

    /// The bind name (must match its ODF).
    fn bind_name(&self) -> &str;

    /// The relocatable object file that carries this Offcode to a device.
    ///
    /// The default is a synthetic object sized like a small firmware
    /// module, importing the standard pseudo-Offcode symbols so the
    /// deployment pipeline exercises the real linker.
    fn object_file(&self) -> HofObject {
        synthetic_object(self.bind_name(), 8 * 1024, 1024)
    }

    /// Phase 1: acquire local resources. Peer Offcodes may not exist yet,
    /// so only local state may be touched (paper §3.1).
    ///
    /// # Errors
    ///
    /// Failing aborts the deployment; the runtime rolls back resources.
    fn initialize(&mut self, _ctx: &mut OffcodeCtx) -> Result<(), RuntimeError> {
        Ok(())
    }

    /// Phase 2: all peer Offcodes are deployed; inter-Offcode
    /// communication is available.
    ///
    /// # Errors
    ///
    /// Failing aborts the deployment; the runtime rolls back resources.
    fn start(&mut self, _ctx: &mut OffcodeCtx) -> Result<(), RuntimeError> {
        Ok(())
    }

    /// Handles one marshaled invocation.
    ///
    /// # Errors
    ///
    /// Propagated to the caller as the invocation's result.
    fn handle_call(&mut self, ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError>;

    /// Serializes the Offcode's state for migration (the relocation
    /// semantics HYDRA inherits from FarGo, paper §7). `None` (the
    /// default) marks the Offcode as non-migratable.
    fn snapshot(&self) -> Option<Bytes> {
        None
    }

    /// Restores state captured by [`Offcode::snapshot`] on a freshly
    /// instantiated copy at the new device.
    ///
    /// # Errors
    ///
    /// Failing aborts the migration leg: the runtime redeploys the
    /// Offcode on the host and retries the restore there (see
    /// `MigrateError::FellBack` in `hydra-core`'s error module).
    fn restore(&mut self, _state: Bytes) -> Result<(), RuntimeError> {
        Ok(())
    }
}

/// Builds a synthetic but structurally real HOF object for an Offcode:
/// `code_bytes` of text, `data_bytes` of data, an entry symbol named
/// `<bind_name>_entry`, and undefined references to the pseudo-Offcode
/// exports with matching relocations.
pub fn synthetic_object(bind_name: &str, code_bytes: usize, data_bytes: usize) -> HofObject {
    // Deterministic pseudo-code derived from the name, so different
    // Offcodes produce different images.
    let seed: u64 = bind_name.bytes().map(u64::from).sum();
    let text: Vec<u8> = (0..code_bytes)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(seed) % 251) as u8)
        .collect();
    let data: Vec<u8> = (0..data_bytes)
        .map(|i| ((i as u64).wrapping_mul(17).wrapping_add(seed) % 251) as u8)
        .collect();
    let mut obj = HofObject::new(bind_name)
        .with_section(Section::text(text))
        .with_section(Section::data(data))
        .with_section(Section::bss(4096))
        .with_symbol(Symbol {
            name: format!("{bind_name}_entry"),
            kind: SymbolKind::Defined {
                section: 0,
                offset: 0,
            },
        });
    // Reference the firmware exports the devices advertise.
    let imports = [
        "hydra_heap_alloc",
        "hydra_channel_write",
        "hydra_channel_read",
    ];
    for (i, imp) in imports.iter().enumerate() {
        let sym_idx = obj.symbols.len() as u32;
        obj = obj
            .with_symbol(Symbol {
                name: (*imp).to_owned(),
                kind: SymbolKind::Undefined,
            })
            .with_relocation(hydra_link::object::Relocation {
                section: 0,
                offset: (16 + i * 8) as u32,
                symbol: sym_idx,
                addend: 0,
                kind: hydra_link::object::RelocKind::Abs64,
            });
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Echo;

    impl Offcode for Echo {
        fn guid(&self) -> Guid {
            Guid(1)
        }
        fn bind_name(&self) -> &'static str {
            "test.Echo"
        }
        fn handle_call(
            &mut self,
            ctx: &mut OffcodeCtx,
            call: &Call,
        ) -> Result<Value, RuntimeError> {
            ctx.charge(Cycles::new(100));
            Ok(call.args.first().cloned().unwrap_or(Value::Unit))
        }
    }

    #[test]
    fn ctx_accumulates_charges_and_sends() {
        let mut ctx = OffcodeCtx::new(SimTime::from_millis(5), DeviceId(2));
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.device(), DeviceId(2));
        ctx.charge(Cycles::new(10));
        ctx.charge(Cycles::new(5));
        assert_eq!(ctx.charged(), Cycles::new(15));
        ctx.send(ChannelId(1), Bytes::from_static(b"a"));
        ctx.send_call(ChannelId(2), &Call::new(Guid(1), "f"));
        let outbox = ctx.take_outbox();
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[0].0, ChannelId(1));
        assert!(ctx.take_outbox().is_empty());
    }

    #[test]
    fn default_phases_succeed() {
        let mut e = Echo;
        let mut ctx = OffcodeCtx::new(SimTime::ZERO, DeviceId::HOST);
        assert!(e.initialize(&mut ctx).is_ok());
        assert!(e.start(&mut ctx).is_ok());
    }

    #[test]
    fn echo_roundtrip() {
        let mut e = Echo;
        let mut ctx = OffcodeCtx::new(SimTime::ZERO, DeviceId::HOST);
        let call = Call::new(Guid(1), "echo").with_arg(Value::U32(7));
        assert_eq!(e.handle_call(&mut ctx, &call).unwrap(), Value::U32(7));
        assert_eq!(ctx.charged(), Cycles::new(100));
    }

    #[test]
    fn synthetic_object_is_valid_and_linkable() {
        let obj = synthetic_object("tivo.Streamer", 4096, 512);
        obj.validate().unwrap();
        assert_eq!(obj.undefined_symbols().len(), 3);
        assert!(obj.load_size() > 4096);
        // Different names produce different images.
        let other = synthetic_object("tivo.Decoder", 4096, 512);
        assert_ne!(obj.sections[0].bytes, other.sections[0].bytes);
    }

    #[test]
    fn default_object_file_uses_bind_name() {
        let obj = Echo.object_file();
        assert_eq!(obj.name, "test.Echo");
        assert!(obj.symbols.iter().any(|s| s.name == "test.Echo_entry"));
    }
}
