//! The offloading layout graph and its resolvers (paper §5).
//!
//! The runtime turns the ODFs of an application into a [`LayoutGraph`]:
//! Offcodes as nodes (each with a per-device compatibility vector `C[n][k]`
//! and a bus-bandwidth price), constraints as edges. Placement is then an
//! assignment `X[n][k] ∈ {0,1}`:
//!
//! * uniqueness — every Offcode lands on exactly one target (eq. 1),
//! * `Pull` — both endpoints on the *same* device (eq. 2),
//! * `Gang` — both offloaded, or neither (eq. 3),
//! * asymmetric `Gang` — offloading the source implies offloading the
//!   destination (eq. 4).
//!
//! Two objectives from §5.1.3 are provided: **maximized offloading** and
//! **maximize bus usage** (per-Offcode prices under per-device bandwidth
//! capacities — the paper's capability matrix reduced to its per-device
//! row sums, which keeps the program linear; see DESIGN.md).
//!
//! [`LayoutGraph::resolve_ilp`] solves exactly via `hydra-ilp`;
//! [`LayoutGraph::resolve_greedy`] is the heuristic the paper notes "is
//! not always optimal" for complex scenarios.

use std::collections::HashMap;
use std::fmt;

use hydra_ilp::branch::SearchStats;
use hydra_ilp::model::{Direction, Outcome, Problem, Sense, Solution, VarId};
use hydra_ilp::{solve_ilp_warm, solve_lp};
use hydra_odf::odf::{ConstraintKind, Guid, OdfDocument};

use crate::channel::ChannelCost;
use crate::device::{DeviceId, DeviceRegistry};

/// The bus-bandwidth price of an Offcode whose channel moves
/// `bytes`-sized messages under `cost`, in MB/s of *effective*
/// delivered bandwidth: the streaming per-message and launch charges
/// folded into the wire rate ([`ChannelCost::effective_throughput`]).
///
/// This is the richer price the crossover curves feed into
/// [`Objective::MaximizeBusUsage`]: a chatty small-message Offcode on a
/// high-setup DMA channel prices low (the doorbells dominate), while
/// the same traffic over PIO — or bulk traffic over DMA — prices high.
#[allow(clippy::cast_precision_loss)]
pub fn bus_price(cost: &ChannelCost, bytes: usize) -> f64 {
    cost.effective_throughput(bytes) as f64 / 1_000_000.0
}

/// Index of a node within a [`LayoutGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub usize);

/// One Offcode in the layout graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutNode {
    /// The Offcode's GUID.
    pub guid: Guid,
    /// Its bind name (diagnostics).
    pub bind_name: String,
    /// `compat[k]` — may this Offcode run on device `k`? Index 0 is the
    /// host and is always `true`.
    pub compat: Vec<bool>,
    /// Estimated bus bandwidth demand (the §5 "price"; arbitrary units).
    pub price: f64,
}

/// A constraint edge between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutEdge {
    /// Source node (the importing Offcode).
    pub from: NodeIdx,
    /// Destination node (the imported Offcode).
    pub to: NodeIdx,
    /// The constraint.
    pub constraint: ConstraintKind,
}

/// A placement: one device per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement(pub Vec<DeviceId>);

impl Placement {
    /// The device hosting node `n`.
    pub fn device_of(&self, n: NodeIdx) -> DeviceId {
        self.0[n.0]
    }

    /// How many Offcodes are offloaded (not on the host).
    pub fn offloaded_count(&self) -> usize {
        self.0.iter().filter(|d| !d.is_host()).count()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// A structural change applied to a layout graph between solves, named
/// so [`LayoutGraph::repair`] can focus the re-solve on the nodes the
/// change can actually affect instead of re-deriving the whole layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphDelta {
    /// `device` fail-stopped and has been removed from every node's
    /// compatibility vector (see [`LayoutGraph::mask_device`]): nodes
    /// previously placed on it lost their home.
    MaskDevice(DeviceId),
    /// `device` (re-)joined the deployment and compatibility vectors now
    /// allow it: nodes able to run there may newly pay off offloaded.
    DeviceJoin(DeviceId),
}

/// Optimization objectives (paper §5.1.3).
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Offload as many Offcodes as possible, to minimize host CPU usage
    /// and memory contention.
    MaximizeOffloading,
    /// Maximize the total bus-bandwidth price of offloaded Offcodes,
    /// subject to per-device bandwidth capacities (`capacities[k]`; the
    /// host entry is ignored).
    MaximizeBusUsage {
        /// Bandwidth capacity per device, indexed like the registry.
        capacities: Vec<f64>,
    },
}

/// Layout failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// An import references a GUID that is not part of the application.
    UnknownImport {
        /// The importing Offcode.
        importer: Guid,
        /// The missing peer.
        missing: Guid,
    },
    /// Two Offcodes share a GUID.
    DuplicateGuid(Guid),
    /// An Offcode imports its own GUID (would form a self-loop edge).
    SelfImport(Guid),
    /// The constraint system is unsatisfiable.
    Unsatisfiable,
    /// A placement violates the graph (returned by [`LayoutGraph::check`]).
    Violation(String),
    /// An objective's shape does not match the graph (e.g. capacity vector
    /// of the wrong length).
    BadObjective(String),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::UnknownImport { importer, missing } => {
                write!(f, "{importer} imports unknown offcode {missing}")
            }
            LayoutError::DuplicateGuid(g) => write!(f, "duplicate offcode {g}"),
            LayoutError::SelfImport(g) => write!(f, "{g} imports itself"),
            LayoutError::Unsatisfiable => f.write_str("layout constraints are unsatisfiable"),
            LayoutError::Violation(s) => write!(f, "placement violates layout: {s}"),
            LayoutError::BadObjective(s) => write!(f, "bad objective: {s}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// The `X[n][k]` placement-variable grid produced by [`LayoutGraph::to_ilp`]
/// (`None` where the compatibility mask forbids the pairing).
pub type VarGrid = Vec<Vec<Option<VarId>>>;

/// The offloading layout graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayoutGraph {
    nodes: Vec<LayoutNode>,
    edges: Vec<LayoutEdge>,
}

impl LayoutGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the compatibility vector is empty or its host entry is
    /// `false`.
    pub fn add_node(&mut self, node: LayoutNode) -> NodeIdx {
        assert!(
            node.compat.first() == Some(&true),
            "compat[0] (host) must be true"
        );
        let idx = NodeIdx(self.nodes.len());
        self.nodes.push(node);
        idx
    }

    /// Adds a constraint edge. An exact duplicate of an existing edge
    /// (same endpoints and constraint) is deduplicated — it would only
    /// restate a constraint already in force and bloat the ILP.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, or on a self-loop
    /// (`from == to`): no constraint kind is meaningful against itself,
    /// and the ILP/greedy resolvers would silently mistranslate one.
    pub fn add_edge(&mut self, from: NodeIdx, to: NodeIdx, constraint: ConstraintKind) {
        assert!(from.0 < self.nodes.len() && to.0 < self.nodes.len());
        assert!(from != to, "self-loop edge on node {}", from.0);
        let edge = LayoutEdge {
            from,
            to,
            constraint,
        };
        if !self.edges.contains(&edge) {
            self.edges.push(edge);
        }
    }

    /// Removes `device` from every node's compatibility vector, so the
    /// resolvers route around it. Used by failure recovery: a fail-stopped
    /// device must attract no Offcode in the replacement layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BadObjective`] if `device` is the host —
    /// the host can never be masked (it is the universal fallback and
    /// `compat[0]` must stay `true`).
    pub fn mask_device(&mut self, device: DeviceId) -> Result<(), LayoutError> {
        if device.is_host() {
            return Err(LayoutError::BadObjective(
                "the host cannot be masked out of a layout".into(),
            ));
        }
        for node in &mut self.nodes {
            if let Some(slot) = node.compat.get_mut(device.idx()) {
                *slot = false;
            }
        }
        Ok(())
    }

    /// Pins node `n` to `device`: its compatibility vector keeps only the
    /// host and `device`. Failure recovery pins Offcodes that cannot be
    /// snapshot-migrated to wherever they already run, so the re-layout
    /// cannot order a move that would lose their state.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn pin_node(&mut self, n: NodeIdx, device: DeviceId) {
        let node = &mut self.nodes[n.0];
        for (k, slot) in node.compat.iter_mut().enumerate() {
            *slot = k == 0 || k == device.idx();
        }
    }

    /// Overrides node `n`'s bus-bandwidth price (the §5 objective
    /// weight), e.g. from a measured channel cost via [`bus_price`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn set_price(&mut self, n: NodeIdx, price: f64) {
        self.nodes[n.0].price = price;
    }

    /// Reprices node `n` from a provider's [`ChannelCost`] at the
    /// Offcode's typical message size: the node's bus demand becomes
    /// the channel's effective delivered bandwidth (see [`bus_price`]),
    /// so [`Objective::MaximizeBusUsage`] prefers offloading the
    /// Offcodes whose channels actually move the most bytes per second
    /// — small-message Offcodes are priced by the fixed per-message and
    /// launch charges, not the headline wire rate.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn reprice_from_cost(&mut self, n: NodeIdx, cost: &ChannelCost, message_bytes: usize) {
        self.set_price(n, bus_price(cost, message_bytes));
    }

    /// The nodes.
    pub fn nodes(&self) -> &[LayoutNode] {
        &self.nodes
    }

    /// The edges.
    pub fn edges(&self) -> &[LayoutEdge] {
        &self.edges
    }

    /// Builds the graph for an application: one node per ODF, edges from
    /// imports. The node order follows `odfs`.
    ///
    /// # Errors
    ///
    /// Fails on duplicate GUIDs or imports of GUIDs not in `odfs`.
    pub fn from_odfs(
        odfs: &[OdfDocument],
        registry: &DeviceRegistry,
    ) -> Result<LayoutGraph, LayoutError> {
        let mut graph = LayoutGraph::new();
        let mut by_guid: HashMap<Guid, NodeIdx> = HashMap::new();
        for odf in odfs {
            if by_guid.contains_key(&odf.guid) {
                return Err(LayoutError::DuplicateGuid(odf.guid));
            }
            let idx = graph.add_node(LayoutNode {
                guid: odf.guid,
                bind_name: odf.bind_name.clone(),
                compat: registry.compatibility(&odf.targets),
                price: 1.0,
            });
            by_guid.insert(odf.guid, idx);
        }
        for (i, odf) in odfs.iter().enumerate() {
            for imp in &odf.imports {
                if imp.guid == odf.guid {
                    return Err(LayoutError::SelfImport(odf.guid));
                }
                let Some(&to) = by_guid.get(&imp.guid) else {
                    return Err(LayoutError::UnknownImport {
                        importer: odf.guid,
                        missing: imp.guid,
                    });
                };
                graph.add_edge(NodeIdx(i), to, imp.constraint);
            }
        }
        Ok(graph)
    }

    /// Number of deployment targets the compat vectors cover.
    fn num_devices(&self) -> usize {
        self.nodes.first().map_or(1, |n| n.compat.len())
    }

    /// Checks an objective's shape without building the ILP.
    fn validate_objective(&self, objective: &Objective) -> Result<(), LayoutError> {
        if let Objective::MaximizeBusUsage { capacities } = objective {
            if capacities.len() != self.num_devices() {
                return Err(LayoutError::BadObjective(format!(
                    "capacity vector has {} entries for {} devices",
                    capacities.len(),
                    self.num_devices()
                )));
            }
        }
        Ok(())
    }

    /// The graph as `hydra-verify`'s structural view (demands are not
    /// needed for constraint propagation and stay at the default).
    pub fn verify_view(&self) -> hydra_verify::GraphView {
        hydra_verify::GraphView {
            nodes: self
                .nodes
                .iter()
                .map(|n| hydra_verify::input::NodeView {
                    guid: n.guid,
                    bind_name: n.bind_name.clone(),
                    compat: n.compat.clone(),
                    demand: hydra_verify::input::DEFAULT_FOOTPRINT,
                    traffic: None,
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .map(|e| hydra_verify::input::EdgeView {
                    from: e.from.0,
                    to: e.to.0,
                    kind: e.constraint,
                })
                .collect(),
        }
    }

    /// Verifies a placement against compatibility and every constraint.
    ///
    /// # Errors
    ///
    /// Returns the first violation, described.
    pub fn check(&self, placement: &Placement) -> Result<(), LayoutError> {
        if placement.0.len() != self.nodes.len() {
            return Err(LayoutError::Violation("wrong placement length".into()));
        }
        for (n, node) in self.nodes.iter().enumerate() {
            let dev = placement.0[n];
            if dev.idx() >= node.compat.len() || !node.compat[dev.idx()] {
                return Err(LayoutError::Violation(format!(
                    "{} cannot run on {dev}",
                    node.bind_name
                )));
            }
        }
        for e in &self.edges {
            let da = placement.device_of(e.from);
            let db = placement.device_of(e.to);
            let name = |i: NodeIdx| self.nodes[i.0].bind_name.clone();
            match e.constraint {
                ConstraintKind::Link => {}
                ConstraintKind::Pull => {
                    if da != db {
                        return Err(LayoutError::Violation(format!(
                            "Pull violated: {} on {da}, {} on {db}",
                            name(e.from),
                            name(e.to)
                        )));
                    }
                }
                ConstraintKind::Gang => {
                    if da.is_host() != db.is_host() {
                        return Err(LayoutError::Violation(format!(
                            "Gang violated: {} on {da}, {} on {db}",
                            name(e.from),
                            name(e.to)
                        )));
                    }
                }
                ConstraintKind::AsymGang => {
                    if !da.is_host() && db.is_host() {
                        return Err(LayoutError::Violation(format!(
                            "AsymGang violated: {} offloaded but {} on host",
                            name(e.from),
                            name(e.to)
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total price of offloaded Offcodes under a placement.
    pub fn bus_value(&self, placement: &Placement) -> f64 {
        self.nodes
            .iter()
            .zip(&placement.0)
            .filter(|(_, d)| !d.is_host())
            .map(|(n, _)| n.price)
            .sum()
    }

    /// Builds the §5 ILP: returns the problem plus the `X[n][k]` variable
    /// grid (`None` where the compatibility mask forbids the pairing).
    ///
    /// # Errors
    ///
    /// Fails if an objective's capacity vector has the wrong length.
    pub fn to_ilp(&self, objective: &Objective) -> Result<(Problem, VarGrid), LayoutError> {
        let k_count = self.num_devices();
        if let Objective::MaximizeBusUsage { capacities } = objective {
            if capacities.len() != k_count {
                return Err(LayoutError::BadObjective(format!(
                    "capacity vector has {} entries for {} devices",
                    capacities.len(),
                    k_count
                )));
            }
        }
        let mut p = Problem::new(Direction::Maximize);
        let mut x: VarGrid = Vec::with_capacity(self.nodes.len());
        for (n, node) in self.nodes.iter().enumerate() {
            let mut row = Vec::with_capacity(k_count);
            for k in 0..k_count {
                if node.compat[k] {
                    row.push(Some(p.add_binary(&format!("x_{n}_{k}"))));
                } else {
                    row.push(None);
                }
            }
            x.push(row);
        }

        // Eq. 1 — uniqueness per Offcode.
        for (n, row) in x.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = row.iter().flatten().map(|&v| (v, 1.0)).collect();
            p.add_constraint(&format!("unique_{n}"), terms, Sense::Eq, 1.0);
        }

        // Constraint edges.
        for (ei, e) in self.edges.iter().enumerate() {
            let a = e.from.0;
            let b = e.to.0;
            match e.constraint {
                ConstraintKind::Link => {}
                // Eq. 2 — same device, coordinate-wise.
                ConstraintKind::Pull => {
                    #[allow(clippy::needless_range_loop)]
                    for k in 0..k_count {
                        match (x[a][k], x[b][k]) {
                            (Some(va), Some(vb)) => p.add_constraint(
                                &format!("pull_{ei}_{k}"),
                                vec![(va, 1.0), (vb, -1.0)],
                                Sense::Eq,
                                0.0,
                            ),
                            (Some(v), None) | (None, Some(v)) => {
                                // One side cannot be there: neither may be.
                                p.add_constraint(
                                    &format!("pull_{ei}_{k}"),
                                    vec![(v, 1.0)],
                                    Sense::Eq,
                                    0.0,
                                );
                            }
                            (None, None) => {}
                        }
                    }
                }
                // Eq. 3 — offloaded-ness equal (sums over k >= 1).
                ConstraintKind::Gang => {
                    let mut terms: Vec<(VarId, f64)> = Vec::new();
                    terms.extend(x[a][1..].iter().flatten().map(|&v| (v, 1.0)));
                    terms.extend(x[b][1..].iter().flatten().map(|&v| (v, -1.0)));
                    p.add_constraint(&format!("gang_{ei}"), terms, Sense::Eq, 0.0);
                }
                // Eq. 4 — offload(a) <= offload(b).
                ConstraintKind::AsymGang => {
                    let mut terms: Vec<(VarId, f64)> = Vec::new();
                    terms.extend(x[a][1..].iter().flatten().map(|&v| (v, 1.0)));
                    terms.extend(x[b][1..].iter().flatten().map(|&v| (v, -1.0)));
                    p.add_constraint(&format!("asym_{ei}"), terms, Sense::Le, 0.0);
                }
            }
        }

        // Objective.
        match objective {
            Objective::MaximizeOffloading => {
                let terms: Vec<(VarId, f64)> = x
                    .iter()
                    .flat_map(|row| row[1..].iter().flatten().map(|&v| (v, 1.0)))
                    .collect();
                p.set_objective(terms);
            }
            Objective::MaximizeBusUsage { capacities } => {
                let terms: Vec<(VarId, f64)> = x
                    .iter()
                    .enumerate()
                    .flat_map(|(n, row)| {
                        let price = self.nodes[n].price;
                        row[1..].iter().flatten().map(move |&v| (v, price))
                    })
                    .collect();
                p.set_objective(terms);
                for k in 1..k_count {
                    let terms: Vec<(VarId, f64)> = x
                        .iter()
                        .enumerate()
                        .filter_map(|(n, row)| row[k].map(|v| (v, self.nodes[n].price)))
                        .collect();
                    if !terms.is_empty() {
                        p.add_constraint(&format!("cap_{k}"), terms, Sense::Le, capacities[k]);
                    }
                }
            }
        }
        Ok((p, x))
    }

    /// Resolves the layout exactly with branch-and-bound ILP.
    ///
    /// # Errors
    ///
    /// Fails if the constraints are unsatisfiable.
    pub fn resolve_ilp(&self, objective: &Objective) -> Result<Placement, LayoutError> {
        self.resolve_ilp_with_stats(objective).map(|(p, _)| p)
    }

    /// Like [`LayoutGraph::resolve_ilp`], but also returns the
    /// branch-and-bound search statistics (nodes explored, bounds pruned)
    /// so callers can feed an observability recorder.
    ///
    /// Before building the ILP, `hydra-verify`'s narrowing pre-check runs
    /// over the graph; when it proves the all-host placement is the only
    /// feasible one, the solve is skipped entirely and the stats come
    /// back with `presolved = true` and `nodes = 0`.
    ///
    /// # Errors
    ///
    /// Fails if the constraints are unsatisfiable.
    pub fn resolve_ilp_with_stats(
        &self,
        objective: &Objective,
    ) -> Result<(Placement, SearchStats), LayoutError> {
        self.resolve_ilp_hinted(objective, None)
    }

    /// The shared exact-resolve core: presolve, build the ILP, optionally
    /// install a warm-start hint placement as the initial incumbent, and
    /// search to proven optimality.
    fn resolve_ilp_hinted(
        &self,
        objective: &Objective,
        hint: Option<&Placement>,
    ) -> Result<(Placement, SearchStats), LayoutError> {
        if self.nodes.is_empty() {
            return Ok((Placement(Vec::new()), SearchStats::default()));
        }
        self.validate_objective(objective)?;
        let pre = hydra_verify::Precheck::narrow(&self.verify_view());
        if pre.host_only() {
            let placement = Placement(vec![DeviceId::HOST; self.nodes.len()]);
            debug_assert!(self.check(&placement).is_ok());
            return Ok((
                placement,
                SearchStats {
                    presolved: true,
                    ..SearchStats::default()
                },
            ));
        }
        let (problem, x) = self.to_ilp(objective)?;
        let hint_values = hint.map(|p| Self::x_values(&problem, &x, p));
        let result = solve_ilp_warm(&problem, hint_values.as_deref());
        let Outcome::Optimal(sol) = result.outcome else {
            return Err(LayoutError::Unsatisfiable);
        };
        let placement = Self::extract_placement(&x, &sol);
        debug_assert!(self.check(&placement).is_ok());
        Ok((placement, result.stats))
    }

    /// The `X[n][k]` value vector a placement corresponds to, in
    /// `problem`'s variable space (a node placed somewhere its grid row
    /// has no variable simply contributes nothing, which the feasibility
    /// check then rejects).
    fn x_values(problem: &Problem, x: &VarGrid, placement: &Placement) -> Vec<f64> {
        let mut values = vec![0.0; problem.num_vars()];
        for (n, row) in x.iter().enumerate() {
            if let Some(Some(v)) = row.get(placement.0[n].idx()) {
                values[v.index()] = 1.0;
            }
        }
        values
    }

    /// Reads a placement back out of an integral ILP solution.
    fn extract_placement(x: &VarGrid, sol: &Solution) -> Placement {
        let mut devices = Vec::with_capacity(x.len());
        for row in x {
            let mut chosen = DeviceId::HOST;
            for (k, v) in row.iter().enumerate() {
                if let Some(v) = v {
                    if sol.is_set(*v) {
                        chosen = DeviceId(k as u32);
                        break;
                    }
                }
            }
            devices.push(chosen);
        }
        Placement(devices)
    }

    /// Incrementally re-solves the layout after `delta`, warm-starting
    /// from `prev` — the placement that was optimal *before* the change.
    ///
    /// `self` is the **post-delta** graph (the device already masked via
    /// [`LayoutGraph::mask_device`], or compatibility vectors already
    /// extended for a joined device). Instead of re-deriving every
    /// node's placement from scratch, repair:
    ///
    /// 1. collects the **dirty** nodes — those whose previous placement
    ///    the delta made infeasible, plus (on a join) every node the new
    ///    device could attract;
    /// 2. closes the dirty set over binding (non-`Link`) constraint
    ///    edges, so Gang/Pull/AsymGang partners re-solve together;
    /// 3. exactly re-solves only that sub-component — warm-started from
    ///    the previous placement with evicted nodes pulled to the host —
    ///    while every untouched node stays frozen where it was (under
    ///    [`Objective::MaximizeBusUsage`], frozen nodes keep their
    ///    capacity share);
    /// 4. splices the repaired sub-placement back over `prev` and proves
    ///    it optimal against the full problem's LP-relaxation bound. If
    ///    the bound leaves room above the repaired value (a better
    ///    global layout might exist, or the bound is simply loose), it
    ///    falls back to the full ILP — warm-started by the repaired
    ///    candidate — so the result is **always** objective-equal to a
    ///    from-scratch [`LayoutGraph::resolve_ilp`].
    ///
    /// The returned [`SearchStats`] count the actual search performed:
    /// `repaired_nodes` is the size of the re-solved component,
    /// `warm_start_hits` the accepted hints, and `nodes` the LP
    /// relaxations solved across the sub-solve (and the fallback, when
    /// taken) — the root LP bound itself is not a search node.
    ///
    /// # Errors
    ///
    /// Fails when `prev`'s length does not match the graph, the
    /// objective's shape is invalid, or the constraints are
    /// unsatisfiable.
    pub fn repair(
        &self,
        prev: &Placement,
        delta: &GraphDelta,
        objective: &Objective,
    ) -> Result<(Placement, SearchStats), LayoutError> {
        if prev.0.len() != self.nodes.len() {
            return Err(LayoutError::Violation(
                "previous placement length does not match the graph".into(),
            ));
        }
        self.validate_objective(objective)?;
        if self.nodes.is_empty() {
            return Ok((Placement(Vec::new()), SearchStats::default()));
        }

        // 1. Dirty nodes: infeasible under the post-delta compat masks,
        //    plus everything a joined device could newly attract.
        let mut in_repair = vec![false; self.nodes.len()];
        for (n, node) in self.nodes.iter().enumerate() {
            let dev = prev.0[n];
            if dev.idx() >= node.compat.len() || !node.compat[dev.idx()] {
                in_repair[n] = true;
            }
            if let GraphDelta::DeviceJoin(joined) = delta {
                if node.compat.get(joined.idx()) == Some(&true) {
                    in_repair[n] = true;
                }
            }
        }

        // 2. Close over binding edges: a re-placed node drags its
        //    Pull/Gang/AsymGang partners into the re-solve (transitively),
        //    because their optimal placements are coupled to its own.
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if e.constraint == ConstraintKind::Link {
                continue;
            }
            adjacency[e.from.0].push(e.to.0);
            adjacency[e.to.0].push(e.from.0);
        }
        let mut frontier: Vec<usize> = (0..self.nodes.len()).filter(|&n| in_repair[n]).collect();
        while let Some(n) = frontier.pop() {
            for &m in &adjacency[n] {
                if !in_repair[m] {
                    in_repair[m] = true;
                    frontier.push(m);
                }
            }
        }
        let component: Vec<usize> = (0..self.nodes.len()).filter(|&n| in_repair[n]).collect();

        let mut stats = SearchStats {
            repaired_nodes: component.len() as u64,
            ..SearchStats::default()
        };

        // 3. Exactly re-solve the component with everything else frozen.
        let mut candidate = prev.clone();
        if !component.is_empty() {
            let mut sub = LayoutGraph::new();
            let mut sub_idx = vec![usize::MAX; self.nodes.len()];
            for &n in &component {
                sub_idx[n] = sub.add_node(self.nodes[n].clone()).0;
            }
            for e in &self.edges {
                let (a, b) = (sub_idx[e.from.0], sub_idx[e.to.0]);
                if a != usize::MAX && b != usize::MAX {
                    sub.add_edge(NodeIdx(a), NodeIdx(b), e.constraint);
                }
            }
            let sub_objective = match objective {
                Objective::MaximizeOffloading => Objective::MaximizeOffloading,
                Objective::MaximizeBusUsage { capacities } => {
                    // Frozen nodes keep the bus share they already hold.
                    let mut remaining = capacities.clone();
                    for (n, node) in self.nodes.iter().enumerate() {
                        let dev = prev.0[n];
                        if !in_repair[n] && !dev.is_host() {
                            if let Some(cap) = remaining.get_mut(dev.idx()) {
                                *cap = (*cap - node.price).max(0.0);
                            }
                        }
                    }
                    Objective::MaximizeBusUsage {
                        capacities: remaining,
                    }
                }
            };
            let hint = Placement(
                component
                    .iter()
                    .map(|&n| {
                        let dev = prev.0[n];
                        let node = &self.nodes[n];
                        if dev.idx() < node.compat.len() && node.compat[dev.idx()] {
                            dev
                        } else {
                            DeviceId::HOST
                        }
                    })
                    .collect(),
            );
            let (sub_placement, sub_stats) = sub.resolve_ilp_hinted(&sub_objective, Some(&hint))?;
            stats.nodes += sub_stats.nodes;
            stats.pruned += sub_stats.pruned;
            stats.presolved = sub_stats.presolved;
            stats.warm_start_hits += sub_stats.warm_start_hits;
            for (&n, &dev) in component.iter().zip(&sub_placement.0) {
                candidate.0[n] = dev;
            }
        }

        // 4. Prove the spliced candidate optimal — or fall back. The full
        //    problem's root LP relaxation bounds every placement from
        //    above; a candidate meeting the bound is optimal, no search
        //    needed.
        let (problem, x) = self.to_ilp(objective)?;
        let values = Self::x_values(&problem, &x, &candidate);
        let feasible =
            self.check(&candidate).is_ok() && problem.check_feasible(&values, 1e-6).is_ok();
        if feasible {
            let bound = match solve_lp(&problem) {
                Outcome::Optimal(s) => s.objective,
                Outcome::Infeasible => return Err(LayoutError::Unsatisfiable),
                Outcome::Unbounded => f64::INFINITY,
            };
            if problem.objective_value(&values) >= bound - 1e-6 {
                return Ok((candidate, stats));
            }
        }
        let result = solve_ilp_warm(&problem, feasible.then_some(values.as_slice()));
        let Outcome::Optimal(sol) = result.outcome else {
            return Err(LayoutError::Unsatisfiable);
        };
        stats.nodes += result.stats.nodes;
        stats.pruned += result.stats.pruned;
        stats.warm_start_hits += result.stats.warm_start_hits;
        stats.presolved = false;
        let placement = Self::extract_placement(&x, &sol);
        debug_assert!(self.check(&placement).is_ok());
        Ok((placement, stats))
    }

    /// Greedy heuristic: visit Offcodes in descending price order; place
    /// each on its first compatible non-host device that keeps all
    /// constraints toward already-placed neighbours satisfiable and (for
    /// [`Objective::MaximizeBusUsage`]) fits the device's remaining
    /// capacity; otherwise fall back to the host.
    ///
    /// Greedy is *not always optimal* (the paper's motivation for the ILP
    /// formulation); `ilp_vs_greedy` in the bench suite quantifies the
    /// gap.
    pub fn resolve_greedy(&self, objective: &Objective) -> Placement {
        let k_count = self.num_devices();
        let mut remaining: Vec<f64> = match objective {
            Objective::MaximizeBusUsage { capacities } => capacities.clone(),
            Objective::MaximizeOffloading => vec![f64::INFINITY; k_count],
        };
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            self.nodes[b]
                .price
                .partial_cmp(&self.nodes[a].price)
                .expect("prices are finite")
                .then(a.cmp(&b))
        });
        let mut devices: Vec<Option<DeviceId>> = vec![None; self.nodes.len()];
        for &n in &order {
            let node = &self.nodes[n];
            let mut chosen = DeviceId::HOST;
            #[allow(clippy::needless_range_loop)]
            for k in 1..k_count {
                if !node.compat[k] {
                    continue;
                }
                if node.price > remaining[k] {
                    continue;
                }
                if self.greedy_compatible(n, DeviceId(k as u32), &devices) {
                    chosen = DeviceId(k as u32);
                    break;
                }
            }
            if !chosen.is_host() {
                remaining[chosen.idx()] -= node.price;
            } else if !self.greedy_compatible(n, DeviceId::HOST, &devices) {
                // Host conflicts with a placed neighbour (e.g. Gang with an
                // offloaded peer). Leave on host anyway: greedy is a
                // heuristic, and `check` will expose the violation; repair
                // by pulling the neighbour back would cascade.
            }
            devices[n] = Some(chosen);
        }
        let mut placement = Placement(
            devices
                .into_iter()
                .map(|d| d.expect("all placed"))
                .collect(),
        );
        self.repair_gangs(&mut placement);
        placement
    }

    /// Whether placing node `n` on `dev` keeps constraints to already
    /// placed neighbours satisfied.
    fn greedy_compatible(&self, n: usize, dev: DeviceId, placed: &[Option<DeviceId>]) -> bool {
        for e in &self.edges {
            let (other, constraint, n_is_from) = if e.from.0 == n {
                (e.to.0, e.constraint, true)
            } else if e.to.0 == n {
                (e.from.0, e.constraint, false)
            } else {
                continue;
            };
            let Some(od) = placed[other] else { continue };
            let ok = match constraint {
                ConstraintKind::Link => true,
                ConstraintKind::Pull => od == dev,
                ConstraintKind::Gang => od.is_host() == dev.is_host(),
                ConstraintKind::AsymGang => {
                    if n_is_from {
                        // n offloaded requires other offloaded.
                        dev.is_host() || !od.is_host()
                    } else {
                        od.is_host() || !dev.is_host()
                    }
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Post-pass: pull offenders of Gang/AsymGang edges back to the host
    /// until the placement is feasible (always terminates: host-everything
    /// is feasible).
    fn repair_gangs(&self, placement: &mut Placement) {
        loop {
            let mut changed = false;
            for e in &self.edges {
                let da = placement.0[e.from.0];
                let db = placement.0[e.to.0];
                match e.constraint {
                    ConstraintKind::Pull => {
                        if da != db {
                            placement.0[e.from.0] = DeviceId::HOST;
                            placement.0[e.to.0] = DeviceId::HOST;
                            changed = true;
                        }
                    }
                    ConstraintKind::Gang => {
                        if da.is_host() != db.is_host() {
                            placement.0[e.from.0] = DeviceId::HOST;
                            placement.0[e.to.0] = DeviceId::HOST;
                            changed = true;
                        }
                    }
                    ConstraintKind::AsymGang => {
                        if !da.is_host() && db.is_host() {
                            placement.0[e.from.0] = DeviceId::HOST;
                            changed = true;
                        }
                    }
                    ConstraintKind::Link => {}
                }
            }
            if !changed {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceDescriptor;
    use hydra_odf::odf::{class_ids, DeviceClassSpec, Import};

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic()); // dev1
        reg.install(DeviceDescriptor::smart_disk()); // dev2
        reg.install(DeviceDescriptor::gpu()); // dev3
        reg
    }

    fn class(id: u32) -> DeviceClassSpec {
        DeviceClassSpec {
            id,
            name: format!("class-{id}"),
            bus: None,
            mac: None,
            vendor: None,
        }
    }

    fn node(guid: u64, compat: Vec<bool>) -> LayoutNode {
        LayoutNode {
            guid: Guid(guid),
            bind_name: format!("oc{guid}"),
            compat,
            price: 1.0,
        }
    }

    #[test]
    fn from_odfs_builds_nodes_and_edges() {
        let streamer = OdfDocument::new("tivo.Streamer", Guid(1))
            .with_target(class(class_ids::NETWORK))
            .with_import(Import {
                file: String::new(),
                bind_name: "tivo.Decoder".into(),
                guid: Guid(2),
                constraint: ConstraintKind::Gang,
                priority: 0,
            });
        let decoder = OdfDocument::new("tivo.Decoder", Guid(2)).with_target(class(class_ids::GPU));
        let g = LayoutGraph::from_odfs(&[streamer, decoder], &registry()).unwrap();
        assert_eq!(g.nodes().len(), 2);
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.nodes()[0].compat, vec![true, true, false, false]);
        assert_eq!(g.nodes()[1].compat, vec![true, false, false, true]);
        assert_eq!(g.edges()[0].constraint, ConstraintKind::Gang);
    }

    #[test]
    fn unknown_import_rejected() {
        let a = OdfDocument::new("a", Guid(1)).with_import(Import {
            file: String::new(),
            bind_name: "ghost".into(),
            guid: Guid(99),
            constraint: ConstraintKind::Link,
            priority: 0,
        });
        assert!(matches!(
            LayoutGraph::from_odfs(&[a], &registry()),
            Err(LayoutError::UnknownImport { .. })
        ));
    }

    #[test]
    fn self_import_rejected() {
        let a = OdfDocument::new("a", Guid(1)).with_import(Import {
            file: String::new(),
            bind_name: "a".into(),
            guid: Guid(1),
            constraint: ConstraintKind::Link,
            priority: 0,
        });
        assert_eq!(
            LayoutGraph::from_odfs(&[a], &registry()),
            Err(LayoutError::SelfImport(Guid(1)))
        );
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true]));
        let b = g.add_node(node(2, vec![true, true]));
        g.add_edge(a, b, ConstraintKind::Pull);
        g.add_edge(a, b, ConstraintKind::Pull);
        assert_eq!(g.edges().len(), 1, "exact duplicate collapses");
        // A different constraint between the same pair is a new edge.
        g.add_edge(a, b, ConstraintKind::Gang);
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_edge_panics() {
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true]));
        g.add_edge(a, a, ConstraintKind::Pull);
    }

    #[test]
    fn host_only_graph_is_presolved() {
        let mut g = LayoutGraph::new();
        // Disjoint Pull: the pre-check proves all-host without a solve.
        let a = g.add_node(node(1, vec![true, true, false]));
        let b = g.add_node(node(2, vec![true, false, true]));
        g.add_edge(a, b, ConstraintKind::Pull);
        let (p, stats) = g
            .resolve_ilp_with_stats(&Objective::MaximizeOffloading)
            .unwrap();
        assert_eq!(p.offloaded_count(), 0);
        assert!(stats.presolved);
        assert_eq!(stats.nodes, 0);

        // An offloadable graph must still search.
        let mut g2 = LayoutGraph::new();
        g2.add_node(node(1, vec![true, true]));
        let (p2, stats2) = g2
            .resolve_ilp_with_stats(&Objective::MaximizeOffloading)
            .unwrap();
        assert_eq!(p2.offloaded_count(), 1);
        assert!(!stats2.presolved);
        assert!(stats2.nodes >= 1);
    }

    #[test]
    fn presolve_still_validates_objective() {
        let mut g = LayoutGraph::new();
        // Host-only node: the pre-check would short-circuit, but a bad
        // capacity vector must still be rejected first.
        g.add_node(node(1, vec![true, false]));
        let obj = Objective::MaximizeBusUsage {
            capacities: vec![1.0],
        };
        assert!(matches!(
            g.resolve_ilp(&obj),
            Err(LayoutError::BadObjective(_))
        ));
    }

    #[test]
    fn duplicate_guid_rejected() {
        let a = OdfDocument::new("a", Guid(1));
        let b = OdfDocument::new("b", Guid(1));
        assert_eq!(
            LayoutGraph::from_odfs(&[a, b], &registry()),
            Err(LayoutError::DuplicateGuid(Guid(1)))
        );
    }

    #[test]
    fn ilp_offloads_everything_when_unconstrained() {
        let mut g = LayoutGraph::new();
        g.add_node(node(1, vec![true, true, false, false]));
        g.add_node(node(2, vec![true, false, true, false]));
        g.add_node(node(3, vec![true, false, false, true]));
        let p = g.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        assert_eq!(p.offloaded_count(), 3);
        assert_eq!(p.0, vec![DeviceId(1), DeviceId(2), DeviceId(3)]);
        g.check(&p).unwrap();
    }

    #[test]
    fn pull_forces_same_device() {
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true, true]));
        let b = g.add_node(node(2, vec![true, false, true]));
        g.add_edge(a, b, ConstraintKind::Pull);
        let p = g.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        assert_eq!(p.device_of(a), p.device_of(b));
        assert_eq!(p.device_of(a), DeviceId(2)); // the only shared device
        g.check(&p).unwrap();
    }

    #[test]
    fn pull_with_no_shared_device_lands_on_host() {
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true, false]));
        let b = g.add_node(node(2, vec![true, false, true]));
        g.add_edge(a, b, ConstraintKind::Pull);
        let p = g.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        assert_eq!(p.device_of(a), DeviceId::HOST);
        assert_eq!(p.device_of(b), DeviceId::HOST);
    }

    #[test]
    fn gang_links_offloadedness() {
        let mut g = LayoutGraph::new();
        // a can only be offloaded to dev1; b can only run on host.
        let a = g.add_node(node(1, vec![true, true]));
        let b = g.add_node(node(2, vec![true, false]));
        g.add_edge(a, b, ConstraintKind::Gang);
        let p = g.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        // Gang forces a back to the host.
        assert_eq!(p.device_of(a), DeviceId::HOST);
        g.check(&p).unwrap();
    }

    #[test]
    fn asym_gang_is_one_directional() {
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true]));
        let b = g.add_node(node(2, vec![true, false]));
        // a -> b: offloading a requires offloading b (impossible).
        g.add_edge(a, b, ConstraintKind::AsymGang);
        let p = g.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        assert_eq!(p.device_of(a), DeviceId::HOST);

        // Reverse direction: offloading b requires a — b stays on host
        // anyway, a is free.
        let mut g2 = LayoutGraph::new();
        let a2 = g2.add_node(node(1, vec![true, true]));
        let b2 = g2.add_node(node(2, vec![true, false]));
        g2.add_edge(b2, a2, ConstraintKind::AsymGang);
        let p2 = g2.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        assert_eq!(p2.device_of(a2), DeviceId(1));
    }

    #[test]
    fn bus_usage_objective_respects_capacity() {
        let mut g = LayoutGraph::new();
        for guid in 1..=3 {
            let mut n = node(guid, vec![true, true]);
            n.price = 2.0;
            g.add_node(n);
        }
        // Device 1 can carry only 4.0 of price: at most two offcodes.
        let obj = Objective::MaximizeBusUsage {
            capacities: vec![f64::INFINITY, 4.0],
        };
        let p = g.resolve_ilp(&obj).unwrap();
        assert_eq!(p.offloaded_count(), 2);
        assert!((g.bus_value(&p) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn channel_cost_repricing_steers_bus_usage_objective() {
        use crate::channel::{ChannelConfig, ChannelProvider, ZeroCopyDmaProvider};
        use crate::providers::PioProvider;

        let cfg = ChannelConfig::figure3(DeviceId(1));
        let dma = ZeroCopyDmaProvider.cost(&cfg);
        let pio = PioProvider::coherent_interconnect().cost(&cfg);

        // The richer price model: fixed charges fold into the rate, so
        // DMA prices *below* PIO for chatty small messages and far
        // above it for bulk.
        assert!(bus_price(&dma, 128) < bus_price(&pio, 128));
        assert!(bus_price(&dma, 65_536) > bus_price(&pio, 65_536));

        // Two Offcodes compete for one device: a chatty control-plane
        // node and a bulk streamer, both on DMA channels. With the flat
        // default prices the solver is indifferent; repriced from the
        // channel costs, capacity only admits one and the bulk node's
        // effective bandwidth must win the slot.
        let mut g = LayoutGraph::new();
        let chatty = g.add_node(node(1, vec![true, true]));
        let bulk = g.add_node(node(2, vec![true, true]));
        g.reprice_from_cost(chatty, &dma, 128);
        g.reprice_from_cost(bulk, &dma, 65_536);
        let obj = Objective::MaximizeBusUsage {
            capacities: vec![f64::INFINITY, bus_price(&dma, 65_536) + 1.0],
        };
        let p = g.resolve_ilp(&obj).unwrap();
        assert_eq!(p.device_of(bulk), DeviceId(1));
        assert_eq!(p.device_of(chatty), DeviceId::HOST);
        g.check(&p).unwrap();
    }

    #[test]
    fn bad_capacity_vector_rejected() {
        let mut g = LayoutGraph::new();
        g.add_node(node(1, vec![true, true]));
        let obj = Objective::MaximizeBusUsage {
            capacities: vec![1.0],
        };
        assert!(matches!(
            g.resolve_ilp(&obj),
            Err(LayoutError::BadObjective(_))
        ));
    }

    #[test]
    fn greedy_produces_feasible_placements() {
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true, false]));
        let b = g.add_node(node(2, vec![true, false, true]));
        let c = g.add_node(node(3, vec![true, true, true]));
        g.add_edge(a, b, ConstraintKind::Gang);
        g.add_edge(b, c, ConstraintKind::Pull);
        let p = g.resolve_greedy(&Objective::MaximizeOffloading);
        g.check(&p).unwrap();
    }

    #[test]
    fn greedy_is_suboptimal_on_adversarial_graph() {
        // The classic trap: a high-price node grabs the device another
        // pair needs for a Pull, forcing both of them to the host.
        // Devices: host + dev1 (the only device b/c can share).
        let mut g = LayoutGraph::new();
        let mut big = node(1, vec![true, true]);
        big.price = 10.0;
        let a = g.add_node(big); // greedy places first (highest price)
        let mut nb = node(2, vec![true, true]);
        nb.price = 6.0;
        let b = g.add_node(nb);
        let mut nc = node(3, vec![true, true]);
        nc.price = 6.0;
        let c = g.add_node(nc);
        g.add_edge(b, c, ConstraintKind::Pull);
        let _ = a;
        let obj = Objective::MaximizeBusUsage {
            capacities: vec![f64::INFINITY, 12.0],
        };
        let greedy = g.resolve_greedy(&obj);
        let exact = g.resolve_ilp(&obj).unwrap();
        g.check(&greedy).unwrap();
        g.check(&exact).unwrap();
        // ILP offloads the b+c pair (6+6 = 12 fits exactly; value 12).
        // Greedy grabbed the big node first (value 10) and the pair no
        // longer fits (6 > 12-10).
        assert!((g.bus_value(&exact) - 12.0).abs() < 1e-9);
        assert!(g.bus_value(&exact) > g.bus_value(&greedy));
    }

    #[test]
    fn ilp_never_worse_than_greedy_on_random_graphs() {
        use hydra_sim::rng::DetRng;
        let mut rng = DetRng::new(2024);
        for trial in 0..15 {
            let k = 2 + rng.index(3); // 2..4 devices + host
            let n = 3 + rng.index(5);
            let mut g = LayoutGraph::new();
            for i in 0..n {
                let mut compat = vec![true];
                for _ in 0..k {
                    compat.push(rng.chance(0.6));
                }
                let mut nd = node(i as u64 + 1, compat);
                nd.price = 1.0 + rng.index(5) as f64;
                g.add_node(nd);
            }
            for _ in 0..n {
                let a = NodeIdx(rng.index(n));
                let b = NodeIdx(rng.index(n));
                if a == b {
                    continue;
                }
                let c = match rng.index(4) {
                    0 => ConstraintKind::Link,
                    1 => ConstraintKind::Pull,
                    2 => ConstraintKind::Gang,
                    _ => ConstraintKind::AsymGang,
                };
                g.add_edge(a, b, c);
            }
            let capacities: Vec<f64> = (0..=k).map(|_| 3.0 + rng.index(8) as f64).collect();
            let obj = Objective::MaximizeBusUsage { capacities };
            let greedy = g.resolve_greedy(&obj);
            let exact = g.resolve_ilp(&obj).unwrap();
            g.check(&greedy)
                .unwrap_or_else(|e| panic!("trial {trial}: greedy infeasible: {e}"));
            g.check(&exact)
                .unwrap_or_else(|e| panic!("trial {trial}: ilp infeasible: {e}"));
            assert!(
                g.bus_value(&exact) >= g.bus_value(&greedy) - 1e-9,
                "trial {trial}: ilp {} < greedy {}",
                g.bus_value(&exact),
                g.bus_value(&greedy)
            );
        }
    }

    #[test]
    fn mask_device_routes_around_a_failure() {
        let mut g = LayoutGraph::new();
        g.add_node(node(1, vec![true, true, false]));
        g.add_node(node(2, vec![true, true, true]));
        g.mask_device(DeviceId(1)).unwrap();
        let p = g.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        assert_eq!(p.device_of(NodeIdx(0)), DeviceId::HOST);
        assert_eq!(p.device_of(NodeIdx(1)), DeviceId(2));
        assert!(g.mask_device(DeviceId::HOST).is_err());
    }

    #[test]
    fn pin_node_keeps_only_host_and_home() {
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true, true]));
        g.pin_node(a, DeviceId(2));
        assert_eq!(g.nodes()[0].compat, vec![true, false, true]);
        let p = g.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        assert_eq!(p.device_of(a), DeviceId(2));
    }

    #[test]
    fn empty_graph_resolves() {
        let g = LayoutGraph::new();
        let p = g.resolve_ilp(&Objective::MaximizeOffloading).unwrap();
        assert!(p.0.is_empty());
    }

    #[test]
    fn repair_after_mask_matches_scratch_and_searches_less() {
        // Two independent pairs: (a —Gang— b) offloadable to dev1, and
        // (c —Pull— d) offloadable to dev2. Fail dev1: only the a/b
        // component needs re-solving; c/d stay frozen on dev2.
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true, false]));
        let b = g.add_node(node(2, vec![true, true, false]));
        let c = g.add_node(node(3, vec![true, false, true]));
        let d = g.add_node(node(4, vec![true, false, true]));
        g.add_edge(a, b, ConstraintKind::Gang);
        g.add_edge(c, d, ConstraintKind::Pull);
        let obj = Objective::MaximizeOffloading;
        let prev = g.resolve_ilp(&obj).unwrap();
        assert_eq!(prev.offloaded_count(), 4);

        g.mask_device(DeviceId(1)).unwrap();
        let (scratch, scratch_stats) = g.resolve_ilp_with_stats(&obj).unwrap();
        let (repaired, stats) = g
            .repair(&prev, &GraphDelta::MaskDevice(DeviceId(1)), &obj)
            .unwrap();
        g.check(&repaired).unwrap();
        // Objective-equal to the from-scratch solve...
        assert_eq!(repaired.offloaded_count(), scratch.offloaded_count());
        // ...with the untouched pair still exactly where it was.
        assert_eq!(repaired.device_of(c), prev.device_of(c));
        assert_eq!(repaired.device_of(d), prev.device_of(d));
        assert_eq!(repaired.device_of(a), DeviceId::HOST);
        assert_eq!(repaired.device_of(b), DeviceId::HOST);
        // Only the failed pair re-solved, and strictly less search than
        // scratch (the a/b sub-component presolves to host-only).
        assert_eq!(stats.repaired_nodes, 2);
        assert!(
            stats.nodes < scratch_stats.nodes,
            "repair {} nodes vs scratch {}",
            stats.nodes,
            scratch_stats.nodes
        );
    }

    #[test]
    fn repair_after_join_exploits_the_new_device() {
        // One node that can use dev1 — but dev1 starts masked out.
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true]));
        let b = g.add_node(node(2, vec![true, false]));
        g.add_edge(a, b, ConstraintKind::Link);
        g.mask_device(DeviceId(1)).unwrap();
        let obj = Objective::MaximizeOffloading;
        let prev = g.resolve_ilp(&obj).unwrap();
        assert_eq!(prev.offloaded_count(), 0);

        // The device comes back: rebuild compat, repair from all-host.
        g.nodes[a.0].compat = vec![true, true];
        let (repaired, stats) = g
            .repair(&prev, &GraphDelta::DeviceJoin(DeviceId(1)), &obj)
            .unwrap();
        assert_eq!(repaired.device_of(a), DeviceId(1));
        assert_eq!(repaired.device_of(b), DeviceId::HOST);
        // Only the joinable node re-solved (b is Link-connected, not
        // bound, and stays frozen).
        assert_eq!(stats.repaired_nodes, 1);
    }

    #[test]
    fn repair_falls_back_when_frozen_freedom_matters() {
        // Bus-usage trap: after dev1 fails, the optimal masked layout
        // needs dev2's capacity for the evicted big node — but the
        // *clean* small node is frozen there, so the spliced repair
        // under-achieves. The LP bound exposes the gap and repair falls
        // back to the full ILP, so the answer still matches scratch.
        let mut g = LayoutGraph::new();
        let mut big = node(1, vec![true, true, true]);
        big.price = 10.0;
        let a = g.add_node(big);
        let mut small = node(2, vec![true, false, true]);
        small.price = 6.0;
        let b = g.add_node(small);
        let obj = Objective::MaximizeBusUsage {
            capacities: vec![f64::INFINITY, 10.0, 10.0],
        };
        let prev = g.resolve_ilp(&obj).unwrap();
        // Optimal pre-failure: big on dev1 (10), small on dev2 (6).
        assert_eq!(prev.device_of(a), DeviceId(1));
        assert_eq!(prev.device_of(b), DeviceId(2));

        g.mask_device(DeviceId(1)).unwrap();
        let scratch = g.resolve_ilp(&obj).unwrap();
        let (repaired, stats) = g
            .repair(&prev, &GraphDelta::MaskDevice(DeviceId(1)), &obj)
            .unwrap();
        g.check(&repaired).unwrap();
        // Scratch finds big on dev2 (10) beating small there (6); the
        // component-only candidate could not and the fallback ran.
        assert!(
            (g.bus_value(&repaired) - g.bus_value(&scratch)).abs() < 1e-9,
            "repair {} vs scratch {}",
            g.bus_value(&repaired),
            g.bus_value(&scratch)
        );
        assert!((g.bus_value(&repaired) - 10.0).abs() < 1e-9);
        assert_eq!(repaired.device_of(a), DeviceId(2));
        assert_eq!(repaired.device_of(b), DeviceId::HOST);
        assert!(stats.nodes > 0, "the fallback searched");
    }

    #[test]
    fn repair_rejects_mismatched_placement() {
        let mut g = LayoutGraph::new();
        g.add_node(node(1, vec![true, true]));
        let err = g.repair(
            &Placement(vec![DeviceId::HOST, DeviceId::HOST]),
            &GraphDelta::MaskDevice(DeviceId(1)),
            &Objective::MaximizeOffloading,
        );
        assert!(matches!(err, Err(LayoutError::Violation(_))));
    }

    #[test]
    fn check_detects_all_violation_kinds() {
        let mut g = LayoutGraph::new();
        let a = g.add_node(node(1, vec![true, true]));
        let b = g.add_node(node(2, vec![true, true]));
        g.add_edge(a, b, ConstraintKind::Pull);
        // Compatibility violation.
        let p = Placement(vec![DeviceId(5), DeviceId(0)]);
        assert!(g.check(&p).is_err());
        // Pull violation.
        let p = Placement(vec![DeviceId(1), DeviceId(0)]);
        assert!(matches!(g.check(&p), Err(LayoutError::Violation(s)) if s.contains("Pull")));
        // Wrong length.
        assert!(g.check(&Placement(vec![DeviceId(0)])).is_err());
        // Feasible.
        g.check(&Placement(vec![DeviceId(1), DeviceId(1)])).unwrap();
    }
}
