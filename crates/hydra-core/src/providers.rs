//! The cost-adaptive channel provider family: programmed I/O and
//! doorbell-batched DMA, next to the classic providers in
//! [`crate::channel`].
//!
//! Three ways to move a payload to a device, after *Rethinking
//! Programmed I/O* and *Taming Offload Overheads* (PAPERS.md):
//!
//! * **PIO** ([`PioProvider`]) — the host CPU writes every cacheline
//!   itself over the coherent interconnect. No descriptor ring, no
//!   doorbell, no DMA engine start: the fixed cost is a couple of
//!   hundred nanoseconds of issue work, so tiny messages win big — but
//!   the payload moves at CPU store bandwidth, so large messages lose.
//! * **DMA** ([`ZeroCopyDmaProvider`]) — descriptor prep plus
//!   a synchronous doorbell/engine-start launch per send. High fixed
//!   cost, highest wire rate: large messages win.
//! * **Doorbell-batched DMA** ([`DoorbellBatchProvider`]) — a DMA ring
//!   with async double-buffered launches: while the engine drains one
//!   buffer the host pre-arms the next, so on a busy pipe the launch
//!   overhead vanishes ([`ChannelCost::coalesce_launch`]). Streaming
//!   mid-sized traffic lands between the other two.
//!
//! [`install_cost_adaptive`] registers the full family on an executive
//! so [`ChannelExecutive::create_channel_adaptive`] can auction every
//! message-size bucket among them online.

use hydra_sim::time::SimDuration;

use crate::channel::{
    Buffering, ChannelConfig, ChannelCost, ChannelExecutive, ChannelProvider, KernelCopyProvider,
    Transport, ZeroCopyDmaProvider,
};

/// Cacheline size of the modeled coherent interconnect, in bytes.
pub const CACHELINE_BYTES: u64 = 64;

/// A programmed-I/O provider: per-word CPU-driven transfers over the
/// coherent interconnect.
///
/// The cost model is per-cacheline: each 64-byte line costs
/// [`PioProvider::per_cacheline`] of CPU store + interconnect time,
/// which folds into the advertised wire rate. There is no doorbell and
/// no DMA setup — [`ChannelCost::launch_overhead`] is zero and the
/// endpoint setup is just mapping the device window.
#[derive(Debug, Clone)]
pub struct PioProvider {
    /// Fixed CPU issue cost per message (address computation, fences).
    pub issue: SimDuration,
    /// CPU store + coherent-interconnect time per 64-byte cacheline.
    pub per_cacheline: SimDuration,
    /// One-time cost of mapping the device window (no ring to build).
    pub window_setup: SimDuration,
}

impl PioProvider {
    /// The default coherent-interconnect model: 250 ns of issue work
    /// per message, 192 ns per cacheline (≈ 333 MB/s of CPU-driven
    /// store bandwidth), 5 µs to map the window.
    pub fn coherent_interconnect() -> Self {
        PioProvider {
            issue: SimDuration::from_nanos(250),
            per_cacheline: SimDuration::from_nanos(192),
            window_setup: SimDuration::from_micros(5),
        }
    }
}

impl Default for PioProvider {
    fn default() -> Self {
        Self::coherent_interconnect()
    }
}

impl ChannelProvider for PioProvider {
    fn name(&self) -> &'static str {
        "pio"
    }

    fn supports(&self, config: &ChannelConfig) -> bool {
        // The CPU writes into the mapped device window directly; the
        // host is not a PIO target of itself. Both buffering modes work
        // (the "copy" is the transfer itself).
        !config.target.is_host()
    }

    fn cost(&self, _config: &ChannelConfig) -> ChannelCost {
        let per_ns = self.per_cacheline.as_nanos().max(1);
        ChannelCost {
            setup: self.window_setup,
            per_message: self.issue,
            launch_overhead: SimDuration::ZERO, // no doorbell, no engine
            coalesce_launch: false,
            bytes_per_sec: CACHELINE_BYTES * 1_000_000_000 / per_ns,
        }
    }
}

/// A doorbell-batched zero-copy DMA provider: the async
/// double-buffered amortization mode.
///
/// Same ring structure as [`ZeroCopyDmaProvider`], but the driver
/// defers and coalesces doorbells: while the engine drains one buffer
/// the next descriptors are pre-armed, so a send landing on a busy
/// pipe pays no launch at all ([`ChannelCost::coalesce_launch`]). The
/// price is a slightly lower sustained wire rate (the engine polls the
/// pre-armed buffer boundary) and a bigger setup (double buffers).
#[derive(Debug, Clone)]
pub struct DoorbellBatchProvider;

impl ChannelProvider for DoorbellBatchProvider {
    fn name(&self) -> &'static str {
        "doorbell-batch"
    }

    fn supports(&self, config: &ChannelConfig) -> bool {
        !config.target.is_host() && config.buffering == Buffering::ZeroCopy
    }

    fn cost(&self, config: &ChannelConfig) -> ChannelCost {
        ChannelCost {
            setup: SimDuration::from_micros(140), // ring + double buffers
            per_message: SimDuration::from_nanos(400), // descriptor prep
            launch_overhead: SimDuration::from_nanos(2_600),
            coalesce_launch: true,
            bytes_per_sec: match config.transport {
                Transport::Unicast => 480_000_000,
                Transport::Multicast => 384_000_000,
            },
        }
    }
}

/// Registers the full cost-adaptive provider family on `exec`: the two
/// classic providers plus [`PioProvider`] and [`DoorbellBatchProvider`].
///
/// Registration order is the deterministic tie-break order for every
/// auction, so it is fixed: zero-copy-dma, kernel-copy, pio,
/// doorbell-batch (the classic pair first keeps every existing
/// [`ChannelExecutive::create_channel`] decision stable).
pub fn install_cost_adaptive(exec: &mut ChannelExecutive) {
    exec.register_provider(Box::new(ZeroCopyDmaProvider));
    exec.register_provider(Box::new(KernelCopyProvider));
    exec.register_provider(Box::new(PioProvider::coherent_interconnect()));
    exec.register_provider(Box::new(DoorbellBatchProvider));
}

/// Registers only the new providers on an executive that already has
/// the defaults (e.g. a [`crate::runtime::Runtime`]'s executive).
pub fn install_extras(exec: &mut ChannelExecutive) {
    exec.register_provider(Box::new(PioProvider::coherent_interconnect()));
    exec.register_provider(Box::new(DoorbellBatchProvider));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{AdaptivePolicy, ChannelError};
    use crate::device::DeviceId;
    use bytes::Bytes;
    use hydra_sim::time::SimTime;

    fn adaptive_exec() -> ChannelExecutive {
        let mut e = ChannelExecutive::new();
        install_cost_adaptive(&mut e);
        e
    }

    #[test]
    fn pio_has_no_launch_and_wins_small_messages() {
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let pio = PioProvider::coherent_interconnect().cost(&cfg);
        let dma = ZeroCopyDmaProvider.cost(&cfg);
        assert_eq!(pio.launch_overhead, SimDuration::ZERO);
        assert!(pio.latency(64) < dma.latency(64), "PIO wins small");
        assert!(pio.latency(65_536) > dma.latency(65_536), "DMA wins large");
    }

    #[test]
    fn doorbell_batch_hides_launch_on_busy_pipe() {
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let db = DoorbellBatchProvider.cost(&cfg);
        assert!(db.coalesce_launch);
        assert_eq!(
            db.latency(1024),
            db.streaming_latency(1024) + db.launch_overhead
        );
        // Streaming mid-sized messages: cheaper than both PIO and DMA.
        let pio = PioProvider::coherent_interconnect().cost(&cfg);
        let dma = ZeroCopyDmaProvider.cost(&cfg);
        assert!(db.streaming_latency(4096) < pio.streaming_latency(4096));
        assert!(db.streaming_latency(4096) < dma.streaming_latency(4096));
    }

    #[test]
    fn forced_creation_pins_the_provider() {
        let mut e = adaptive_exec();
        let cfg = ChannelConfig::figure3(DeviceId(1));
        for name in ["pio", "doorbell-batch", "zero-copy-dma", "kernel-copy"] {
            let id = e.create_channel_forced(cfg, name).unwrap();
            assert_eq!(e.get(id).unwrap().provider_name(), name);
            assert!(!e.get(id).unwrap().is_adaptive());
        }
        assert_eq!(
            e.create_channel_forced(cfg, "carrier-pigeon"),
            Err(ChannelError::NoProvider)
        );
        // A provider that exists but cannot realize the config is no
        // provider either.
        assert_eq!(
            e.create_channel_forced(ChannelConfig::oob(DeviceId(1)), "doorbell-batch"),
            Err(ChannelError::NoProvider)
        );
    }

    #[test]
    fn adaptive_channel_switches_to_doorbell_batch_under_streaming_load() {
        let mut e = adaptive_exec();
        let id = e
            .create_channel_adaptive(
                ChannelConfig::figure3(DeviceId(1)),
                AdaptivePolicy::default(),
            )
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        assert!(ch.is_adaptive());
        assert_eq!(ch.candidate_providers().len(), 4);
        // 1 KiB burst at t=0: the cold bucket starts on PIO (cheapest
        // unloaded), then the saturated pipe re-ranks by streaming
        // latency and the double-buffered ring takes over.
        for i in 0..32u8 {
            ch.send(SimTime::ZERO, Bytes::from(vec![i; 1024])).unwrap();
        }
        assert_eq!(ch.provider_name(), "doorbell-batch");
        assert!(ch.provider_switches() >= 1);
    }

    #[test]
    fn default_registration_keeps_classic_auction_results() {
        // Registering the new family must not re-route channels created
        // through the classic auction: it still ranks by unloaded 1 KiB
        // latency, which PIO wins — so the classic API is only stable
        // when the extras are not registered. This pins that the
        // *default* executive (without extras) behaves as before.
        let mut e = ChannelExecutive::with_default_providers();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        assert_eq!(e.get(id).unwrap().provider_name(), "zero-copy-dma");
    }
}
