//! Hierarchical resource management.
//!
//! Paper §4: "The Resource Management unit keeps track of all active
//! Offcodes and related resources. Resources are managed hierarchically to
//! allow for robust clean-up of child resources in the case of a failing
//! parent object." [`ResourceManager`] is that tree: every resource has a
//! parent; releasing a node releases its whole subtree, in child-first
//! order, and reports what was released so owners can reclaim device
//! memory, rings, and channel endpoints.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a tracked resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(u64);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// What kind of thing a resource tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A deployed Offcode instance.
    Offcode,
    /// A communication channel endpoint.
    Channel,
    /// Pinned or device memory.
    Memory,
    /// Anything else (timers, handles, …).
    Other,
}

/// A record of one released resource, handed to the caller on cleanup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Released {
    /// The released resource.
    pub id: ResourceId,
    /// Its kind.
    pub kind: ResourceKind,
    /// Its diagnostic label.
    pub label: String,
}

#[derive(Debug, Clone)]
struct Entry {
    kind: ResourceKind,
    label: String,
    parent: Option<ResourceId>,
    children: Vec<ResourceId>,
}

/// The hierarchical resource tree.
///
/// # Examples
///
/// ```
/// use hydra_core::resource::{ResourceKind, ResourceManager};
///
/// let mut rm = ResourceManager::new();
/// let app = rm.register_root(ResourceKind::Other, "app");
/// let ocode = rm.register(ResourceKind::Offcode, "streamer", app).unwrap();
/// let _chan = rm.register(ResourceKind::Channel, "chan0", ocode).unwrap();
/// // Tearing down the app releases everything beneath it, children first.
/// let released = rm.release(app).unwrap();
/// assert_eq!(released.len(), 3);
/// assert_eq!(released[0].label, "chan0");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceManager {
    entries: HashMap<ResourceId, Entry>,
    next: u64,
}

/// Error: the referenced resource does not exist (already released?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSuchResource(pub ResourceId);

impl fmt::Display for NoSuchResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no such resource {}", self.0)
    }
}

impl std::error::Error for NoSuchResource {}

impl ResourceManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live resources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a resource with no parent (an application or the runtime
    /// itself).
    pub fn register_root(&mut self, kind: ResourceKind, label: &str) -> ResourceId {
        let id = ResourceId(self.next);
        self.next += 1;
        self.entries.insert(
            id,
            Entry {
                kind,
                label: label.to_owned(),
                parent: None,
                children: Vec::new(),
            },
        );
        id
    }

    /// Registers a resource under `parent`.
    ///
    /// # Errors
    ///
    /// Fails if the parent does not exist.
    pub fn register(
        &mut self,
        kind: ResourceKind,
        label: &str,
        parent: ResourceId,
    ) -> Result<ResourceId, NoSuchResource> {
        if !self.entries.contains_key(&parent) {
            return Err(NoSuchResource(parent));
        }
        let id = ResourceId(self.next);
        self.next += 1;
        self.entries.insert(
            id,
            Entry {
                kind,
                label: label.to_owned(),
                parent: Some(parent),
                children: Vec::new(),
            },
        );
        self.entries
            .get_mut(&parent)
            .expect("parent checked above")
            .children
            .push(id);
        Ok(id)
    }

    /// Whether a resource is still live.
    pub fn contains(&self, id: ResourceId) -> bool {
        self.entries.contains_key(&id)
    }

    /// The label of a live resource.
    pub fn label(&self, id: ResourceId) -> Option<&str> {
        self.entries.get(&id).map(|e| e.label.as_str())
    }

    /// The live children of a resource, in registration order.
    pub fn children(&self, id: ResourceId) -> Vec<ResourceId> {
        self.entries
            .get(&id)
            .map(|e| e.children.clone())
            .unwrap_or_default()
    }

    /// Releases a resource and its entire subtree.
    ///
    /// Children are released before parents (deepest first), mirroring
    /// destructor order, and the full list is returned so owners can undo
    /// side effects (free device memory, tear down rings).
    ///
    /// # Errors
    ///
    /// Fails if the resource does not exist.
    pub fn release(&mut self, id: ResourceId) -> Result<Vec<Released>, NoSuchResource> {
        if !self.entries.contains_key(&id) {
            return Err(NoSuchResource(id));
        }
        // Detach from parent.
        if let Some(parent) = self.entries[&id].parent {
            if let Some(p) = self.entries.get_mut(&parent) {
                p.children.retain(|&c| c != id);
            }
        }
        let mut released = Vec::new();
        self.release_rec(id, &mut released);
        Ok(released)
    }

    fn release_rec(&mut self, id: ResourceId, out: &mut Vec<Released>) {
        let entry = self.entries.remove(&id).expect("caller verified presence");
        for child in entry.children {
            self.release_rec(child, out);
        }
        out.push(Released {
            id,
            kind: entry.kind,
            label: entry.label,
        });
    }

    /// All live resources of a kind.
    pub fn by_kind(&self, kind: ResourceKind) -> Vec<ResourceId> {
        let mut v: Vec<ResourceId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.kind == kind)
            .map(|(&id, _)| id)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_is_child_first() {
        let mut rm = ResourceManager::new();
        let app = rm.register_root(ResourceKind::Other, "app");
        let oc1 = rm.register(ResourceKind::Offcode, "oc1", app).unwrap();
        let oc2 = rm.register(ResourceKind::Offcode, "oc2", app).unwrap();
        let ch = rm.register(ResourceKind::Channel, "ch", oc1).unwrap();
        let mem = rm.register(ResourceKind::Memory, "mem", ch).unwrap();
        let _ = (oc2, mem);
        let order: Vec<String> = rm
            .release(app)
            .unwrap()
            .into_iter()
            .map(|r| r.label)
            .collect();
        assert_eq!(order, vec!["mem", "ch", "oc1", "oc2", "app"]);
        assert!(rm.is_empty());
    }

    #[test]
    fn partial_release_detaches_from_parent() {
        let mut rm = ResourceManager::new();
        let app = rm.register_root(ResourceKind::Other, "app");
        let oc = rm.register(ResourceKind::Offcode, "oc", app).unwrap();
        rm.release(oc).unwrap();
        assert!(rm.contains(app));
        assert!(!rm.contains(oc));
        assert!(rm.children(app).is_empty());
        // Releasing the app afterwards only frees the app.
        assert_eq!(rm.release(app).unwrap().len(), 1);
    }

    #[test]
    fn double_release_fails() {
        let mut rm = ResourceManager::new();
        let app = rm.register_root(ResourceKind::Other, "app");
        rm.release(app).unwrap();
        assert_eq!(rm.release(app), Err(NoSuchResource(app)));
    }

    #[test]
    fn register_under_missing_parent_fails() {
        let mut rm = ResourceManager::new();
        let app = rm.register_root(ResourceKind::Other, "app");
        rm.release(app).unwrap();
        assert!(rm.register(ResourceKind::Memory, "m", app).is_err());
    }

    #[test]
    fn by_kind_filters() {
        let mut rm = ResourceManager::new();
        let app = rm.register_root(ResourceKind::Other, "app");
        let oc = rm.register(ResourceKind::Offcode, "oc", app).unwrap();
        rm.register(ResourceKind::Channel, "c1", oc).unwrap();
        rm.register(ResourceKind::Channel, "c2", oc).unwrap();
        assert_eq!(rm.by_kind(ResourceKind::Channel).len(), 2);
        assert_eq!(rm.by_kind(ResourceKind::Offcode), vec![oc]);
        assert_eq!(rm.by_kind(ResourceKind::Memory).len(), 0);
    }

    #[test]
    fn labels_accessible() {
        let mut rm = ResourceManager::new();
        let app = rm.register_root(ResourceKind::Other, "my-app");
        assert_eq!(rm.label(app), Some("my-app"));
        rm.release(app).unwrap();
        assert_eq!(rm.label(app), None);
    }
}
