//! The runtime's device registry.
//!
//! Deployment (paper §3.4) "determines the mapping between the Offcode
//! device requirements and the physical devices that are installed in the
//! specific host". [`DeviceDescriptor`] is what the runtime knows about
//! one installed device — class, identity, processor, Offcode memory, and
//! the firmware exports available for linking. [`DeviceRegistry`] matches
//! ODF device-class specs against it.

use hydra_hw::cpu::CpuSpec;
use hydra_link::linker::ExportTable;
use hydra_odf::odf::{class_ids, DeviceClassSpec};

/// Identifier of an installed device. Id 0 is always the host CPU.
///
/// Dense `u32` ids: device tables throughout the runtime are plain
/// `Vec`s indexed by [`DeviceId::idx`], so the send/recv hot path does
/// array indexing instead of hash lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The host CPU pseudo-device.
    pub const HOST: DeviceId = DeviceId(0);

    /// True for the host pseudo-device.
    pub fn is_host(&self) -> bool {
        self.0 == 0
    }

    /// The id as a `Vec` index into device-side tables.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_host() {
            f.write_str("host")
        } else {
            write!(f, "dev{}", self.0)
        }
    }
}

/// What the runtime knows about one installed device.
#[derive(Debug, Clone)]
pub struct DeviceDescriptor {
    /// Device class id (see [`class_ids`]).
    pub class: u32,
    /// Diagnostic name ("3Com 3C985B", "host").
    pub name: String,
    /// Bus attachment ("pci", "agp"); `None` for the host.
    pub bus: Option<String>,
    /// MAC layer for network devices.
    pub mac: Option<String>,
    /// Vendor string.
    pub vendor: Option<String>,
    /// The device's processor.
    pub cpu: CpuSpec,
    /// Bytes of memory available for Offcodes.
    pub offcode_memory: u64,
    /// Firmware exports Offcodes can link against.
    pub exports: ExportTable,
}

impl DeviceDescriptor {
    /// The host CPU as a deployment target.
    pub fn host() -> Self {
        let mut exports = ExportTable::new();
        exports.insert("hydra_heap_alloc", 0xFFFF_0000);
        exports.insert("hydra_heap_free", 0xFFFF_0010);
        exports.insert("hydra_runtime_get_offcode", 0xFFFF_0020);
        exports.insert("hydra_channel_write", 0xFFFF_0030);
        exports.insert("hydra_channel_read", 0xFFFF_0040);
        DeviceDescriptor {
            class: class_ids::HOST_CPU,
            name: "host".into(),
            bus: None,
            mac: None,
            vendor: None,
            cpu: CpuSpec::pentium4(),
            offcode_memory: 256 * 1024 * 1024,
            exports,
        }
    }

    /// A programmable NIC modelled on the testbed's 3Com 3C985B.
    pub fn programmable_nic() -> Self {
        let mut d = DeviceDescriptor::host();
        d.class = class_ids::NETWORK;
        d.name = "3Com 3C985B programmable NIC".into();
        d.bus = Some("pci".into());
        d.mac = Some("ethernet".into());
        d.vendor = Some("3COM".into());
        d.cpu = CpuSpec::xscale();
        d.offcode_memory = 2 * 1024 * 1024;
        d
    }

    /// The emulated "smart disk" (a programmable controller exporting a
    /// block device; the paper emulated it with a second programmable NIC).
    pub fn smart_disk() -> Self {
        let mut d = DeviceDescriptor::host();
        d.class = class_ids::STORAGE;
        d.name = "smart disk controller".into();
        d.bus = Some("pci".into());
        d.mac = None;
        d.vendor = Some("3COM".into());
        d.cpu = CpuSpec::xscale();
        d.offcode_memory = 2 * 1024 * 1024;
        d
    }

    /// A GPU with an MPEG decode engine and a framebuffer.
    pub fn gpu() -> Self {
        let mut d = DeviceDescriptor::host();
        d.class = class_ids::GPU;
        d.name = "GPU".into();
        d.bus = Some("agp".into());
        d.mac = None;
        d.vendor = None;
        d.cpu = CpuSpec::gpu_core();
        d.offcode_memory = 16 * 1024 * 1024;
        d
    }

    /// Whether this device satisfies an ODF device-class spec: the class
    /// id must match, and each *specified* optional attribute must match
    /// (unspecified attributes are wildcards, per the ODF's "(optional)"
    /// annotations).
    pub fn matches(&self, spec: &DeviceClassSpec) -> bool {
        if self.class != spec.id {
            return false;
        }
        let attr_ok = |want: &Option<String>, have: &Option<String>| match want {
            None => true,
            Some(w) => have.as_deref() == Some(w.as_str()),
        };
        attr_ok(&spec.bus, &self.bus)
            && attr_ok(&spec.mac, &self.mac)
            && attr_ok(&spec.vendor, &self.vendor)
    }
}

/// The set of devices installed in one host, indexed by [`DeviceId`].
///
/// Index 0 is always the host CPU — the fallback target the runtime uses
/// when no device matches (paper §3.4).
///
/// # Examples
///
/// ```
/// use hydra_core::device::{DeviceDescriptor, DeviceRegistry};
///
/// let mut reg = DeviceRegistry::new();
/// let nic = reg.install(DeviceDescriptor::programmable_nic());
/// assert!(!nic.is_host());
/// assert_eq!(reg.len(), 2); // host + NIC
/// ```
#[derive(Debug, Clone)]
pub struct DeviceRegistry {
    devices: Vec<DeviceDescriptor>,
}

impl Default for DeviceRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceRegistry {
    /// Creates a registry containing only the host CPU.
    pub fn new() -> Self {
        DeviceRegistry {
            devices: vec![DeviceDescriptor::host()],
        }
    }

    /// Installs a device, returning its id.
    pub fn install(&mut self, device: DeviceDescriptor) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(device);
        id
    }

    /// Number of deployment targets (including the host).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false: the host is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The descriptor for a device.
    ///
    /// # Panics
    ///
    /// Panics if the id is not installed.
    pub fn get(&self, id: DeviceId) -> &DeviceDescriptor {
        &self.devices[id.idx()]
    }

    /// Iterates over `(id, descriptor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &DeviceDescriptor)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i as u32), d))
    }

    /// Devices matching any of the given class specs, in registry order.
    /// The host is only included if a spec explicitly names the host
    /// class.
    pub fn matching(&self, specs: &[DeviceClassSpec]) -> Vec<DeviceId> {
        self.iter()
            .filter(|(_, d)| specs.iter().any(|s| d.matches(s)))
            .map(|(id, _)| id)
            .collect()
    }

    /// The compatibility vector for an Offcode: `true` per device that
    /// matches one of the ODF's target classes. Index 0 (the host) is
    /// always `true` — the runtime can always fall back to the host CPU.
    pub fn compatibility(&self, specs: &[DeviceClassSpec]) -> Vec<bool> {
        let mut v: Vec<bool> = self
            .devices
            .iter()
            .map(|d| specs.iter().any(|s| d.matches(s)))
            .collect();
        v[0] = true;
        v
    }

    /// The registry as `hydra-verify`'s structural [`hydra_verify::DeviceTable`]
    /// (same order, same matching semantics — pinned by a unit test).
    pub fn verify_table(&self) -> hydra_verify::DeviceTable {
        hydra_verify::DeviceTable {
            devices: self
                .devices
                .iter()
                .map(|d| hydra_verify::DeviceInfo {
                    class: d.class,
                    name: d.name.clone(),
                    bus: d.bus.clone(),
                    mac: d.mac.clone(),
                    vendor: d.vendor.clone(),
                    offcode_memory: d.offcode_memory,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_odf::odf::DeviceClassSpec;

    fn nic_spec() -> DeviceClassSpec {
        DeviceClassSpec {
            id: class_ids::NETWORK,
            name: "Network Device".into(),
            bus: Some("pci".into()),
            mac: Some("ethernet".into()),
            vendor: Some("3COM".into()),
        }
    }

    #[test]
    fn host_is_device_zero() {
        let reg = DeviceRegistry::new();
        assert_eq!(reg.len(), 1);
        assert!(DeviceId::HOST.is_host());
        assert_eq!(reg.get(DeviceId::HOST).class, class_ids::HOST_CPU);
    }

    #[test]
    fn matching_honors_all_specified_attrs() {
        let nic = DeviceDescriptor::programmable_nic();
        assert!(nic.matches(&nic_spec()));
        let mut wrong_vendor = nic_spec();
        wrong_vendor.vendor = Some("Intel".into());
        assert!(!nic.matches(&wrong_vendor));
    }

    #[test]
    fn unspecified_attrs_are_wildcards() {
        let nic = DeviceDescriptor::programmable_nic();
        let loose = DeviceClassSpec {
            id: class_ids::NETWORK,
            name: "any nic".into(),
            bus: None,
            mac: None,
            vendor: None,
        };
        assert!(nic.matches(&loose));
    }

    #[test]
    fn class_mismatch_fails() {
        let gpu = DeviceDescriptor::gpu();
        assert!(!gpu.matches(&nic_spec()));
    }

    #[test]
    fn registry_matching_and_compatibility() {
        let mut reg = DeviceRegistry::new();
        let nic = reg.install(DeviceDescriptor::programmable_nic());
        let disk = reg.install(DeviceDescriptor::smart_disk());
        let gpu = reg.install(DeviceDescriptor::gpu());
        assert_eq!(reg.matching(&[nic_spec()]), vec![nic]);

        let compat = reg.compatibility(&[nic_spec()]);
        assert_eq!(compat, vec![true, true, false, false]);
        let _ = (disk, gpu);
    }

    #[test]
    fn host_always_compatible() {
        let reg = DeviceRegistry::new();
        let compat = reg.compatibility(&[]);
        assert_eq!(compat, vec![true]);
    }

    #[test]
    fn device_display() {
        assert_eq!(DeviceId::HOST.to_string(), "host");
        assert_eq!(DeviceId(3).to_string(), "dev3");
    }

    #[test]
    fn verify_table_matching_agrees_with_registry() {
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic());
        reg.install(DeviceDescriptor::smart_disk());
        reg.install(DeviceDescriptor::gpu());
        let table = reg.verify_table();
        let mut specs = vec![
            nic_spec(),
            DeviceClassSpec {
                id: class_ids::GPU,
                name: "gpu".into(),
                bus: None,
                mac: None,
                vendor: None,
            },
        ];
        // Registry and verifier table must agree spec-by-spec...
        for spec in &specs {
            for (i, d) in reg.iter() {
                assert_eq!(
                    d.matches(spec),
                    table.devices[i.idx()].matches(spec),
                    "divergent matching for {spec:?} on device {i:?}"
                );
            }
        }
        // ...and on the combined compatibility vector, including a spec
        // that matches nothing.
        specs[0].vendor = Some("Intel".into());
        assert_eq!(reg.compatibility(&specs), table.compatibility(&specs));
    }
}
