//! Channels: the communication pathways between Offcodes (paper §3.2,
//! §4.1).
//!
//! A channel is created in two steps — configure + create the local
//! endpoint, then attach the target Offcode, which implicitly constructs
//! the far endpoint. Channels are typed by transport (unicast/multicast),
//! reliability, synchronization and buffering policy. Device-specific
//! **channel providers** actually realize a channel and advertise a cost
//! metric ("the 'price' for communicating with the device through a
//! specific channel, in terms of latency and throughput"); the **Channel
//! Executive** picks the cheapest capable provider.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use bytes::Bytes;
use hydra_obs::{Histogram, Recorder, TraceCtx};
use hydra_sim::time::{SimDuration, SimTime};

use crate::device::DeviceId;

/// Channel transport type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Exactly two endpoints.
    Unicast,
    /// One sender, many receivers.
    Multicast,
}

/// Delivery guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reliability {
    /// Sends fail (rather than drop) when buffers are exhausted.
    Reliable,
    /// Sends drop silently when buffers are exhausted.
    Unreliable,
}

/// Synchronization guarantee for handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncPolicy {
    /// Handlers see messages in send order, one at a time.
    Sequential,
    /// Handlers may run concurrently (no ordering guarantee).
    Concurrent,
}

/// Buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Buffering {
    /// Direct read/write: the device DMAs straight from/to pinned
    /// application memory; the host CPU never touches the bytes.
    ZeroCopy,
    /// Staged through an intermediate kernel buffer (one CPU copy each
    /// way).
    Copied,
}

/// Bounded deterministic retry policy for sends that hit a full ring.
///
/// When a send finds every (open) endpoint queue at capacity, a channel
/// with retry enabled re-attempts at `backoff`, `2·backoff`, `4·backoff`…
/// after `now` — classic exponential backoff, but in *sim time*, so it is
/// byte-reproducible. An attempt succeeds once the descriptor-ring model
/// says slots have freed (payloads already consumed by the device side,
/// i.e. messages whose delivery instant has passed). The policy gives up
/// after `max_attempts` attempts or once the next attempt would land past
/// `now + timeout`, whichever comes first — the send then fails exactly
/// like it would without retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Retry attempts after the initial try; `0` disables retry.
    pub max_attempts: u32,
    /// Wait before the first retry; doubles on each further attempt.
    pub backoff: SimDuration,
    /// Per-send deadline: no attempt is made after `now + timeout`.
    pub timeout: SimDuration,
}

impl RetryPolicy {
    /// No retry: a full ring fails/drops immediately (the historical
    /// behavior, and the default).
    pub const fn none() -> Self {
        RetryPolicy {
            max_attempts: 0,
            backoff: SimDuration::ZERO,
            timeout: SimDuration::ZERO,
        }
    }

    /// A retry policy with the given bounds.
    pub const fn new(max_attempts: u32, backoff: SimDuration, timeout: SimDuration) -> Self {
        RetryPolicy {
            max_attempts,
            backoff,
            timeout,
        }
    }

    /// Whether the policy retries at all.
    pub const fn enabled(&self) -> bool {
        self.max_attempts > 0
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Full channel configuration (the `ChannelConfig` of the paper's
/// Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelConfig {
    /// Transport type.
    pub transport: Transport,
    /// Delivery guarantee.
    pub reliability: Reliability,
    /// Synchronization guarantee.
    pub sync: SyncPolicy,
    /// Buffer management.
    pub buffering: Buffering,
    /// Ring capacity in messages.
    pub capacity: usize,
    /// The device hosting the far endpoint.
    pub target: DeviceId,
    /// Retry/backoff policy applied when the ring is full.
    pub retry: RetryPolicy,
}

impl ChannelConfig {
    /// The configuration from the paper's Figure 3: reliable unicast,
    /// sequential synchronization, zero-copy read/write.
    pub fn figure3(target: DeviceId) -> Self {
        ChannelConfig {
            transport: Transport::Unicast,
            reliability: Reliability::Reliable,
            sync: SyncPolicy::Sequential,
            buffering: Buffering::ZeroCopy,
            capacity: 64,
            target,
            retry: RetryPolicy::none(),
        }
    }

    /// The default OOB-channel configuration: unreliable, copied, small.
    pub fn oob(target: DeviceId) -> Self {
        ChannelConfig {
            transport: Transport::Unicast,
            reliability: Reliability::Reliable,
            sync: SyncPolicy::Sequential,
            buffering: Buffering::Copied,
            capacity: 16,
            target,
            retry: RetryPolicy::none(),
        }
    }

    /// Builder-style retry policy override.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// A provider's cost metric for a channel.
///
/// The fixed cost of a message splits into two explicit parts, after
/// *Taming Offload Overheads*: `per_message` is the host-side work that
/// can never be avoided (descriptor/word preparation), while
/// `launch_overhead` is the offload-launch charge — the MMIO doorbell
/// write plus the device's engine-start cost. PIO-style providers drive
/// every word from the CPU over the coherent interconnect and have no
/// launch at all; DMA-style providers pay it per doorbell; async
/// double-buffered providers ([`ChannelCost::coalesce_launch`]) hide it
/// behind an in-flight transfer whenever the pipe is already busy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelCost {
    /// One-time endpoint construction cost.
    pub setup: SimDuration,
    /// Fixed host-side cost per message (descriptor or word setup).
    pub per_message: SimDuration,
    /// Offload-launch charge per doorbell (MMIO write + engine start);
    /// zero for CPU-driven providers that never ring one.
    pub launch_overhead: SimDuration,
    /// Async double-buffered amortization: when the pipe is already
    /// busy, the launch overlaps the in-flight transfer and is not
    /// charged again (the next doorbell is pre-armed while the engine
    /// drains the previous buffer).
    pub coalesce_launch: bool,
    /// Sustained payload throughput in bytes per second.
    pub bytes_per_sec: u64,
}

impl ChannelCost {
    /// A cost metric with the launch charge folded into `per_message`
    /// (the historical shape: every send pays the full fixed cost).
    pub const fn basic(setup: SimDuration, per_message: SimDuration, bytes_per_sec: u64) -> Self {
        ChannelCost {
            setup,
            per_message,
            launch_overhead: SimDuration::ZERO,
            coalesce_launch: false,
            bytes_per_sec,
        }
    }

    /// Unloaded end-to-end latency for one message of `bytes` (idle
    /// pipe: the launch overhead is always paid).
    pub fn latency(&self, bytes: usize) -> SimDuration {
        self.per_message + self.launch_overhead + self.wire_time(bytes)
    }

    /// Marginal latency for one message of `bytes` on a saturated pipe:
    /// a coalescing provider hides the launch behind the in-flight
    /// transfer, everyone else still pays it.
    pub fn streaming_latency(&self, bytes: usize) -> SimDuration {
        self.per_message + self.launch_if(false) + self.wire_time(bytes)
    }

    /// Latency of one message of `bytes` given whether the pipe was
    /// idle when the send was admitted.
    pub fn send_latency(&self, bytes: usize, pipe_idle: bool) -> SimDuration {
        self.per_message + self.launch_if(pipe_idle) + self.wire_time(bytes)
    }

    /// The full fixed charge paid at a doorbell rung on an idle/busy
    /// pipe — what the [`CostProfile`] accumulates as launch overhead.
    pub fn launch_charge(&self, pipe_idle: bool) -> SimDuration {
        self.per_message + self.launch_if(pipe_idle)
    }

    /// The launch overhead actually charged for the given pipe state.
    fn launch_if(&self, pipe_idle: bool) -> SimDuration {
        if self.coalesce_launch && !pipe_idle {
            SimDuration::ZERO
        } else {
            self.launch_overhead
        }
    }

    /// Pure payload transfer time for `bytes`, excluding the fixed
    /// per-message (doorbell + descriptor handling) charge.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        let wire = (bytes as u128 * 1_000_000_000).div_ceil(u128::from(self.bytes_per_sec));
        SimDuration::from_nanos(wire as u64)
    }

    /// Effective delivered throughput for back-to-back messages of
    /// `bytes` each, in bytes per second — the fixed charges folded
    /// into the wire rate. This is the size-dependent "bus price" the
    /// ILP layout objective consumes.
    pub fn effective_throughput(&self, bytes: usize) -> u64 {
        let ns = self.streaming_latency(bytes).as_nanos().max(1);
        #[allow(clippy::cast_possible_truncation)]
        {
            ((bytes as u128 * 1_000_000_000) / u128::from(ns)) as u64
        }
    }
}

/// A device-specific channel factory with a cost model.
pub trait ChannelProvider: fmt::Debug {
    /// Provider name for diagnostics.
    fn name(&self) -> &str;

    /// Whether this provider can realize `config`.
    fn supports(&self, config: &ChannelConfig) -> bool;

    /// The price of a channel with this configuration.
    fn cost(&self, config: &ChannelConfig) -> ChannelCost;
}

/// The zero-copy DMA descriptor-ring provider of §4.1 (for device
/// targets).
#[derive(Debug, Clone)]
pub struct ZeroCopyDmaProvider;

impl ChannelProvider for ZeroCopyDmaProvider {
    fn name(&self) -> &'static str {
        "zero-copy-dma"
    }

    fn supports(&self, config: &ChannelConfig) -> bool {
        !config.target.is_host() && config.buffering == Buffering::ZeroCopy
    }

    fn cost(&self, config: &ChannelConfig) -> ChannelCost {
        ChannelCost {
            setup: SimDuration::from_micros(120), // ring + shared region setup
            per_message: SimDuration::from_micros(1), // descriptor prep
            // Synchronous launch: the doorbell MMIO write + DMA engine
            // start is paid on every send (batches still amortize it to
            // one charge per submission).
            launch_overhead: SimDuration::from_micros(2),
            coalesce_launch: false,
            bytes_per_sec: match config.transport {
                Transport::Unicast => 500_000_000,
                Transport::Multicast => 400_000_000,
            },
        }
    }
}

/// A staging-buffer provider: works for any target, costs a copy.
#[derive(Debug, Clone)]
pub struct KernelCopyProvider;

impl ChannelProvider for KernelCopyProvider {
    fn name(&self) -> &'static str {
        "kernel-copy"
    }

    fn supports(&self, _config: &ChannelConfig) -> bool {
        true
    }

    fn cost(&self, config: &ChannelConfig) -> ChannelCost {
        // Syscall + staging copy dominate; there is no device doorbell,
        // so the whole fixed cost is per-message host work.
        ChannelCost::basic(
            SimDuration::from_micros(30),
            SimDuration::from_micros(9),
            if config.target.is_host() {
                1_500_000_000
            } else {
                250_000_000
            },
        )
    }
}

/// Identifier of a live channel.
///
/// Dense `u32` ids, handed out monotonically by the executive (never
/// reused — channel ids appear in resource names and traces, so reuse
/// would alias history). The executive's channel table is a `Vec`
/// indexed by [`ChannelId::idx`], so the send/recv hot path does array
/// indexing instead of hash lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The id as a `Vec` index into channel-side tables.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan#{}", self.0)
    }
}

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// No provider supports the requested configuration.
    NoProvider,
    /// A reliable channel's ring is full; retry after draining.
    WouldBlock,
    /// Unknown channel id.
    NoSuchChannel(ChannelId),
    /// Attaching more endpoints than the transport allows.
    TooManyEndpoints,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::NoProvider => f.write_str("no channel provider supports this config"),
            ChannelError::WouldBlock => f.write_str("channel ring full (reliable channel)"),
            ChannelError::NoSuchChannel(id) => write!(f, "no such channel {id}"),
            ChannelError::TooManyEndpoints => f.write_str("unicast channel already connected"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A message in flight on a channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMessage {
    /// Serialized payload (usually an encoded `Call`).
    pub data: Bytes,
    /// When the message becomes visible at the receiver.
    pub deliver_at: SimTime,
    /// Causal trace stamp: minted at `send`, advanced through the
    /// provider hop, positioned at the `recv` event once received — so
    /// post-receive device work can keep extending the chain.
    pub trace: TraceCtx,
}

/// The vectored completion of a [`Channel::send_batch`]: what was
/// accepted (and when each accepted message delivers), what was turned
/// away, and when the ring goes idle again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSendOutcome {
    /// Delivery instant of each accepted message, in send order.
    pub delivered_at: Vec<SimTime>,
    /// Messages past the ring's headroom on a **reliable** channel
    /// (the batched analogue of [`ChannelError::WouldBlock`]).
    pub rejected: usize,
    /// Messages past the ring's headroom on an **unreliable** channel,
    /// dropped and counted exactly like the single path drops them.
    pub dropped: usize,
    /// Instant the last accepted payload clears the provider ring.
    pub complete_at: SimTime,
    /// Total backoff attempts spent by the channel's [`RetryPolicy`] to
    /// squeeze overflow messages in after all (zero without retry).
    pub retries: u64,
}

impl BatchSendOutcome {
    /// Number of messages accepted into the ring.
    pub fn accepted(&self) -> usize {
        self.delivered_at.len()
    }
}

/// Level-track name for per-channel descriptor-ring occupancy: the
/// deepest open endpoint queue, sampled into telemetry windows by the
/// shared recorder (labeled `chan#N`).
pub const CHANNEL_QUEUE_DEPTH: &str = "channel.queue_depth";

/// Live cost profile of one channel: what communicating through it has
/// *actually* cost so far, as opposed to the provider's advertised
/// [`ChannelCost`].
///
/// Latencies are measured from the caller's `now` to the message's
/// delivery instant, so queueing behind earlier messages and retry
/// backoff are included — this is the observed price, not the unloaded
/// one. Messages are binned by payload size into power-of-two buckets
/// (bucket `B` covers sizes in `(B/2, B]`), each bucket holding a
/// latency [`Histogram`] so p50/p99 per size class fall out of
/// [`Histogram::quantile`]. The fixed per-message charge paid at each
/// doorbell accumulates separately as launch overhead — the channel
/// analogue of kernel-launch cost.
#[derive(Debug, Clone, Default)]
pub struct CostProfile {
    messages: u64,
    bytes: u64,
    doorbells: u64,
    launch_overhead_ns: u64,
    ewma_latency_ns: u64,
    first_send_ns: Option<u64>,
    last_delivery_ns: u64,
    by_size: BTreeMap<u64, Histogram>,
}

impl CostProfile {
    /// The power-of-two size bucket a payload of `bytes` falls into
    /// (its upper bound; zero-length payloads share the 1-byte bucket).
    pub fn size_bucket(bytes: usize) -> u64 {
        (bytes.max(1) as u64).next_power_of_two()
    }

    fn record(&mut self, send_ns: u64, bytes: u64, latency_ns: u64) {
        self.messages += 1;
        self.bytes += bytes;
        self.ewma_latency_ns = if self.messages == 1 {
            latency_ns
        } else {
            // Integer EWMA with alpha = 1/8: old weight 7/8, new 1/8.
            (7 * self.ewma_latency_ns + latency_ns) / 8
        };
        if self.first_send_ns.is_none() {
            self.first_send_ns = Some(send_ns);
        }
        self.last_delivery_ns = self.last_delivery_ns.max(send_ns + latency_ns);
        self.by_size
            .entry(Self::size_bucket(bytes as usize))
            .or_default()
            .record(latency_ns);
    }

    fn doorbell(&mut self, per_message: SimDuration) {
        self.doorbells += 1;
        self.launch_overhead_ns += per_message.as_nanos();
    }

    /// Messages delivered through the channel.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Doorbells rung (single sends, batch submissions, and per-message
    /// retry admissions each pay one).
    pub fn doorbells(&self) -> u64 {
        self.doorbells
    }

    /// Accumulated fixed per-message charge across all doorbells.
    pub fn launch_overhead_ns(&self) -> u64 {
        self.launch_overhead_ns
    }

    /// Exponentially-weighted moving average of observed latency
    /// (alpha 1/8), in nanoseconds. Zero before the first message.
    pub fn ewma_latency_ns(&self) -> u64 {
        self.ewma_latency_ns
    }

    /// Observed payload throughput over the channel's active span
    /// (first send to last delivery), in bytes per second. `None` until
    /// the span is non-empty.
    pub fn throughput_bytes_per_sec(&self) -> Option<u64> {
        let first = self.first_send_ns?;
        let span = self.last_delivery_ns.checked_sub(first)?;
        if span == 0 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation)]
        Some(((u128::from(self.bytes) * 1_000_000_000) / u128::from(span)) as u64)
    }

    /// The size buckets seen so far, ascending: `(upper bound bytes,
    /// latency histogram)`.
    pub fn size_buckets(&self) -> impl Iterator<Item = (u64, &Histogram)> {
        self.by_size.iter().map(|(&b, h)| (b, h))
    }

    /// The latency histogram of the bucket a payload of `bytes` falls
    /// into, if any message of that class has been delivered.
    pub fn latency_for(&self, bytes: usize) -> Option<&Histogram> {
        self.by_size.get(&Self::size_bucket(bytes))
    }
}

/// Policy knobs for online, per-size-bucket provider selection on a
/// cost-adaptive channel (see
/// [`ChannelExecutive::create_channel_adaptive`]).
///
/// All decisions are functions of the channel's own [`CostProfile`]
/// and sim-time traffic, so selection is deterministic and
/// byte-reproducible: same traffic, same choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Messages a size bucket must accumulate before its first
    /// re-evaluation; colder buckets keep the static advertised-cost
    /// argmin.
    pub min_samples: u64,
    /// Messages between re-evaluations of a bucket: selection is only
    /// reconsidered at these epoch boundaries, never mid-epoch.
    pub epoch: u64,
    /// Hysteresis numerator: a challenger wins only when its estimated
    /// cost times `hysteresis_den` is at most the incumbent's times
    /// `hysteresis_num` (7/8 = the challenger must be ≥ 12.5% better).
    pub hysteresis_num: u64,
    /// Hysteresis denominator (see `hysteresis_num`).
    pub hysteresis_den: u64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            min_samples: 8,
            epoch: 16,
            hysteresis_num: 7,
            hysteresis_den: 8,
        }
    }
}

/// Online selection state of a cost-adaptive channel: the live
/// candidate providers and the per-size-bucket incumbents.
#[derive(Debug)]
struct AdaptiveState {
    /// `(name, advertised cost)` of every capable provider, in
    /// registration order (the deterministic tie-break order).
    candidates: Vec<(String, ChannelCost)>,
    policy: AdaptivePolicy,
    /// Active candidate index per size bucket (keyed by the bucket's
    /// upper bound, as in [`CostProfile::size_bucket`]).
    selected: BTreeMap<u64, usize>,
    /// Epoch-boundary re-selections that actually changed a bucket's
    /// provider.
    switches: u64,
}

impl AdaptiveState {
    /// Index of the candidate with the lowest unloaded advertised
    /// latency for a `bytes`-sized message (ties keep the earliest
    /// registration).
    fn static_default(&self, bytes: usize) -> usize {
        self.candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, c))| c.latency(bytes))
            .map_or(0, |(i, _)| i)
    }
}

/// Per-channel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages consumed by receivers.
    pub received: u64,
    /// Messages dropped (unreliable channel, ring full).
    pub dropped: u64,
    /// Payload bytes accepted.
    pub bytes: u64,
}

/// One live channel.
#[derive(Debug)]
pub struct Channel {
    id: ChannelId,
    config: ChannelConfig,
    provider_name: String,
    cost: ChannelCost,
    /// Next instant the pipe is free (per-channel serialization).
    busy_until: SimTime,
    /// One queue per receiving endpoint.
    queues: Vec<VecDeque<ChannelMessage>>,
    /// Parallel to `queues`: endpoints closed by teardown keep their
    /// index (so other endpoints stay stable) but receive nothing.
    closed: Vec<bool>,
    /// Descriptor-ring slots wedged by injected ring-exhaustion faults;
    /// subtracted from the configured capacity.
    wedged_slots: usize,
    stats: ChannelStats,
    profile: CostProfile,
    /// Online per-bucket provider selection; `None` on a classic
    /// fixed-provider channel.
    adaptive: Option<AdaptiveState>,
    /// Label for per-channel level tracks (`chan#N`), built once.
    depth_label: String,
    handler_installed: bool,
    recorder: Recorder,
}

impl Channel {
    fn new(
        id: ChannelId,
        config: ChannelConfig,
        provider_name: String,
        cost: ChannelCost,
        adaptive: Option<AdaptiveState>,
        recorder: Recorder,
    ) -> Self {
        Channel {
            id,
            config,
            provider_name,
            cost,
            busy_until: SimTime::ZERO,
            queues: Vec::new(),
            closed: Vec::new(),
            wedged_slots: 0,
            stats: ChannelStats::default(),
            profile: CostProfile::default(),
            adaptive,
            depth_label: format!("chan#{}", id.0),
            handler_installed: false,
            recorder,
        }
    }

    /// The channel id.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The chosen provider's name.
    pub fn provider_name(&self) -> &str {
        &self.provider_name
    }

    /// The provider's cost metric.
    pub fn cost(&self) -> ChannelCost {
        self.cost
    }

    /// The counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// The live cost profile: observed latency by size bucket, EWMA
    /// latency, throughput, and accumulated launch overhead.
    pub fn cost_profile(&self) -> &CostProfile {
        &self.profile
    }

    /// Whether this channel re-selects its provider online from the
    /// live cost profile.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive.is_some()
    }

    /// Epoch-boundary provider switches performed so far (zero on a
    /// fixed-provider channel).
    pub fn provider_switches(&self) -> u64 {
        self.adaptive.as_ref().map_or(0, |s| s.switches)
    }

    /// Names of the live candidate providers of an adaptive channel
    /// (empty on a fixed-provider channel), in registration order.
    pub fn candidate_providers(&self) -> Vec<&str> {
        self.adaptive.as_ref().map_or_else(Vec::new, |s| {
            s.candidates.iter().map(|(n, _)| n.as_str()).collect()
        })
    }

    /// Online provider selection for the next send of `bytes`: picks
    /// (and possibly re-picks) the active candidate for the payload's
    /// size bucket from the live [`CostProfile`], then installs it as
    /// the channel's current provider/cost. No-op on fixed channels.
    ///
    /// A cold bucket (fewer than [`AdaptivePolicy::min_samples`]
    /// observations) uses the static argmin of the advertised unloaded
    /// latency. Warm buckets re-rank only at epoch boundaries: when the
    /// observed p50 shows the pipe is saturated (≥ 2× the incumbent's
    /// unloaded latency, i.e. queueing dominates), candidates are
    /// compared by their *streaming* marginal latency — where a
    /// double-buffered provider's hidden launch pays off — otherwise by
    /// unloaded latency. The incumbent keeps the bucket unless a
    /// challenger clears the policy's hysteresis margin, so selection
    /// cannot flap.
    fn select_provider(&mut self, bytes: usize) {
        let Some(state) = self.adaptive.as_mut() else {
            return;
        };
        let bucket = CostProfile::size_bucket(bytes);
        #[allow(clippy::cast_possible_truncation)]
        let rep = bucket as usize;
        let idx = match state.selected.get(&bucket) {
            None => {
                let idx = state.static_default(rep);
                state.selected.insert(bucket, idx);
                idx
            }
            Some(&incumbent) => {
                let hist = self.profile.latency_for(rep);
                let count = hist.map_or(0, Histogram::count);
                let due = count >= state.policy.min_samples
                    && (count - state.policy.min_samples).is_multiple_of(state.policy.epoch);
                if due {
                    let observed_p50 = hist.and_then(Histogram::p50).unwrap_or(0);
                    let inc_cost = state.candidates[incumbent].1;
                    let hot = observed_p50 >= inc_cost.latency(rep).as_nanos().saturating_mul(2);
                    let est = |c: &ChannelCost| {
                        if hot {
                            c.streaming_latency(rep).as_nanos()
                        } else {
                            c.latency(rep).as_nanos()
                        }
                    };
                    let challenger = state
                        .candidates
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, c))| est(c))
                        .map_or(incumbent, |(i, _)| i);
                    let wins = challenger != incumbent
                        && u128::from(est(&state.candidates[challenger].1))
                            * u128::from(state.policy.hysteresis_den)
                            <= u128::from(est(&state.candidates[incumbent].1))
                                * u128::from(state.policy.hysteresis_num);
                    if wins {
                        state.selected.insert(bucket, challenger);
                        state.switches += 1;
                        self.recorder.counter_incr(
                            "channel.provider_switch",
                            &state.candidates[challenger].0,
                        );
                        challenger
                    } else {
                        incumbent
                    }
                } else {
                    incumbent
                }
            }
        };
        let (name, cost) = &state.candidates[idx];
        if *name != self.provider_name {
            self.provider_name.clone_from(name);
            self.cost = *cost;
        }
    }

    /// Publishes the deepest open endpoint queue as the channel's
    /// [`CHANNEL_QUEUE_DEPTH`] level track.
    fn publish_queue_depth(&self) {
        let depth = self.open_queues().map(VecDeque::len).max().unwrap_or(0);
        self.recorder
            .level_set(CHANNEL_QUEUE_DEPTH, &self.depth_label, depth as u64);
    }

    /// Number of attached receiving endpoints (open or closed).
    pub fn endpoints(&self) -> usize {
        self.queues.len()
    }

    /// Number of endpoints still open.
    pub fn open_endpoints(&self) -> usize {
        self.closed.iter().filter(|&&c| !c).count()
    }

    /// Whether endpoint `ep` exists and is open.
    pub fn endpoint_open(&self, ep: usize) -> bool {
        self.closed.get(ep).is_some_and(|&c| !c)
    }

    /// Closes endpoint `ep`: queued messages get their traces terminated
    /// with a `channel.endpoint_closed` drop event, and the endpoint
    /// receives nothing from then on (its index stays allocated so other
    /// endpoints keep their positions). Returns `false` if the endpoint
    /// does not exist or is already closed.
    pub fn close_endpoint(&mut self, ep: usize) -> bool {
        if !self.endpoint_open(ep) {
            return false;
        }
        let q = &mut self.queues[ep];
        for msg in q.drain(..) {
            self.recorder.trace_drop(
                msg.trace,
                "channel.endpoint_closed",
                &self.provider_name,
                u64::from(self.config.target.0),
                msg.deliver_at,
                msg.data.len() as u64,
            );
        }
        self.closed[ep] = true;
        self.recorder
            .counter_incr("channel.endpoint_closed", &self.provider_name);
        self.publish_queue_depth();
        true
    }

    /// Wedges `slots` descriptor-ring slots (injected ring-exhaustion
    /// fault): the usable capacity becomes `capacity - slots`.
    pub fn set_wedged_slots(&mut self, slots: usize) {
        self.wedged_slots = slots;
    }

    /// The ring capacity minus wedged slots.
    fn usable_capacity(&self) -> usize {
        self.config.capacity.saturating_sub(self.wedged_slots)
    }

    /// Queues of open endpoints.
    fn open_queues(&self) -> impl Iterator<Item = &VecDeque<ChannelMessage>> {
        self.queues
            .iter()
            .zip(&self.closed)
            .filter(|&(_, &c)| !c)
            .map(|(q, _)| q)
    }

    /// Installs a dispatch handler marker (paper Figure 3:
    /// `InstallCallHandler`). The runtime invokes handlers instead of
    /// requiring the application to poll.
    pub fn install_handler(&mut self) {
        self.handler_installed = true;
    }

    /// Whether a dispatch handler is installed.
    pub fn has_handler(&self) -> bool {
        self.handler_installed
    }

    /// Attaches a receiving endpoint (the runtime's `ConnectOffcode`).
    ///
    /// # Errors
    ///
    /// Unicast channels accept exactly one endpoint.
    pub fn connect_endpoint(&mut self) -> Result<usize, ChannelError> {
        if self.config.transport == Transport::Unicast && !self.queues.is_empty() {
            return Err(ChannelError::TooManyEndpoints);
        }
        self.queues.push(VecDeque::new());
        self.closed.push(false);
        Ok(self.queues.len() - 1)
    }

    /// First sim-time instant in `(now, now + timeout]` at which the
    /// retry policy can squeeze a message into the ring, plus the number
    /// of backoff attempts it took. Slot availability follows the
    /// descriptor-ring model: a slot frees once the device side has
    /// consumed the payload, i.e. once a queued message's delivery
    /// instant has passed (receiver-side buffering is the receiver's
    /// business, not the ring's).
    fn retry_admit(&self, now: SimTime) -> Option<(SimTime, u32)> {
        let policy = self.config.retry;
        if !policy.enabled() {
            return None;
        }
        let capacity = self.usable_capacity();
        let deadline = now.saturating_add(policy.timeout);
        let mut backoff = policy.backoff;
        let mut attempt_at = now;
        for attempt in 1..=policy.max_attempts {
            attempt_at = attempt_at.saturating_add(backoff);
            if attempt_at > deadline {
                return None;
            }
            let free = self
                .open_queues()
                .all(|q| q.iter().filter(|m| m.deliver_at > attempt_at).count() < capacity);
            if free {
                return Some((attempt_at, attempt));
            }
            backoff = SimDuration::from_nanos(backoff.as_nanos().saturating_mul(2));
        }
        None
    }

    /// Terminal accounting for a single send that found the ring full and
    /// exhausted (or lacked) retry: reject on reliable, drop on
    /// unreliable — identical to the historical no-retry behavior.
    fn send_full_fallout(
        &mut self,
        now: SimTime,
        bytes: u64,
        ctx: TraceCtx,
    ) -> Result<SimTime, ChannelError> {
        match self.config.reliability {
            Reliability::Reliable => {
                self.recorder
                    .counter_incr("channel.rejected", &self.provider_name);
                self.recorder
                    .trace_drop(ctx, "channel.reject", &self.provider_name, 0, now, bytes);
                Err(ChannelError::WouldBlock)
            }
            Reliability::Unreliable => {
                self.stats.dropped += 1;
                self.recorder
                    .counter_incr("channel.dropped", &self.provider_name);
                self.recorder.trace_drop(
                    ctx,
                    "channel.drop",
                    &self.provider_name,
                    self.target_pid(),
                    now,
                    bytes,
                );
                Ok(self.busy_until.max(now) + self.cost.latency(bytes as usize))
            }
        }
    }

    /// The device id used as the trace "pid" for this channel's far end.
    fn target_pid(&self) -> u64 {
        u64::from(self.config.target.0)
    }

    /// Sends a message at `now`, returning its delivery instant.
    ///
    /// Multicast delivers to every endpoint in one send (hardware
    /// multicast: the cost is charged once, per the paper's note).
    ///
    /// Every send mints a [`TraceCtx`]: a *send* event on the host, then
    /// — if the message is accepted — a *hop* event on the target device
    /// as the payload enters the provider's queue/descriptor ring. Lost
    /// or rejected messages close their trace with a *drop* event, so a
    /// fault is visible as an unterminated-by-recv chain, not silence.
    ///
    /// # Errors
    ///
    /// [`ChannelError::WouldBlock`] on a full reliable channel. On a full
    /// unreliable channel the message is counted as dropped and `Ok` is
    /// returned with the nominal delivery time. With a [`RetryPolicy`]
    /// configured, a full ring first backs off deterministically; only
    /// when every attempt inside the policy's bounds still finds the ring
    /// full does the send fail (or drop) as above.
    pub fn send(&mut self, now: SimTime, data: Bytes) -> Result<SimTime, ChannelError> {
        self.select_provider(data.len());
        let bytes = data.len() as u64;
        let ctx = self
            .recorder
            .trace_begin("channel.send", &self.provider_name, 0, now, bytes);
        let mut admit_at = now;
        let any_full = self
            .open_queues()
            .any(|q| q.len() >= self.usable_capacity());
        if any_full {
            match self.retry_admit(now) {
                Some((at, attempts)) => {
                    admit_at = at;
                    self.recorder.counter_add(
                        "channel.retries",
                        &self.provider_name,
                        u64::from(attempts),
                    );
                    self.recorder.observe(
                        "channel.retry_wait_ns",
                        &self.provider_name,
                        at.as_nanos().saturating_sub(now.as_nanos()),
                    );
                }
                None => {
                    return self.send_full_fallout(now, bytes, ctx);
                }
            }
        }
        let start = self.busy_until.max(admit_at);
        // Idle pipe: the doorbell must actually start the engine. Busy
        // pipe: a coalescing (double-buffered) provider pre-armed the
        // launch while the previous transfer drained.
        let pipe_idle = self.busy_until <= admit_at;
        let deliver_at = start + self.cost.send_latency(data.len(), pipe_idle);
        self.busy_until = deliver_at;
        self.stats.sent += 1;
        self.stats.bytes += bytes;
        self.profile.doorbell(self.cost.launch_charge(pipe_idle));
        self.profile.record(
            now.as_nanos(),
            bytes,
            deliver_at.as_nanos().saturating_sub(now.as_nanos()),
        );
        let ctx = self.recorder.trace_hop(
            ctx,
            "provider.hop",
            &self.provider_name,
            self.target_pid(),
            start,
            bytes,
        );
        for (q, &closed) in self.queues.iter_mut().zip(&self.closed) {
            if closed {
                continue;
            }
            q.push_back(ChannelMessage {
                data: data.clone(),
                deliver_at,
                trace: ctx,
            });
        }
        self.recorder
            .counter_incr("channel.sent", &self.provider_name);
        self.recorder
            .counter_add("channel.bytes", &self.provider_name, bytes);
        self.recorder.observe(
            "channel.latency_ns",
            &self.provider_name,
            deliver_at.as_nanos().saturating_sub(now.as_nanos()),
        );
        let backlog = self.queues.iter().map(|q| q.len()).max().unwrap_or(0);
        self.recorder.gauge_max(
            "channel.backlog_high_water",
            &self.provider_name,
            backlog as u64,
        );
        self.publish_queue_depth();
        Ok(deliver_at)
    }

    /// Sends a batch of messages at `now` with a **single doorbell**.
    ///
    /// This is the batched hot path: the fixed per-message provider charge
    /// (descriptor handling + doorbell) is paid **once** for the whole
    /// batch, then payloads stream back-to-back at the provider's wire
    /// rate. Message *i* is delivered once the payloads up to and
    /// including it have cleared the ring, so FIFO order — and therefore
    /// observable delivery order — is identical to the equivalent sequence
    /// of single [`Channel::send`] calls, while the total sim time is
    /// strictly smaller for any batch of two or more messages.
    ///
    /// Observability is amortized the same way: one flight-recorder
    /// *send* event plus one provider *hop* event cover the whole batch
    /// (`channel.sent`/`channel.bytes` are bumped by batch totals, and
    /// `channel.batches`/`channel.batch_size` record the batching
    /// itself). Fault paths keep **per-message** accounting: every
    /// message that does not fit gets its own *drop* event
    /// (`channel.reject` on a reliable ring, `channel.drop` on an
    /// unreliable one) and its own counter bump, exactly like the single
    /// path.
    ///
    /// The outcome reports per-message delivery instants for the accepted
    /// prefix plus reject/drop counts for the rest; unlike single `send`
    /// a full reliable ring is not an `Err` but `rejected > 0`.
    pub fn send_batch(&mut self, now: SimTime, batch: &[Bytes]) -> BatchSendOutcome {
        let mut out = BatchSendOutcome {
            delivered_at: Vec::new(),
            rejected: 0,
            dropped: 0,
            complete_at: SimTime::ZERO,
            retries: 0,
        };
        self.send_batch_into(now, batch, &mut out);
        out
    }

    /// [`Channel::send_batch`], but reusing a caller-provided outcome.
    ///
    /// Semantically identical to `send_batch` — same admission, same
    /// delivery instants, same fault accounting — but the per-message
    /// `delivered_at` vector is cleared and refilled in place instead of
    /// freshly allocated, so a steady-state send loop that keeps one
    /// [`BatchSendOutcome`] around performs **zero heap allocations** per
    /// batch once the vector has grown to the working batch size (payload
    /// [`Bytes`] handles are refcounted clones, never copies).
    pub fn send_batch_into(&mut self, now: SimTime, batch: &[Bytes], out: &mut BatchSendOutcome) {
        let start = self.busy_until.max(now);
        out.delivered_at.clear();
        out.rejected = 0;
        out.dropped = 0;
        out.complete_at = start;
        out.retries = 0;
        if batch.is_empty() {
            return;
        }
        let total_bytes: u64 = batch.iter().map(|m| m.len() as u64).sum();
        // A batch selects once, by its mean payload size (one doorbell,
        // one provider: a batch cannot straddle two rings).
        #[allow(clippy::cast_possible_truncation)]
        self.select_provider((total_bytes / batch.len() as u64) as usize);
        let ctx = self.recorder.trace_begin(
            "channel.send_batch",
            &self.provider_name,
            0,
            now,
            total_bytes,
        );
        // Headroom mirrors the single path's per-send check: a send is
        // accepted while no open endpoint queue is at capacity.
        let backlog = self.open_queues().map(VecDeque::len).max().unwrap_or(0);
        let headroom = self.usable_capacity().saturating_sub(backlog);
        let accepted = batch.len().min(headroom);

        out.delivered_at.reserve(accepted);
        if accepted > 0 {
            let accepted_bytes: u64 = batch[..accepted].iter().map(|m| m.len() as u64).sum();
            let ctx = self.recorder.trace_hop(
                ctx,
                "provider.batch",
                &self.provider_name,
                self.target_pid(),
                start,
                accepted_bytes,
            );
            // One doorbell covers the batch; whether its launch charge
            // is paid depends on the pipe state, exactly like a single
            // send (a coalescing provider submitting onto a busy pipe
            // pays nothing extra).
            let pipe_idle = self.busy_until <= now;
            self.profile.doorbell(self.cost.launch_charge(pipe_idle));
            let mut cum_bytes = 0usize;
            for msg in &batch[..accepted] {
                cum_bytes += msg.len();
                let deliver_at = start + self.cost.send_latency(cum_bytes, pipe_idle);
                self.profile.record(
                    now.as_nanos(),
                    msg.len() as u64,
                    deliver_at.as_nanos().saturating_sub(now.as_nanos()),
                );
                out.delivered_at.push(deliver_at);
                for (q, &ep_closed) in self.queues.iter_mut().zip(&self.closed) {
                    if ep_closed {
                        continue;
                    }
                    q.push_back(ChannelMessage {
                        data: msg.clone(),
                        deliver_at,
                        trace: ctx,
                    });
                }
            }
            self.busy_until = *out.delivered_at.last().expect("accepted > 0");
            self.stats.sent += accepted as u64;
            self.stats.bytes += accepted_bytes;
            self.recorder
                .counter_add("channel.sent", &self.provider_name, accepted as u64);
            self.recorder
                .counter_add("channel.bytes", &self.provider_name, accepted_bytes);
            self.recorder
                .counter_incr("channel.batches", &self.provider_name);
            self.recorder
                .observe("channel.batch_size", &self.provider_name, accepted as u64);
            self.recorder.observe(
                "channel.latency_ns",
                &self.provider_name,
                self.busy_until.as_nanos().saturating_sub(now.as_nanos()),
            );
            let backlog = self.queues.iter().map(|q| q.len()).max().unwrap_or(0);
            self.recorder.gauge_max(
                "channel.backlog_high_water",
                &self.provider_name,
                backlog as u64,
            );
        }
        // Everything past the headroom: with a retry policy each message
        // gets its own deterministic backoff chance to squeeze in (paying
        // its own doorbell — a retried message is effectively a late
        // single send); what still doesn't fit keeps the historical
        // per-message fault accounting of the single path.
        for msg in &batch[accepted..] {
            if let Some((at, attempts)) = self.retry_admit(now) {
                let bytes = msg.len() as u64;
                let start = self.busy_until.max(at);
                let pipe_idle = self.busy_until <= at;
                let deliver_at = start + self.cost.send_latency(msg.len(), pipe_idle);
                self.profile.doorbell(self.cost.launch_charge(pipe_idle));
                self.profile.record(
                    now.as_nanos(),
                    bytes,
                    deliver_at.as_nanos().saturating_sub(now.as_nanos()),
                );
                let mctx = self.recorder.trace_hop(
                    ctx,
                    "provider.retry",
                    &self.provider_name,
                    self.target_pid(),
                    start,
                    bytes,
                );
                for (q, &ep_closed) in self.queues.iter_mut().zip(&self.closed) {
                    if ep_closed {
                        continue;
                    }
                    q.push_back(ChannelMessage {
                        data: msg.clone(),
                        deliver_at,
                        trace: mctx,
                    });
                }
                self.busy_until = deliver_at;
                out.delivered_at.push(deliver_at);
                self.stats.sent += 1;
                self.stats.bytes += bytes;
                out.retries += u64::from(attempts);
                self.recorder
                    .counter_incr("channel.sent", &self.provider_name);
                self.recorder
                    .counter_add("channel.bytes", &self.provider_name, bytes);
                self.recorder.counter_add(
                    "channel.retries",
                    &self.provider_name,
                    u64::from(attempts),
                );
                self.recorder.observe(
                    "channel.retry_wait_ns",
                    &self.provider_name,
                    at.as_nanos().saturating_sub(now.as_nanos()),
                );
                continue;
            }
            match self.config.reliability {
                Reliability::Reliable => {
                    out.rejected += 1;
                    self.recorder
                        .counter_incr("channel.rejected", &self.provider_name);
                    self.recorder.trace_drop(
                        ctx,
                        "channel.reject",
                        &self.provider_name,
                        0,
                        now,
                        msg.len() as u64,
                    );
                }
                Reliability::Unreliable => {
                    out.dropped += 1;
                    self.stats.dropped += 1;
                    self.recorder
                        .counter_incr("channel.dropped", &self.provider_name);
                    self.recorder.trace_drop(
                        ctx,
                        "channel.drop",
                        &self.provider_name,
                        self.target_pid(),
                        now,
                        msg.len() as u64,
                    );
                }
            }
        }
        out.complete_at = self.busy_until.max(start);
        self.publish_queue_depth();
    }

    /// Receives up to `max` messages visible at `now` on endpoint `ep` —
    /// the vectored completion side of the batched data path.
    ///
    /// Message ordering and per-message trace closure are identical to
    /// repeated [`Channel::recv`] calls; only the counter updates are
    /// aggregated into a single `channel.received` bump per batch.
    pub fn recv_batch(&mut self, now: SimTime, ep: usize, max: usize) -> Vec<ChannelMessage> {
        if !self.endpoint_open(ep) {
            return Vec::new();
        }
        let Some(q) = self.queues.get_mut(ep) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while out.len() < max {
            if q.front().is_none_or(|m| m.deliver_at > now) {
                break;
            }
            out.push(q.pop_front().expect("front just checked"));
        }
        if out.is_empty() {
            return out;
        }
        self.publish_queue_depth();
        self.stats.received += out.len() as u64;
        self.recorder
            .counter_add("channel.received", &self.provider_name, out.len() as u64);
        for msg in &mut out {
            msg.trace = self.recorder.trace_recv(
                msg.trace,
                "channel.recv",
                &self.provider_name,
                self.target_pid(),
                now,
                msg.data.len() as u64,
            );
        }
        out
    }

    /// Receives the oldest message visible at `now` on endpoint `ep`.
    ///
    /// The returned message's [`ChannelMessage::trace`] is advanced to
    /// the *recv* event, so the receiver can continue the causal chain
    /// into device-side work.
    pub fn recv(&mut self, now: SimTime, ep: usize) -> Option<ChannelMessage> {
        if !self.endpoint_open(ep) {
            return None;
        }
        let q = self.queues.get_mut(ep)?;
        if q.front().is_some_and(|m| m.deliver_at <= now) {
            self.stats.received += 1;
            self.recorder
                .counter_incr("channel.received", &self.provider_name);
            let mut msg = q.pop_front()?;
            self.publish_queue_depth();
            msg.trace = self.recorder.trace_recv(
                msg.trace,
                "channel.recv",
                &self.provider_name,
                self.target_pid(),
                now,
                msg.data.len() as u64,
            );
            Some(msg)
        } else {
            None
        }
    }

    /// Closes every still-queued message's trace with a *drop* event
    /// (used when the channel is destroyed with messages in flight).
    fn drop_pending(&mut self) {
        for q in &mut self.queues {
            for msg in q.drain(..) {
                self.recorder.trace_drop(
                    msg.trace,
                    "channel.destroyed",
                    &self.provider_name,
                    u64::from(self.config.target.0),
                    msg.deliver_at,
                    msg.data.len() as u64,
                );
            }
        }
        self.publish_queue_depth();
    }

    /// Polls whether endpoint `ep` has a visible message at `now` (the
    /// channel API's `poll`).
    pub fn poll(&self, now: SimTime, ep: usize) -> bool {
        self.endpoint_open(ep)
            && self
                .queues
                .get(ep)
                .and_then(|q| q.front())
                .is_some_and(|m| m.deliver_at <= now)
    }

    /// Messages queued (visible or not) on endpoint `ep`.
    pub fn backlog(&self, ep: usize) -> usize {
        self.queues.get(ep).map_or(0, |q| q.len())
    }
}

/// The Channel Executive: provider registry + channel table.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use hydra_core::channel::{ChannelConfig, ChannelExecutive};
/// use hydra_core::device::DeviceId;
/// use hydra_sim::time::SimTime;
///
/// let mut exec = ChannelExecutive::with_default_providers();
/// let id = exec.create_channel(ChannelConfig::figure3(DeviceId(1))).unwrap();
/// exec.get_mut(id).unwrap().connect_endpoint().unwrap();
/// let t = exec
///     .get_mut(id).unwrap()
///     .send(SimTime::ZERO, Bytes::from_static(b"call"))
///     .unwrap();
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Default)]
pub struct ChannelExecutive {
    providers: Vec<Box<dyn ChannelProvider>>,
    /// Dense channel table indexed by [`ChannelId::idx`]. Ids are handed
    /// out monotonically and never reused; destroyed channels leave a
    /// `None` slot behind.
    channels: Vec<Option<Channel>>,
    live: usize,
    recorder: Recorder,
}

impl ChannelExecutive {
    /// Creates an executive with no providers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an executive with the built-in providers registered.
    pub fn with_default_providers() -> Self {
        let mut e = Self::new();
        e.register_provider(Box::new(ZeroCopyDmaProvider));
        e.register_provider(Box::new(KernelCopyProvider));
        e
    }

    /// Registers a provider (typically from a device driver).
    pub fn register_provider(&mut self, provider: Box<dyn ChannelProvider>) {
        self.providers.push(provider);
    }

    /// Installs the recorder every subsequently created channel reports
    /// into (the runtime shares its own recorder this way).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The executive's recorder handle.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Every capable provider's bid for `config`, in registration order:
    /// the advertised cost plus the 1 kB-message latency the executive
    /// ranks bids by.
    pub fn quotes(&self, config: &ChannelConfig) -> Vec<(String, ChannelCost, SimDuration)> {
        self.providers
            .iter()
            .filter(|p| p.supports(config))
            .map(|p| {
                let cost = p.cost(config);
                (p.name().to_owned(), cost, cost.latency(1024))
            })
            .collect()
    }

    /// Exports the provider family as `hydra-verify`'s static
    /// [`ServiceTable`](hydra_verify::ServiceTable), probed against the
    /// Figure-3 NIC channel shape. This is the *only* path certification
    /// costs come from: the table is derived from the same
    /// [`ChannelProvider::cost`] implementations the executive's auction
    /// and the adaptive per-bucket selection use, so the static analysis
    /// and the runtime can never disagree on costs.
    pub fn service_table(&self) -> hydra_verify::ServiceTable {
        let probe = ChannelConfig::figure3(DeviceId(1));
        let providers = self
            .providers
            .iter()
            .filter(|p| p.supports(&probe))
            .map(|p| {
                let cost = p.cost(&probe);
                hydra_verify::ServiceModel {
                    provider: p.name().to_owned(),
                    setup_ns: cost.setup.as_nanos(),
                    per_message_ns: cost.per_message.as_nanos(),
                    launch_overhead_ns: cost.launch_overhead.as_nanos(),
                    coalesce_launch: cost.coalesce_launch,
                    bytes_per_sec: cost.bytes_per_sec,
                }
            })
            .collect();
        hydra_verify::ServiceTable {
            providers,
            adaptive: true,
            ring_capacity: probe.capacity as u64,
            device_ns_per_msg: hydra_verify::service::DEVICE_NS_PER_MSG,
            device_bytes_per_sec: hydra_verify::service::DEVICE_BYTES_PER_SEC,
        }
    }

    /// Creates a channel, selecting the supporting provider with the
    /// lowest latency for a nominal 1 kB message.
    ///
    /// # Errors
    ///
    /// Fails when no provider supports the configuration.
    pub fn create_channel(&mut self, config: ChannelConfig) -> Result<ChannelId, ChannelError> {
        let best = self
            .providers
            .iter()
            .filter(|p| p.supports(&config))
            .min_by_key(|p| p.cost(&config).latency(1024))
            .ok_or(ChannelError::NoProvider)?;
        let id = ChannelId(self.channels.len() as u32);
        self.recorder
            .counter_incr("channel.provider_selected", best.name());
        let channel = Channel::new(
            id,
            config,
            best.name().to_owned(),
            best.cost(&config),
            None,
            self.recorder.clone(),
        );
        self.channels.push(Some(channel));
        self.live += 1;
        Ok(id)
    }

    /// Creates a channel pinned to the named provider, bypassing the
    /// cost auction — the benchmarking/pinning API behind the crossover
    /// sweeps (each provider measured in isolation).
    ///
    /// # Errors
    ///
    /// Fails when no provider of that name supports the configuration.
    pub fn create_channel_forced(
        &mut self,
        config: ChannelConfig,
        provider: &str,
    ) -> Result<ChannelId, ChannelError> {
        let chosen = self
            .providers
            .iter()
            .find(|p| p.name() == provider && p.supports(&config))
            .ok_or(ChannelError::NoProvider)?;
        let id = ChannelId(self.channels.len() as u32);
        self.recorder
            .counter_incr("channel.provider_selected", chosen.name());
        let channel = Channel::new(
            id,
            config,
            chosen.name().to_owned(),
            chosen.cost(&config),
            None,
            self.recorder.clone(),
        );
        self.channels.push(Some(channel));
        self.live += 1;
        Ok(id)
    }

    /// Creates a **cost-adaptive** channel: every supporting provider
    /// stays a live candidate, and each message-size bucket re-selects
    /// among them online from the channel's [`CostProfile`] under
    /// `policy` (see [`AdaptivePolicy`] for the deterministic
    /// hysteresis rules). The initial provider is the same static
    /// argmin [`ChannelExecutive::create_channel`] would pick.
    ///
    /// # Errors
    ///
    /// Fails when no provider supports the configuration.
    pub fn create_channel_adaptive(
        &mut self,
        config: ChannelConfig,
        policy: AdaptivePolicy,
    ) -> Result<ChannelId, ChannelError> {
        let candidates: Vec<(String, ChannelCost)> = self
            .providers
            .iter()
            .filter(|p| p.supports(&config))
            .map(|p| (p.name().to_owned(), p.cost(&config)))
            .collect();
        let initial = candidates
            .iter()
            .min_by_key(|(_, c)| c.latency(1024))
            .ok_or(ChannelError::NoProvider)?
            .clone();
        let id = ChannelId(self.channels.len() as u32);
        self.recorder
            .counter_incr("channel.provider_selected", &initial.0);
        self.recorder
            .counter_incr("channel.adaptive_created", &initial.0);
        let channel = Channel::new(
            id,
            config,
            initial.0,
            initial.1,
            Some(AdaptiveState {
                candidates,
                policy,
                selected: BTreeMap::new(),
                switches: 0,
            }),
            self.recorder.clone(),
        );
        self.channels.push(Some(channel));
        self.live += 1;
        Ok(id)
    }

    /// The live channel ids, in ascending id order — a deterministic
    /// iteration order for whole-executive sweeps (fault propagation,
    /// teardown audits).
    pub fn ids(&self) -> Vec<ChannelId> {
        self.channels
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|_| ChannelId(i as u32)))
            .collect()
    }

    /// Shared access to a channel.
    pub fn get(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.get(id.idx()).and_then(Option::as_ref)
    }

    /// Exclusive access to a channel.
    pub fn get_mut(&mut self, id: ChannelId) -> Option<&mut Channel> {
        self.channels.get_mut(id.idx()).and_then(Option::as_mut)
    }

    /// Destroys a channel, returning whether it existed. Undelivered
    /// messages get a *drop* trace event so their chains terminate
    /// visibly rather than dangling. The id's table slot is retired, not
    /// recycled.
    pub fn destroy(&mut self, id: ChannelId) -> bool {
        match self.channels.get_mut(id.idx()).and_then(Option::take) {
            Some(mut ch) => {
                ch.drop_pending();
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// Number of live channels.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no channels are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> ChannelExecutive {
        ChannelExecutive::with_default_providers()
    }

    #[test]
    fn executive_picks_cheapest_provider() {
        let mut e = exec();
        // Zero-copy to a device: the DMA provider wins.
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        assert_eq!(e.get(id).unwrap().provider_name(), "zero-copy-dma");
        // Copied buffering: only the kernel provider supports it.
        let id2 = e.create_channel(ChannelConfig::oob(DeviceId(1))).unwrap();
        assert_eq!(e.get(id2).unwrap().provider_name(), "kernel-copy");
    }

    #[test]
    fn no_provider_is_an_error() {
        let mut e = ChannelExecutive::new();
        assert_eq!(
            e.create_channel(ChannelConfig::figure3(DeviceId(1))),
            Err(ChannelError::NoProvider)
        );
    }

    #[test]
    fn service_table_pins_the_conservative_default() {
        // The table the executive exports from its live providers must
        // agree byte-for-byte with the conservative default the verifier
        // falls back to — if a provider's ChannelCost changes, both this
        // test and the default must move together, keeping the analysis
        // and the runtime on one cost table.
        let mut e = ChannelExecutive::with_default_providers();
        crate::providers::install_extras(&mut e);
        assert_eq!(
            e.service_table(),
            hydra_verify::ServiceTable::conservative_default()
        );
    }

    #[test]
    fn send_and_receive_in_order() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let t1 = ch.send(SimTime::ZERO, Bytes::from_static(b"one")).unwrap();
        let t2 = ch.send(SimTime::ZERO, Bytes::from_static(b"two")).unwrap();
        assert!(t2 > t1, "messages serialize on the channel");
        // Not visible before delivery time.
        assert!(ch.recv(SimTime::ZERO, ep).is_none());
        assert!(!ch.poll(SimTime::ZERO, ep));
        let m1 = ch.recv(t1, ep).unwrap();
        assert_eq!(&m1.data[..], b"one");
        let m2 = ch.recv(t2, ep).unwrap();
        assert_eq!(&m2.data[..], b"two");
        assert_eq!(ch.stats().sent, 2);
        assert_eq!(ch.stats().received, 2);
    }

    #[test]
    fn reliable_full_ring_blocks() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 2;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"c")),
            Err(ChannelError::WouldBlock)
        );
        // Draining unblocks.
        let t = SimTime::from_secs(1);
        ch.recv(t, 0).unwrap();
        assert!(ch.send(t, Bytes::from_static(b"c")).is_ok());
    }

    #[test]
    fn unreliable_full_ring_drops() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 1;
        cfg.reliability = Reliability::Unreliable;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
        assert_eq!(ch.stats().dropped, 1);
        assert_eq!(ch.stats().sent, 1);
    }

    #[test]
    fn unicast_allows_single_endpoint() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        assert_eq!(ch.connect_endpoint(), Err(ChannelError::TooManyEndpoints));
    }

    #[test]
    fn multicast_fans_out_with_single_charge() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.transport = Transport::Multicast;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep0 = ch.connect_endpoint().unwrap();
        let ep1 = ch.connect_endpoint().unwrap();
        let t = ch.send(SimTime::ZERO, Bytes::from_static(b"x")).unwrap();
        assert_eq!(ch.stats().sent, 1, "one send covers all endpoints");
        assert!(ch.recv(t, ep0).is_some());
        assert!(ch.recv(t, ep1).is_some());
    }

    #[test]
    fn latency_scales_with_size() {
        let cost = ZeroCopyDmaProvider.cost(&ChannelConfig::figure3(DeviceId(1)));
        assert!(cost.latency(1_000_000) > cost.latency(100) * 10);
    }

    #[test]
    fn handler_installation_flag() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        assert!(!e.get(id).unwrap().has_handler());
        e.get_mut(id).unwrap().install_handler();
        assert!(e.get(id).unwrap().has_handler());
    }

    #[test]
    fn destroy_removes_channel() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        assert!(e.destroy(id));
        assert!(!e.destroy(id));
        assert!(e.get(id).is_none());
        assert!(e.is_empty());
    }

    fn payloads(n: usize, bytes: usize) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::from(vec![i as u8; bytes])).collect()
    }

    #[test]
    fn batched_send_beats_singles_in_sim_time() {
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let mut e = exec();
        let single = e.create_channel(cfg).unwrap();
        let batched = e.create_channel(cfg).unwrap();
        e.get_mut(single).unwrap().connect_endpoint().unwrap();
        e.get_mut(batched).unwrap().connect_endpoint().unwrap();
        let msgs = payloads(8, 1024);
        let mut last_single = SimTime::ZERO;
        for m in &msgs {
            last_single = e
                .get_mut(single)
                .unwrap()
                .send(SimTime::ZERO, m.clone())
                .unwrap();
        }
        let outcome = e.get_mut(batched).unwrap().send_batch(SimTime::ZERO, &msgs);
        assert_eq!(outcome.accepted(), 8);
        // One doorbell instead of eight: exactly 7 fixed charges
        // (descriptor prep + launch overhead) saved.
        let cost = e.get(single).unwrap().cost();
        let fixed = cost.per_message + cost.launch_overhead;
        assert_eq!(outcome.complete_at + fixed * 7, last_single);
    }

    #[test]
    fn batch_delivery_matches_single_path_order() {
        let cfg = ChannelConfig::figure3(DeviceId(1));
        let mut e = exec();
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let msgs = payloads(5, 64);
        let outcome = ch.send_batch(SimTime::ZERO, &msgs);
        // Delivery instants are strictly increasing (FIFO preserved).
        for w in outcome.delivered_at.windows(2) {
            assert!(w[0] < w[1]);
        }
        let got = ch.recv_batch(outcome.complete_at, ep, usize::MAX);
        assert_eq!(got.len(), 5);
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m.data, msgs[i]);
        }
        assert_eq!(ch.stats().sent, 5);
        assert_eq!(ch.stats().received, 5);
    }

    #[test]
    fn send_batch_into_reuses_buffer_and_matches_send_batch() {
        let mk = || {
            let mut e = exec();
            let mut cfg = ChannelConfig::figure3(DeviceId(1));
            cfg.capacity = 4;
            let id = e.create_channel(cfg).unwrap();
            (e, id)
        };
        let (mut e1, id1) = mk();
        let (mut e2, id2) = mk();
        e1.get_mut(id1).unwrap().connect_endpoint().unwrap();
        e2.get_mut(id2).unwrap().connect_endpoint().unwrap();

        let mut reused = BatchSendOutcome {
            delivered_at: Vec::new(),
            rejected: 0,
            dropped: 0,
            complete_at: SimTime::ZERO,
            retries: 0,
        };
        // Same channel state, same batches: the reusing path must produce
        // outcome-identical results to the allocating path, round after
        // round, without the vector ever shrinking (steady state = no
        // allocation once it has grown to the working batch size).
        for round in 0..4u64 {
            let msgs = payloads(6, 32 + round as usize);
            let now = SimTime::from_micros(round * 50);
            let fresh = e1.get_mut(id1).unwrap().send_batch(now, &msgs);
            e2.get_mut(id2)
                .unwrap()
                .send_batch_into(now, &msgs, &mut reused);
            assert_eq!(reused, fresh, "round {round}");
            assert!(reused.delivered_at.capacity() >= reused.accepted());
            let cap = reused.delivered_at.capacity();
            // Drain both so the next round starts from identical state.
            for (e, id) in [(&mut e1, id1), (&mut e2, id2)] {
                let ch = e.get_mut(id).unwrap();
                ch.recv_batch(fresh.complete_at, 0, usize::MAX);
            }
            e2.get_mut(id2).unwrap().send_batch_into(
                SimTime::from_micros(round * 50 + 25),
                &[],
                &mut reused,
            );
            assert_eq!(reused.accepted(), 0);
            assert_eq!(
                reused.delivered_at.capacity(),
                cap,
                "clear() keeps the buffer"
            );
        }
    }

    #[test]
    fn reliable_batch_rejects_overflow_with_per_message_drops() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 3;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(5, 16));
        assert_eq!(outcome.accepted(), 3);
        assert_eq!(outcome.rejected, 2);
        assert_eq!(outcome.dropped, 0);
        assert_eq!(ch.stats().sent, 3);
        let snap = e.recorder().snapshot();
        assert_eq!(snap.counter_total("channel.rejected"), 2);
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 2, "one drop event per rejected message");
        assert!(drops.iter().all(|d| d.name == "channel.reject"));
    }

    #[test]
    fn unreliable_batch_drops_overflow_and_counts() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(2));
        cfg.capacity = 2;
        cfg.reliability = Reliability::Unreliable;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(6, 16));
        assert_eq!(
            (outcome.accepted(), outcome.rejected, outcome.dropped),
            (2, 0, 4)
        );
        assert_eq!(ch.stats().dropped, 4);
        let snap = e.recorder().snapshot();
        assert_eq!(snap.counter_total("channel.dropped"), 4);
        assert_eq!(snap.events_kind("drop").len(), 4);
    }

    #[test]
    fn batch_amortizes_flight_events_and_aggregates_counters() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(3)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(8, 128));
        ch.recv_batch(outcome.complete_at, ep, usize::MAX);
        let snap = e.recorder().snapshot();
        // One send + one hop event for the whole batch...
        assert_eq!(snap.events_kind("send").len(), 1);
        assert_eq!(snap.events_kind("hop").len(), 1);
        // ...but chain closure stays per message.
        assert_eq!(snap.events_kind("recv").len(), 8);
        assert_eq!(snap.counter_total("channel.sent"), 8);
        assert_eq!(snap.counter_total("channel.bytes"), 8 * 128);
        assert_eq!(snap.counter_total("channel.batches"), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::from_micros(5), &[]);
        assert_eq!(outcome.accepted(), 0);
        assert_eq!(outcome.complete_at, SimTime::from_micros(5));
        assert!(e.recorder().snapshot().events.is_empty());
    }

    #[test]
    fn recv_batch_respects_visibility_and_max() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(4, 32));
        // Nothing visible before the first delivery.
        assert!(ch.recv_batch(SimTime::ZERO, ep, usize::MAX).is_empty());
        // Only the first two visible at the second delivery instant.
        let t2 = outcome.delivered_at[1];
        assert_eq!(ch.recv_batch(t2, ep, usize::MAX).len(), 2);
        // `max` caps the dequeue even when more is visible.
        assert_eq!(ch.recv_batch(outcome.complete_at, ep, 1).len(), 1);
        assert_eq!(ch.backlog(ep), 1);
    }

    #[test]
    fn retry_backoff_admits_once_ring_drains() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
            4,
            SimDuration::from_micros(10),
            SimDuration::from_millis(1),
        ));
        cfg.capacity = 2;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let t1 = ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        let t2 = ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
        assert!(t2 > t1);
        // Ring full at ZERO — but both slots free once the device has
        // consumed the payloads (deliver instants pass), so backoff
        // eventually admits the third send instead of blocking.
        let t3 = ch.send(SimTime::ZERO, Bytes::from_static(b"c")).unwrap();
        assert!(t3 > t2, "retried send delivers after the earlier ones");
        assert_eq!(ch.stats().sent, 3);
        let snap = e.recorder().snapshot();
        assert!(snap.counter_total("channel.retries") >= 1);
        assert_eq!(snap.counter_total("channel.rejected"), 0);
    }

    #[test]
    fn retry_timeout_still_blocks() {
        let mut e = exec();
        // Backoff instants: 10us, 30us, 70us… but the ring only frees
        // after its in-flight payloads deliver (several microseconds per
        // message) — with a 1us timeout no attempt fits.
        let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
            3,
            SimDuration::from_micros(10),
            SimDuration::from_micros(1),
        ));
        cfg.capacity = 1;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"b")),
            Err(ChannelError::WouldBlock)
        );
        let snap = e.recorder().snapshot();
        assert_eq!(snap.counter_total("channel.retries"), 0);
        assert_eq!(snap.counter_total("channel.rejected"), 1);
    }

    #[test]
    fn batch_overflow_retries_surface_in_outcome() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
            8,
            SimDuration::from_micros(20),
            SimDuration::from_millis(10),
        ));
        cfg.capacity = 3;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        let outcome = ch.send_batch(SimTime::ZERO, &payloads(5, 16));
        // 3 fit the headroom; the 2 overflow messages back off and get in.
        assert_eq!(outcome.accepted(), 5);
        assert_eq!(outcome.rejected, 0);
        assert!(
            outcome.retries >= 2,
            "retries surfaced: {}",
            outcome.retries
        );
        assert_eq!(ch.stats().sent, 5);
        // Without retry the same batch rejects the overflow and reports
        // zero retries.
        cfg.retry = RetryPolicy::none();
        let id2 = e.create_channel(cfg).unwrap();
        let ch2 = e.get_mut(id2).unwrap();
        ch2.connect_endpoint().unwrap();
        let outcome2 = ch2.send_batch(SimTime::ZERO, &payloads(5, 16));
        assert_eq!(
            (outcome2.accepted(), outcome2.rejected, outcome2.retries),
            (3, 2, 0)
        );
    }

    #[test]
    fn retry_is_deterministic() {
        let run = || {
            let mut e = exec();
            let mut cfg = ChannelConfig::figure3(DeviceId(1)).with_retry(RetryPolicy::new(
                5,
                SimDuration::from_micros(7),
                SimDuration::from_millis(2),
            ));
            cfg.capacity = 2;
            let id = e.create_channel(cfg).unwrap();
            let ch = e.get_mut(id).unwrap();
            ch.connect_endpoint().unwrap();
            let mut ts = Vec::new();
            for i in 0..6u8 {
                ts.push(ch.send(SimTime::ZERO, Bytes::from(vec![i; 64])).ok());
            }
            ts
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cost_profile_tracks_observed_prices() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        assert_eq!(ch.cost_profile().messages(), 0);
        assert_eq!(ch.cost_profile().ewma_latency_ns(), 0);
        assert!(ch.cost_profile().throughput_bytes_per_sec().is_none());
        // Two size classes: small control messages and large payloads.
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now = ch.send(now, Bytes::from(vec![0u8; 100])).unwrap();
        }
        for _ in 0..5 {
            now = ch.send(now, Bytes::from(vec![0u8; 60_000])).unwrap();
        }
        ch.recv_batch(now, ep, usize::MAX);
        let p = ch.cost_profile();
        assert_eq!(p.messages(), 15);
        assert_eq!(p.bytes(), 10 * 100 + 5 * 60_000);
        assert_eq!(p.doorbells(), 15);
        let fixed = ch.cost().launch_charge(true).as_nanos();
        assert_eq!(p.launch_overhead_ns(), 15 * fixed);
        // Each send was issued at the previous delivery instant, so the
        // observed latency is the unloaded cost — and the size classes
        // land in distinct buckets with distinct quantiles.
        let small = p.latency_for(100).unwrap();
        let large = p.latency_for(60_000).unwrap();
        assert_eq!(small.count(), 10);
        assert_eq!(large.count(), 5);
        assert!(large.p50().unwrap() > small.p99().unwrap());
        assert_eq!(CostProfile::size_bucket(100), 128);
        assert_eq!(CostProfile::size_bucket(60_000), 65_536);
        assert_eq!(CostProfile::size_bucket(0), 1);
        assert!(p.ewma_latency_ns() > 0);
        assert!(p.throughput_bytes_per_sec().unwrap() > 0);
        let buckets: Vec<u64> = p.size_buckets().map(|(b, _)| b).collect();
        assert_eq!(buckets, vec![128, 65_536]);
    }

    #[test]
    fn batch_pays_one_launch_overhead_charge() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send_batch(SimTime::ZERO, &payloads(8, 256));
        let p = ch.cost_profile();
        assert_eq!(p.messages(), 8);
        assert_eq!(p.doorbells(), 1, "one doorbell for the whole batch");
        assert_eq!(
            p.launch_overhead_ns(),
            ch.cost().launch_charge(true).as_nanos()
        );
    }

    #[test]
    fn queue_depth_level_rises_and_drains() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let mut last = SimTime::ZERO;
        for i in 0..3u8 {
            last = ch.send(SimTime::ZERO, Bytes::from(vec![i; 64])).unwrap();
        }
        e.recorder().sample_window(SimTime::from_millis(1));
        e.get_mut(id).unwrap().recv_batch(last, ep, usize::MAX);
        e.recorder().sample_window(SimTime::from_millis(2));
        let snap = e.recorder().snapshot();
        assert_eq!(
            snap.windows[0].level(CHANNEL_QUEUE_DEPTH, "chan#0"),
            Some(3)
        );
        assert_eq!(
            snap.windows[1].level(CHANNEL_QUEUE_DEPTH, "chan#0"),
            Some(0)
        );
    }

    #[test]
    fn closed_endpoint_receives_nothing_and_drops_queued() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(1)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let t = ch.send(SimTime::ZERO, Bytes::from_static(b"x")).unwrap();
        assert!(ch.close_endpoint(ep));
        assert!(!ch.close_endpoint(ep), "double close is a no-op");
        assert!(!ch.endpoint_open(ep));
        assert_eq!(ch.open_endpoints(), 0);
        assert!(ch.recv(t, ep).is_none());
        assert!(!ch.poll(t, ep));
        assert!(ch.recv_batch(t, ep, usize::MAX).is_empty());
        // The queued message's trace terminated with a drop event.
        let snap = e.recorder().snapshot();
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].name, "channel.endpoint_closed");
        assert_eq!(snap.counter_total("channel.endpoint_closed"), 1);
    }

    #[test]
    fn wedged_slots_shrink_the_ring() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 4;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.set_wedged_slots(3);
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"b")),
            Err(ChannelError::WouldBlock),
            "capacity 4 minus 3 wedged slots leaves room for one"
        );
    }

    #[test]
    fn send_recv_emits_connected_trace_chain() {
        let mut e = exec();
        let id = e
            .create_channel(ChannelConfig::figure3(DeviceId(3)))
            .unwrap();
        let ch = e.get_mut(id).unwrap();
        let ep = ch.connect_endpoint().unwrap();
        let t = ch.send(SimTime::ZERO, Bytes::from_static(b"call")).unwrap();
        ch.recv(t, ep).unwrap();
        let snap = e.recorder().snapshot();
        let sends = snap.events_kind("send");
        let hops = snap.events_kind("hop");
        let recvs = snap.events_kind("recv");
        assert_eq!((sends.len(), hops.len(), recvs.len()), (1, 1, 1));
        // One connected chain: send -> hop -> recv.
        assert_eq!(hops[0].parent, Some(sends[0].id));
        assert_eq!(recvs[0].parent, Some(hops[0].id));
        assert!(sends
            .iter()
            .chain(&hops)
            .chain(&recvs)
            .all(|e| e.trace == sends[0].trace));
        // The chain spans host (pid 0) and the target device (pid 3).
        assert_eq!(sends[0].device, 0);
        assert_eq!(hops[0].device, 3);
        assert_eq!(recvs[0].device, 3);
    }

    #[test]
    fn rejected_send_closes_trace_with_drop() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(1));
        cfg.capacity = 1;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            ch.send(SimTime::ZERO, Bytes::from_static(b"b")),
            Err(ChannelError::WouldBlock)
        );
        let snap = e.recorder().snapshot();
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].name, "channel.reject");
        assert_eq!(
            snap.counter("channel.rejected", "zero-copy-dma"),
            Some(1),
            "reliable rejection has its own counter"
        );
    }

    #[test]
    fn unreliable_drop_and_destroy_close_traces() {
        let mut e = exec();
        let mut cfg = ChannelConfig::figure3(DeviceId(2));
        cfg.capacity = 1;
        cfg.reliability = Reliability::Unreliable;
        let id = e.create_channel(cfg).unwrap();
        let ch = e.get_mut(id).unwrap();
        ch.connect_endpoint().unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"a")).unwrap();
        ch.send(SimTime::ZERO, Bytes::from_static(b"b")).unwrap();
        // Destroy with "a" still queued: its trace must also terminate.
        e.destroy(id);
        let snap = e.recorder().snapshot();
        let drops = snap.events_kind("drop");
        assert_eq!(drops.len(), 2);
        assert_eq!(drops[0].name, "channel.drop");
        assert_eq!(drops[1].name, "channel.destroyed");
        // Every minted trace ends in a terminal event (recv or drop).
        for send in snap.events_kind("send") {
            let chain = snap.trace_events(send.trace);
            let last = chain.last().unwrap();
            assert!(last.kind == "recv" || last.kind == "drop");
        }
    }
}
