//! Pseudo-Offcodes (paper §4).
//!
//! "Pseudo Offcodes are runtime components that happen to be implemented
//! as Offcodes … having the Offcodes communicate with the run-time through
//! pseudo Offcodes is an easy way of limiting the number of symbols that
//! need to be resolved." Two of the paper's examples are provided:
//! `hydra.Heap` (device memory services) and `hydra.Runtime` (runtime
//! introspection). Their exported symbols are exactly the entries every
//! [`DeviceDescriptor`]'s firmware export table carries.
//!
//! [`DeviceDescriptor`]: crate::device::DeviceDescriptor

use hydra_hw::cpu::Cycles;
use hydra_link::loader::DeviceMemoryAllocator;
use hydra_odf::odf::{Guid, OdfDocument};
use hydra_odf::wsdl::{InterfaceSpec, OperationSpec, TypeTag};

use crate::call::{Call, Value};
use crate::error::RuntimeError;
use crate::offcode::{Offcode, OffcodeCtx};

/// Reserved GUID of `hydra.Runtime`.
pub const RUNTIME_GUID: Guid = Guid(0xF000);
/// Reserved GUID of `hydra.Heap`.
pub const HEAP_GUID: Guid = Guid(0xF001);

/// The `hydra.Heap` pseudo-Offcode: alloc/free over a private region of
/// the hosting device's memory.
#[derive(Debug)]
pub struct HeapOffcode {
    allocator: DeviceMemoryAllocator,
    live: u64,
}

impl HeapOffcode {
    /// Creates a heap over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        HeapOffcode {
            allocator: DeviceMemoryAllocator::new(0x8000_0000, capacity),
            live: 0,
        }
    }

    /// The ODF describing this pseudo-Offcode (deployable anywhere).
    pub fn odf() -> OdfDocument {
        OdfDocument::new("hydra.Heap", HEAP_GUID)
    }

    /// The WSDL-lite interface.
    pub fn interface() -> InterfaceSpec {
        InterfaceSpec::new("IHeap", HEAP_GUID)
            .with_operation(OperationSpec {
                name: "alloc".into(),
                inputs: vec![("size".into(), TypeTag::U64)],
                output: TypeTag::U64,
            })
            .with_operation(OperationSpec {
                name: "free".into(),
                inputs: vec![("addr".into(), TypeTag::U64)],
                output: TypeTag::Unit,
            })
            .with_operation(OperationSpec {
                name: "stats".into(),
                inputs: vec![],
                output: TypeTag::U64,
            })
    }
}

impl Offcode for HeapOffcode {
    fn guid(&self) -> Guid {
        HEAP_GUID
    }

    fn bind_name(&self) -> &'static str {
        "hydra.Heap"
    }

    fn handle_call(&mut self, ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError> {
        ctx.charge(Cycles::new(200));
        match call.operation.as_str() {
            "alloc" => {
                let size = call
                    .args
                    .first()
                    .and_then(Value::as_u64)
                    .ok_or_else(|| RuntimeError::Rejected("alloc needs a size".into()))?;
                let addr = self
                    .allocator
                    .allocate(size)
                    .map_err(|e| RuntimeError::Rejected(e.to_string()))?;
                self.live += 1;
                Ok(Value::U64(addr))
            }
            "free" => {
                // The bump allocator reclaims on reset only; free tracks
                // liveness so leaks are observable.
                if self.live == 0 {
                    return Err(RuntimeError::Rejected("free without alloc".into()));
                }
                self.live -= 1;
                if self.live == 0 {
                    self.allocator.reset();
                }
                Ok(Value::Unit)
            }
            "stats" => Ok(Value::U64(self.allocator.used())),
            other => Err(RuntimeError::UnknownOperation(other.to_owned())),
        }
    }
}

/// The `hydra.Runtime` pseudo-Offcode: introspection surface.
#[derive(Debug, Default)]
pub struct RuntimeInfoOffcode {
    calls_served: u64,
}

impl RuntimeInfoOffcode {
    /// Creates the pseudo-Offcode.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ODF describing this pseudo-Offcode.
    pub fn odf() -> OdfDocument {
        OdfDocument::new("hydra.Runtime", RUNTIME_GUID)
    }

    /// The WSDL-lite interface.
    pub fn interface() -> InterfaceSpec {
        InterfaceSpec::new("IRuntime", RUNTIME_GUID)
            .with_operation(OperationSpec {
                name: "version".into(),
                inputs: vec![],
                output: TypeTag::Str,
            })
            .with_operation(OperationSpec {
                name: "device".into(),
                inputs: vec![],
                output: TypeTag::U64,
            })
            .with_operation(OperationSpec {
                name: "calls_served".into(),
                inputs: vec![],
                output: TypeTag::U64,
            })
    }
}

impl Offcode for RuntimeInfoOffcode {
    fn guid(&self) -> Guid {
        RUNTIME_GUID
    }

    fn bind_name(&self) -> &'static str {
        "hydra.Runtime"
    }

    fn handle_call(&mut self, ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError> {
        ctx.charge(Cycles::new(50));
        self.calls_served += 1;
        match call.operation.as_str() {
            "version" => Ok(Value::Str("hydra-0.1 (ASPLOS'08 reproduction)".into())),
            "device" => Ok(Value::U64(u64::from(ctx.device().0))),
            "calls_served" => Ok(Value::U64(self.calls_served)),
            other => Err(RuntimeError::UnknownOperation(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;
    use hydra_sim::time::SimTime;

    fn ctx() -> OffcodeCtx {
        OffcodeCtx::new(SimTime::ZERO, DeviceId(2))
    }

    #[test]
    fn heap_alloc_free_cycle() {
        let mut heap = HeapOffcode::new(1024);
        let mut c = ctx();
        let call = Call::new(HEAP_GUID, "alloc").with_arg(Value::U64(100));
        let Value::U64(addr) = heap.handle_call(&mut c, &call).unwrap() else {
            panic!()
        };
        assert!(addr >= 0x8000_0000);
        let stats = Call::new(HEAP_GUID, "stats");
        assert_eq!(
            heap.handle_call(&mut c, &stats).unwrap(),
            Value::U64(112) // 16-byte aligned
        );
        let free = Call::new(HEAP_GUID, "free").with_arg(Value::U64(addr));
        heap.handle_call(&mut c, &free).unwrap();
        assert_eq!(heap.handle_call(&mut c, &stats).unwrap(), Value::U64(0));
    }

    #[test]
    fn heap_exhaustion_and_misuse_rejected() {
        let mut heap = HeapOffcode::new(64);
        let mut c = ctx();
        let big = Call::new(HEAP_GUID, "alloc").with_arg(Value::U64(1_000));
        assert!(matches!(
            heap.handle_call(&mut c, &big),
            Err(RuntimeError::Rejected(_))
        ));
        let free = Call::new(HEAP_GUID, "free").with_arg(Value::U64(0));
        assert!(heap.handle_call(&mut c, &free).is_err());
        let no_arg = Call::new(HEAP_GUID, "alloc");
        assert!(heap.handle_call(&mut c, &no_arg).is_err());
    }

    #[test]
    fn heap_calls_type_check_against_interface() {
        let spec = HeapOffcode::interface();
        let good = Call::new(HEAP_GUID, "alloc").with_arg(Value::U64(8));
        assert!(good.check_against(&spec).is_ok());
        let bad = Call::new(HEAP_GUID, "alloc").with_arg(Value::Str("8".into()));
        assert!(bad.check_against(&spec).is_err());
    }

    #[test]
    fn runtime_info_reports_device_and_counts() {
        let mut info = RuntimeInfoOffcode::new();
        let mut c = ctx();
        assert_eq!(
            info.handle_call(&mut c, &Call::new(RUNTIME_GUID, "device"))
                .unwrap(),
            Value::U64(2)
        );
        info.handle_call(&mut c, &Call::new(RUNTIME_GUID, "version"))
            .unwrap();
        assert_eq!(
            info.handle_call(&mut c, &Call::new(RUNTIME_GUID, "calls_served"))
                .unwrap(),
            Value::U64(3)
        );
    }
}
