//! Transparent invocation proxies (paper §3.1).
//!
//! "Achieving syntactic transparency for Offcode invocation requires the
//! use of some 'proxy' element that has a similar interface as the target
//! Offcode. … All interface methods return a Call object." [`Proxy`] is
//! that element: bound to a WSDL-lite interface spec and a target, each
//! `call` type-checks the arguments and produces a marshaled [`Call`]
//! with a fresh return descriptor, ready to be sent over a channel (or
//! passed straight to [`Runtime::invoke`]).
//!
//! [`Runtime::invoke`]: crate::runtime::Runtime::invoke

use hydra_odf::wsdl::InterfaceSpec;

use crate::call::{Call, Value};
use crate::error::RuntimeError;
use crate::offcode::OffcodeId;

/// A typed call factory for one interface of one deployed Offcode.
///
/// # Examples
///
/// ```
/// use hydra_core::call::Value;
/// use hydra_core::offcode::OffcodeId;
/// use hydra_core::proxy::Proxy;
/// use hydra_odf::odf::Guid;
/// use hydra_odf::wsdl::{InterfaceSpec, OperationSpec, TypeTag};
///
/// let spec = InterfaceSpec::new("ICounter", Guid(7)).with_operation(OperationSpec {
///     name: "add".into(),
///     inputs: vec![("n".into(), TypeTag::U64)],
///     output: TypeTag::U64,
/// });
/// let mut proxy = Proxy::new(spec, OffcodeId(1));
/// let call = proxy.call("add", vec![Value::U64(3)]).unwrap();
/// assert_eq!(call.operation, "add");
/// assert_eq!(call.return_id, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Proxy {
    spec: InterfaceSpec,
    target: OffcodeId,
    next_return_id: u64,
}

impl Proxy {
    /// Binds a proxy to an interface and a deployed target.
    pub fn new(spec: InterfaceSpec, target: OffcodeId) -> Self {
        Proxy {
            spec,
            target,
            next_return_id: 1,
        }
    }

    /// The target instance.
    pub fn target(&self) -> OffcodeId {
        self.target
    }

    /// The bound interface.
    pub fn interface(&self) -> &InterfaceSpec {
        &self.spec
    }

    /// Builds a type-checked call with a fresh return descriptor.
    ///
    /// # Errors
    ///
    /// Fails if the operation is unknown or the arguments do not match the
    /// interface.
    pub fn call(&mut self, operation: &str, args: Vec<Value>) -> Result<Call, RuntimeError> {
        let mut call = Call::new(self.spec.guid, operation).with_return_id(self.next_return_id);
        call.args = args;
        call.check_against(&self.spec)?;
        self.next_return_id += 1;
        Ok(call)
    }

    /// Builds a one-way (no return descriptor) type-checked call.
    ///
    /// # Errors
    ///
    /// Same as [`Proxy::call`].
    pub fn one_way(&self, operation: &str, args: Vec<Value>) -> Result<Call, RuntimeError> {
        let mut call = Call::new(self.spec.guid, operation);
        call.args = args;
        call.check_against(&self.spec)?;
        Ok(call)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_odf::odf::Guid;
    use hydra_odf::wsdl::{OperationSpec, TypeTag};

    fn proxy() -> Proxy {
        let spec = InterfaceSpec::new("IChecksum", Guid(500)).with_operation(OperationSpec {
            name: "checksum".into(),
            inputs: vec![("data".into(), TypeTag::Bytes)],
            output: TypeTag::U32,
        });
        Proxy::new(spec, OffcodeId(9))
    }

    #[test]
    fn return_ids_increment() {
        let mut p = proxy();
        let arg = || vec![Value::Bytes(bytes::Bytes::from_static(b"x"))];
        assert_eq!(p.call("checksum", arg()).unwrap().return_id, 1);
        assert_eq!(p.call("checksum", arg()).unwrap().return_id, 2);
        assert_eq!(p.one_way("checksum", arg()).unwrap().return_id, 0);
    }

    #[test]
    fn type_errors_surface() {
        let mut p = proxy();
        assert!(p.call("checksum", vec![Value::U32(1)]).is_err());
        assert!(p.call("missing", vec![]).is_err());
        // Failed calls do not consume return ids.
        let ok = p
            .call("checksum", vec![Value::Bytes(bytes::Bytes::new())])
            .unwrap();
        assert_eq!(ok.return_id, 1);
    }

    #[test]
    fn accessors() {
        let p = proxy();
        assert_eq!(p.target(), OffcodeId(9));
        assert_eq!(p.interface().name, "IChecksum");
    }
}
