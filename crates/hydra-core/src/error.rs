//! The runtime's unified error type.

use std::fmt;

use hydra_link::loader::LoadError;
use hydra_odf::odf::{Guid, OdfError};

use crate::call::{CallTypeError, MarshalError};
use crate::channel::ChannelError;
use crate::layout::LayoutError;

/// Any failure surfaced by the HYDRA runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// An ODF could not be parsed or validated.
    Odf(OdfError),
    /// Layout construction or resolution failed.
    Layout(LayoutError),
    /// Channel creation or use failed.
    Channel(ChannelError),
    /// Offcode loading failed (device memory, linking).
    Load(LoadError),
    /// Call marshaling failed.
    Marshal(MarshalError),
    /// A call failed interface type checking.
    CallType(CallTypeError),
    /// No Offcode with this GUID is registered in the depot.
    NotInDepot(Guid),
    /// The referenced deployed instance does not exist.
    NoSuchInstance(u64),
    /// An Offcode rejected an operation.
    Rejected(String),
    /// An Offcode does not implement the requested operation.
    UnknownOperation(String),
    /// An entry point was invoked in the wrong lifecycle state.
    BadState(&'static str),
    /// The static pre-flight verifier rejected the deployment. The string
    /// is the human rendering of every error-severity diagnostic.
    Verification(String),
}

macro_rules! from_impl {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for RuntimeError {
            fn from(e: $ty) -> Self {
                RuntimeError::$variant(e)
            }
        }
    };
}

from_impl!(Odf, OdfError);
from_impl!(Layout, LayoutError);
from_impl!(Channel, ChannelError);
from_impl!(Load, LoadError);
from_impl!(Marshal, MarshalError);
from_impl!(CallType, CallTypeError);

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Odf(e) => write!(f, "odf: {e}"),
            RuntimeError::Layout(e) => write!(f, "layout: {e}"),
            RuntimeError::Channel(e) => write!(f, "channel: {e}"),
            RuntimeError::Load(e) => write!(f, "load: {e}"),
            RuntimeError::Marshal(e) => write!(f, "marshal: {e}"),
            RuntimeError::CallType(e) => write!(f, "call type: {e}"),
            RuntimeError::NotInDepot(g) => write!(f, "offcode {g} not in depot"),
            RuntimeError::NoSuchInstance(id) => write!(f, "no deployed offcode #{id}"),
            RuntimeError::Rejected(why) => write!(f, "rejected: {why}"),
            RuntimeError::UnknownOperation(op) => write!(f, "unknown operation '{op}'"),
            RuntimeError::BadState(what) => write!(f, "bad lifecycle state: {what}"),
            RuntimeError::Verification(report) => {
                write!(f, "deployment rejected by verifier: {report}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = OdfError::Missing("package").into();
        assert!(e.to_string().contains("package"));
        let e: RuntimeError = ChannelError::NoProvider.into();
        assert!(e.to_string().contains("provider"));
        let e = RuntimeError::NotInDepot(Guid(7));
        assert!(e.to_string().contains("guid:7"));
    }
}
