//! The runtime's unified error type.

use std::fmt;

use hydra_link::loader::LoadError;
use hydra_odf::odf::{Guid, OdfError};

use crate::call::{CallTypeError, MarshalError};
use crate::channel::ChannelError;
use crate::device::DeviceId;
use crate::layout::LayoutError;
use crate::offcode::OffcodeId;

/// Which leg of a migration failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateLeg {
    /// Loading/linking the image at the target.
    Load,
    /// Restoring the state snapshot into the new instance.
    Restore,
    /// The `Initialize` phase hook.
    Initialize,
    /// The `Start` phase hook.
    Start,
}

impl fmt::Display for MigrateLeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MigrateLeg::Load => "load",
            MigrateLeg::Restore => "restore",
            MigrateLeg::Initialize => "initialize",
            MigrateLeg::Start => "start",
        })
    }
}

/// A structured migration failure from [`Runtime::migrate`].
///
/// The variants make the transactional contract explicit: for the first
/// four the original instance is **untouched** (nothing was destroyed);
/// [`MigrateError::FellBack`] means the original was torn down but the
/// Offcode survived — it is running on the host with its snapshot
/// restored; only [`MigrateError::Unrecoverable`] loses the instance.
///
/// [`Runtime::migrate`]: crate::runtime::Runtime::migrate
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// The Offcode does not implement `snapshot` — nothing to carry over.
    NotMigratable {
        /// Bind name of the Offcode.
        bind_name: String,
    },
    /// The target device does not match the ODF's device-class targets.
    IncompatibleTarget {
        /// Bind name of the Offcode.
        bind_name: String,
        /// The requested target.
        target: DeviceId,
    },
    /// The hydra-verify capacity precheck says the target cannot take the
    /// Offcode's footprint. Original instance untouched.
    InsufficientCapacity {
        /// Bind name of the Offcode.
        bind_name: String,
        /// The requested target.
        target: DeviceId,
        /// The verifier's diagnostics.
        detail: String,
    },
    /// Loading the image at the target failed before teardown (a
    /// non-capacity load error). Original instance untouched.
    TargetLoadFailed {
        /// Bind name of the Offcode.
        bind_name: String,
        /// The requested target.
        target: DeviceId,
        /// The loader's error.
        detail: String,
    },
    /// A post-teardown leg failed; the Offcode was redeployed on the host
    /// with its snapshot restored. `fallback` is the live instance.
    FellBack {
        /// Bind name of the Offcode.
        bind_name: String,
        /// Which leg failed on the target.
        leg: MigrateLeg,
        /// The underlying error.
        detail: String,
        /// The host-fallback instance now running.
        fallback: OffcodeId,
    },
    /// A post-teardown leg failed **and** the host fallback failed too:
    /// the instance is gone.
    Unrecoverable {
        /// Bind name of the Offcode.
        bind_name: String,
        /// Which leg failed on the target.
        leg: MigrateLeg,
        /// Both errors, target then fallback.
        detail: String,
    },
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::NotMigratable { bind_name } => {
                write!(f, "{bind_name} is not migratable (no snapshot support)")
            }
            MigrateError::IncompatibleTarget { bind_name, target } => {
                write!(f, "{target} is not a compatible target for {bind_name}")
            }
            MigrateError::InsufficientCapacity {
                bind_name,
                target,
                detail,
            } => write!(f, "{target} lacks capacity for {bind_name}: {detail}"),
            MigrateError::TargetLoadFailed {
                bind_name,
                target,
                detail,
            } => write!(f, "loading {bind_name} at {target} failed: {detail}"),
            MigrateError::FellBack {
                bind_name,
                leg,
                detail,
                fallback,
            } => write!(
                f,
                "{bind_name} migration failed at {leg} ({detail}); \
                 recovered on host as #{}",
                fallback.0
            ),
            MigrateError::Unrecoverable {
                bind_name,
                leg,
                detail,
            } => write!(
                f,
                "{bind_name} migration failed at {leg} and host fallback \
                 failed too: {detail}"
            ),
        }
    }
}

impl std::error::Error for MigrateError {}

/// Any failure surfaced by the HYDRA runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// An ODF could not be parsed or validated.
    Odf(OdfError),
    /// Layout construction or resolution failed.
    Layout(LayoutError),
    /// Channel creation or use failed.
    Channel(ChannelError),
    /// Offcode loading failed (device memory, linking).
    Load(LoadError),
    /// Call marshaling failed.
    Marshal(MarshalError),
    /// A call failed interface type checking.
    CallType(CallTypeError),
    /// No Offcode with this GUID is registered in the depot.
    NotInDepot(Guid),
    /// The referenced deployed instance does not exist.
    NoSuchInstance(u32),
    /// An Offcode rejected an operation.
    Rejected(String),
    /// An Offcode does not implement the requested operation.
    UnknownOperation(String),
    /// An entry point was invoked in the wrong lifecycle state.
    BadState(&'static str),
    /// The static pre-flight verifier rejected the deployment. The string
    /// is the human rendering of every error-severity diagnostic.
    Verification(String),
    /// A migration failed; see [`MigrateError`] for what survived.
    Migrate(MigrateError),
}

macro_rules! from_impl {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for RuntimeError {
            fn from(e: $ty) -> Self {
                RuntimeError::$variant(e)
            }
        }
    };
}

from_impl!(Odf, OdfError);
from_impl!(Layout, LayoutError);
from_impl!(Channel, ChannelError);
from_impl!(Load, LoadError);
from_impl!(Marshal, MarshalError);
from_impl!(CallType, CallTypeError);
from_impl!(Migrate, MigrateError);

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Odf(e) => write!(f, "odf: {e}"),
            RuntimeError::Layout(e) => write!(f, "layout: {e}"),
            RuntimeError::Channel(e) => write!(f, "channel: {e}"),
            RuntimeError::Load(e) => write!(f, "load: {e}"),
            RuntimeError::Marshal(e) => write!(f, "marshal: {e}"),
            RuntimeError::CallType(e) => write!(f, "call type: {e}"),
            RuntimeError::NotInDepot(g) => write!(f, "offcode {g} not in depot"),
            RuntimeError::NoSuchInstance(id) => write!(f, "no deployed offcode #{id}"),
            RuntimeError::Rejected(why) => write!(f, "rejected: {why}"),
            RuntimeError::UnknownOperation(op) => write!(f, "unknown operation '{op}'"),
            RuntimeError::BadState(what) => write!(f, "bad lifecycle state: {what}"),
            RuntimeError::Verification(report) => {
                write!(f, "deployment rejected by verifier: {report}")
            }
            RuntimeError::Migrate(e) => write!(f, "migrate: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = OdfError::Missing("package").into();
        assert!(e.to_string().contains("package"));
        let e: RuntimeError = ChannelError::NoProvider.into();
        assert!(e.to_string().contains("provider"));
        let e = RuntimeError::NotInDepot(Guid(7));
        assert!(e.to_string().contains("guid:7"));
        let e: RuntimeError = MigrateError::NotMigratable {
            bind_name: "tivo.Streamer".into(),
        }
        .into();
        assert!(e.to_string().contains("not migratable"));
        let e = MigrateError::FellBack {
            bind_name: "tivo.Streamer".into(),
            leg: MigrateLeg::Restore,
            detail: "boom".into(),
            fallback: OffcodeId(9),
        };
        assert!(e.to_string().contains("restore"));
        assert!(e.to_string().contains("#9"));
    }
}
