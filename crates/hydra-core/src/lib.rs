//! # hydra-core — the HYDRA runtime
//!
//! The paper's primary contribution, reproduced as a library: Offcodes and
//! their two-phase lifecycle ([`offcode`]), marshaled `Call` objects with
//! interface type checking ([`call`]), typed invocation proxies
//! ([`proxy`]), communication channels with device-specific providers and
//! the cost-driven Channel Executive ([`channel`]), the device registry
//! ([`device`]), hierarchical resource management ([`resource`]), the §5
//! offloading layout graph with exact-ILP and greedy resolvers
//! ([`layout`]), the pseudo-Offcodes that bound firmware symbol
//! resolution ([`pseudo`]), and the deployment pipeline that ties it all
//! together ([`runtime`]).
//!
//! ```text
//! ODFs ──▶ layout graph ──▶ placement (ILP/greedy) ──▶ link at device
//!   base ──▶ OOB channel ──▶ initialize ──▶ start ──▶ calls flow
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod call;
pub mod channel;
pub mod device;
pub mod error;
pub mod health;
pub mod layout;
pub mod offcode;
pub mod providers;
pub mod proxy;
pub mod pseudo;
pub mod resource;
pub mod runtime;

pub use call::{Call, CallTypeError, MarshalError, Value};
pub use channel::{
    AdaptivePolicy, Admission, BackpressurePolicy, Buffering, Channel, ChannelConfig, ChannelCost,
    ChannelError, ChannelExecutive, ChannelId, ChannelProvider, CostProfile, ExponentialBackoff,
    Reliability, RetryPolicy, RingView, SyncPolicy, Transport, CHANNEL_QUEUE_DEPTH,
};
pub use device::{DeviceDescriptor, DeviceId, DeviceRegistry};
pub use error::{MigrateError, MigrateLeg, RuntimeError};
pub use health::{DeviceHealth, HealthMonitor, HealthPolicy, HealthTransition};
pub use hydra_obs::{MetricsSnapshot, Recorder};
pub use layout::{GraphDelta, LayoutError, LayoutGraph, LayoutNode, NodeIdx, Objective, Placement};
pub use offcode::{synthetic_object, Offcode, OffcodeCtx, OffcodeId};
pub use providers::{DoorbellBatchProvider, PioProvider};
pub use proxy::Proxy;
pub use pseudo::{HeapOffcode, RuntimeInfoOffcode, HEAP_GUID, RUNTIME_GUID};
pub use resource::{ResourceId, ResourceKind, ResourceManager};
pub use runtime::{
    Deployment, DispatchResult, Lifecycle, RecoveryReport, Runtime, RuntimeConfig, SolverKind,
};
