//! WSDL-lite interface specifications.
//!
//! The paper describes Offcode interfaces with WSDL (§3.1). Full WSDL is
//! web-scale machinery; the reproduction keeps the useful core: a named,
//! GUID-identified interface whose operations declare typed inputs and an
//! output. The runtime uses these specs to type-check marshaled `Call`
//! objects at channel boundaries.

use std::fmt;

use crate::odf::Guid;
use crate::xml::{parse as parse_xml, Element, XmlError};

/// Primitive types marshalable across a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeTag {
    /// No value (outputs only).
    Unit,
    /// Boolean.
    Bool,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 64-bit integer.
    I64,
    /// Raw byte buffer.
    Bytes,
    /// UTF-8 string.
    Str,
}

impl TypeTag {
    /// The spelling used in WSDL-lite documents.
    pub fn as_str(&self) -> &'static str {
        match self {
            TypeTag::Unit => "unit",
            TypeTag::Bool => "bool",
            TypeTag::U32 => "u32",
            TypeTag::U64 => "u64",
            TypeTag::I64 => "i64",
            TypeTag::Bytes => "bytes",
            TypeTag::Str => "str",
        }
    }

    /// Parses the WSDL-lite spelling.
    pub fn from_str_opt(s: &str) -> Option<TypeTag> {
        match s {
            "unit" => Some(TypeTag::Unit),
            "bool" => Some(TypeTag::Bool),
            "u32" => Some(TypeTag::U32),
            "u64" => Some(TypeTag::U64),
            "i64" => Some(TypeTag::I64),
            "bytes" => Some(TypeTag::Bytes),
            "str" => Some(TypeTag::Str),
            _ => None,
        }
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One operation of an interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationSpec {
    /// Operation name (unique within the interface).
    pub name: String,
    /// Typed input parameters, in call order.
    pub inputs: Vec<(String, TypeTag)>,
    /// Result type.
    pub output: TypeTag,
}

/// A GUID-identified interface: a set of operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceSpec {
    /// Interface name, e.g. `IChecksum`.
    pub name: String,
    /// Interface GUID (distinct from any Offcode GUID).
    pub guid: Guid,
    /// Operations in declaration order.
    pub operations: Vec<OperationSpec>,
}

/// Errors interpreting a WSDL-lite document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsdlError {
    /// Underlying XML problem.
    Xml(XmlError),
    /// A required element/attribute is missing.
    Missing(&'static str),
    /// An invalid value.
    Invalid {
        /// What was being parsed.
        what: &'static str,
        /// The offending value.
        value: String,
    },
    /// Two operations share a name.
    DuplicateOperation(String),
}

impl From<XmlError> for WsdlError {
    fn from(e: XmlError) -> Self {
        WsdlError::Xml(e)
    }
}

impl fmt::Display for WsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsdlError::Xml(e) => write!(f, "{e}"),
            WsdlError::Missing(what) => write!(f, "wsdl: missing {what}"),
            WsdlError::Invalid { what, value } => write!(f, "wsdl: invalid {what}: '{value}'"),
            WsdlError::DuplicateOperation(name) => {
                write!(f, "wsdl: duplicate operation '{name}'")
            }
        }
    }
}

impl std::error::Error for WsdlError {}

impl InterfaceSpec {
    /// Builder entry point.
    pub fn new(name: impl Into<String>, guid: Guid) -> Self {
        InterfaceSpec {
            name: name.into(),
            guid,
            operations: Vec::new(),
        }
    }

    /// Adds an operation.
    pub fn with_operation(mut self, op: OperationSpec) -> Self {
        self.operations.push(op);
        self
    }

    /// Looks up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&OperationSpec> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Parses a WSDL-lite document.
    ///
    /// # Errors
    ///
    /// Fails on malformed XML, a missing name/GUID, unknown types, or
    /// duplicated operation names.
    ///
    /// # Examples
    ///
    /// ```
    /// use hydra_odf::wsdl::InterfaceSpec;
    ///
    /// let spec = InterfaceSpec::parse(r#"
    ///   <interface name="IChecksum" guid="500">
    ///     <operation name="checksum">
    ///       <input name="data" type="bytes"/>
    ///       <output type="u32"/>
    ///     </operation>
    ///   </interface>"#).unwrap();
    /// assert_eq!(spec.operation("checksum").unwrap().inputs.len(), 1);
    /// ```
    pub fn parse(xml: &str) -> Result<InterfaceSpec, WsdlError> {
        let root = parse_xml(xml)?;
        Self::from_element(&root)
    }

    /// Interprets an already-parsed element.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InterfaceSpec::parse`].
    pub fn from_element(root: &Element) -> Result<InterfaceSpec, WsdlError> {
        if root.name != "interface" {
            return Err(WsdlError::Invalid {
                what: "root element",
                value: root.name.clone(),
            });
        }
        let name = root
            .attr("name")
            .ok_or(WsdlError::Missing("interface/name"))?
            .to_owned();
        let guid_raw = root
            .attr("guid")
            .ok_or(WsdlError::Missing("interface/guid"))?;
        let guid = Guid(guid_raw.parse().map_err(|_| WsdlError::Invalid {
            what: "interface/guid",
            value: guid_raw.to_owned(),
        })?);
        let mut operations: Vec<OperationSpec> = Vec::new();
        for op in root.children_named("operation") {
            let op_name = op
                .attr("name")
                .ok_or(WsdlError::Missing("operation/name"))?
                .to_owned();
            if operations.iter().any(|o| o.name == op_name) {
                return Err(WsdlError::DuplicateOperation(op_name));
            }
            let mut inputs = Vec::new();
            let mut output = TypeTag::Unit;
            for child in op.child_elements() {
                match child.name.as_str() {
                    "input" => {
                        let pname = child
                            .attr("name")
                            .ok_or(WsdlError::Missing("input/name"))?
                            .to_owned();
                        let ty_raw = child.attr("type").ok_or(WsdlError::Missing("input/type"))?;
                        let ty = TypeTag::from_str_opt(ty_raw).ok_or(WsdlError::Invalid {
                            what: "input/type",
                            value: ty_raw.to_owned(),
                        })?;
                        inputs.push((pname, ty));
                    }
                    "output" => {
                        let ty_raw = child
                            .attr("type")
                            .ok_or(WsdlError::Missing("output/type"))?;
                        output = TypeTag::from_str_opt(ty_raw).ok_or(WsdlError::Invalid {
                            what: "output/type",
                            value: ty_raw.to_owned(),
                        })?;
                    }
                    other => {
                        return Err(WsdlError::Invalid {
                            what: "operation child",
                            value: other.to_owned(),
                        })
                    }
                }
            }
            operations.push(OperationSpec {
                name: op_name,
                inputs,
                output,
            });
        }
        Ok(InterfaceSpec {
            name,
            guid,
            operations,
        })
    }

    /// Serializes back to WSDL-lite XML (round-trips through
    /// [`InterfaceSpec::parse`]).
    pub fn to_xml(&self) -> String {
        use crate::xml::Node;
        let ops = self
            .operations
            .iter()
            .map(|op| {
                let mut children: Vec<Node> = op
                    .inputs
                    .iter()
                    .map(|(n, t)| {
                        Node::Element(Element {
                            name: "input".into(),
                            attributes: vec![
                                ("name".into(), n.clone()),
                                ("type".into(), t.as_str().into()),
                            ],
                            children: vec![],
                        })
                    })
                    .collect();
                children.push(Node::Element(Element {
                    name: "output".into(),
                    attributes: vec![("type".into(), op.output.as_str().into())],
                    children: vec![],
                }));
                Node::Element(Element {
                    name: "operation".into(),
                    attributes: vec![("name".into(), op.name.clone())],
                    children,
                })
            })
            .collect();
        Element {
            name: "interface".into(),
            attributes: vec![
                ("name".into(), self.name.clone()),
                ("guid".into(), self.guid.0.to_string()),
            ],
            children: ops,
        }
        .to_xml()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOCKET_WSDL: &str = r#"<interface name="ISocket" guid="7070"&>
"#;

    #[test]
    fn parse_and_round_trip() {
        let spec = InterfaceSpec::new("ISocket", Guid(7070))
            .with_operation(OperationSpec {
                name: "send".into(),
                inputs: vec![
                    ("data".into(), TypeTag::Bytes),
                    ("flags".into(), TypeTag::U32),
                ],
                output: TypeTag::U32,
            })
            .with_operation(OperationSpec {
                name: "close".into(),
                inputs: vec![],
                output: TypeTag::Unit,
            });
        let re = InterfaceSpec::parse(&spec.to_xml()).unwrap();
        assert_eq!(spec, re);
        assert_eq!(re.operation("send").unwrap().output, TypeTag::U32);
        assert!(re.operation("nope").is_none());
    }

    #[test]
    fn malformed_xml_reported() {
        assert!(matches!(
            InterfaceSpec::parse(SOCKET_WSDL),
            Err(WsdlError::Xml(_))
        ));
    }

    #[test]
    fn missing_guid_rejected() {
        assert_eq!(
            InterfaceSpec::parse(r#"<interface name="I"/>"#),
            Err(WsdlError::Missing("interface/guid"))
        );
    }

    #[test]
    fn bad_type_rejected() {
        let doc = r#"<interface name="I" guid="1">
            <operation name="f"><input name="x" type="quaternion"/></operation>
        </interface>"#;
        assert!(matches!(
            InterfaceSpec::parse(doc),
            Err(WsdlError::Invalid {
                what: "input/type",
                ..
            })
        ));
    }

    #[test]
    fn duplicate_operation_rejected() {
        let doc = r#"<interface name="I" guid="1">
            <operation name="f"/><operation name="f"/>
        </interface>"#;
        assert_eq!(
            InterfaceSpec::parse(doc),
            Err(WsdlError::DuplicateOperation("f".into()))
        );
    }

    #[test]
    fn unknown_operation_child_rejected() {
        let doc = r#"<interface name="I" guid="1">
            <operation name="f"><banana/></operation>
        </interface>"#;
        assert!(matches!(
            InterfaceSpec::parse(doc),
            Err(WsdlError::Invalid {
                what: "operation child",
                ..
            })
        ));
    }

    #[test]
    fn output_defaults_to_unit() {
        let doc = r#"<interface name="I" guid="1">
            <operation name="poke"><input name="x" type="u64"/></operation>
        </interface>"#;
        let spec = InterfaceSpec::parse(doc).unwrap();
        assert_eq!(spec.operation("poke").unwrap().output, TypeTag::Unit);
    }

    #[test]
    fn type_tags_round_trip() {
        for t in [
            TypeTag::Unit,
            TypeTag::Bool,
            TypeTag::U32,
            TypeTag::U64,
            TypeTag::I64,
            TypeTag::Bytes,
            TypeTag::Str,
        ] {
            assert_eq!(TypeTag::from_str_opt(t.as_str()), Some(t));
        }
    }
}
