//! The Offcode Description File model.
//!
//! An ODF (paper §3.3) has three parts: the *package* (bind name, GUID,
//! supported interfaces), the *dependencies* on peer Offcodes with their
//! placement constraints, and the *device classes* the Offcode can target.
//! This module models, validates, parses and serializes ODFs; the layout
//! machinery in `hydra-core` consumes them to build the offloading layout
//! graph.

use std::fmt;

use crate::xml::{parse as parse_xml, Element, Node, XmlError};

/// A globally unique identifier for Offcodes and interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Guid(pub u64);

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "guid:{}", self.0)
    }
}

/// Placement constraints between two Offcodes (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// No placement constraint; merely a functional dependency.
    Link,
    /// Both Offcodes must land on the *same* device.
    Pull,
    /// If one is offloaded, the other must be offloaded too (possibly to a
    /// different device), and vice versa.
    Gang,
    /// Offloading *this* Offcode requires offloading the referenced one,
    /// but not the reverse.
    AsymGang,
}

impl ConstraintKind {
    /// The ODF attribute spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ConstraintKind::Link => "Link",
            ConstraintKind::Pull => "Pull",
            ConstraintKind::Gang => "Gang",
            ConstraintKind::AsymGang => "AsymGang",
        }
    }

    /// Parses the ODF attribute spelling.
    pub fn from_str_opt(s: &str) -> Option<ConstraintKind> {
        match s {
            "Link" => Some(ConstraintKind::Link),
            "Pull" => Some(ConstraintKind::Pull),
            "Gang" => Some(ConstraintKind::Gang),
            "AsymGang" => Some(ConstraintKind::AsymGang),
            _ => None,
        }
    }
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A class of target devices the Offcode can run on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeviceClassSpec {
    /// Numeric class id (e.g. `0x0001` = network device).
    pub id: u32,
    /// Human-readable class name.
    pub name: String,
    /// Required bus attachment, if any.
    pub bus: Option<String>,
    /// Required MAC layer, if any (for network devices).
    pub mac: Option<String>,
    /// Required vendor, if any.
    pub vendor: Option<String>,
}

impl DeviceClassSpec {
    /// The host-CPU pseudo class: every ODF may fall back to the host.
    pub fn host_cpu() -> Self {
        DeviceClassSpec {
            id: 0,
            name: "Host CPU".into(),
            bus: None,
            mac: None,
            vendor: None,
        }
    }
}

/// A declared arrival curve for an Offcode's outbound calls: a
/// token-bucket `(rate, burst)` plus the worst-case payload size.
///
/// The static certification pass in `hydra-verify` propagates these
/// curves through the channel/provider cost tables to bound queue
/// depths, end-to-end latencies, and device utilization before anything
/// is deployed. The element is optional; undeclared Offcodes get a
/// conservative default and an informational `HV044` diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrafficSpec {
    /// Sustained call rate toward each imported peer, in messages/sec.
    pub rate_per_sec: u64,
    /// Maximum back-to-back burst, in messages (at least 1).
    pub burst: u64,
    /// Worst-case payload size per message, in bytes.
    pub max_bytes: u64,
}

/// A dependency on a peer Offcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// Path of the peer's ODF/object file.
    pub file: String,
    /// Peer's bind name.
    pub bind_name: String,
    /// Peer's GUID.
    pub guid: Guid,
    /// Placement constraint toward the peer.
    pub constraint: ConstraintKind,
    /// Priority (lower is more important when constraints conflict).
    pub priority: u8,
}

/// A parsed, validated Offcode Description File.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OdfDocument {
    /// Bind name under which the Offcode registers at the target.
    pub bind_name: String,
    /// The Offcode's GUID.
    pub guid: Guid,
    /// WSDL interface files included by the package section.
    pub interfaces: Vec<String>,
    /// Peer dependencies.
    pub imports: Vec<Import>,
    /// Candidate device classes, in preference order.
    pub targets: Vec<DeviceClassSpec>,
    /// Declared worst-case memory footprint in bytes, if the package
    /// states one (`<footprint>` in the package section). Consumed by the
    /// static capacity pre-check; absent means "unknown".
    pub footprint: Option<u64>,
    /// Declared arrival curve for outbound calls (`<traffic rate=..
    /// burst=.. bytes=../>`), if any. Consumed by the static
    /// certification pass; absent means "use conservative defaults".
    pub traffic: Option<TrafficSpec>,
}

/// Errors raised while interpreting an ODF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OdfError {
    /// The XML itself is malformed.
    Xml(XmlError),
    /// A required element is missing.
    Missing(&'static str),
    /// An element or attribute has an invalid value.
    Invalid {
        /// What was being parsed.
        what: &'static str,
        /// The offending value.
        value: String,
    },
}

impl From<XmlError> for OdfError {
    fn from(e: XmlError) -> Self {
        OdfError::Xml(e)
    }
}

impl fmt::Display for OdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdfError::Xml(e) => write!(f, "{e}"),
            OdfError::Missing(what) => write!(f, "odf: missing {what}"),
            OdfError::Invalid { what, value } => {
                write!(f, "odf: invalid {what}: '{value}'")
            }
        }
    }
}

impl std::error::Error for OdfError {}

fn parse_u64(what: &'static str, raw: &str) -> Result<u64, OdfError> {
    let raw = raw.trim().trim_matches('"');
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    parsed.map_err(|_| OdfError::Invalid {
        what,
        value: raw.to_owned(),
    })
}

impl OdfDocument {
    /// Creates a minimal ODF with just a name and GUID (builder entry
    /// point; extend with [`OdfDocument::with_import`] /
    /// [`OdfDocument::with_target`]).
    pub fn new(bind_name: impl Into<String>, guid: Guid) -> Self {
        OdfDocument {
            bind_name: bind_name.into(),
            guid,
            interfaces: Vec::new(),
            imports: Vec::new(),
            targets: Vec::new(),
            footprint: None,
            traffic: None,
        }
    }

    /// Adds an interface include.
    pub fn with_interface(mut self, file: impl Into<String>) -> Self {
        self.interfaces.push(file.into());
        self
    }

    /// Adds a peer dependency.
    pub fn with_import(mut self, import: Import) -> Self {
        self.imports.push(import);
        self
    }

    /// Adds a candidate device class.
    pub fn with_target(mut self, target: DeviceClassSpec) -> Self {
        self.targets.push(target);
        self
    }

    /// Declares the worst-case memory footprint in bytes.
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint = Some(bytes);
        self
    }

    /// Declares the arrival curve for outbound calls. A zero burst is
    /// clamped to 1 (a message in flight is a burst of one).
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = Some(TrafficSpec {
            burst: traffic.burst.max(1),
            ..traffic
        });
        self
    }

    /// Parses and validates an ODF from XML text.
    ///
    /// # Errors
    ///
    /// Fails on malformed XML, a missing `package`/`bindname`/`GUID`, or
    /// invalid numeric fields.
    ///
    /// # Examples
    ///
    /// ```
    /// use hydra_odf::odf::OdfDocument;
    ///
    /// let odf = OdfDocument::parse(r#"
    ///   <offcode>
    ///     <package>
    ///       <bindname>demo.Checksum</bindname>
    ///       <GUID>42</GUID>
    ///     </package>
    ///   </offcode>"#).unwrap();
    /// assert_eq!(odf.bind_name, "demo.Checksum");
    /// ```
    pub fn parse(xml: &str) -> Result<OdfDocument, OdfError> {
        let root = parse_xml(xml)?;
        Self::from_element(&root)
    }

    /// Interprets an already-parsed XML element as an ODF.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OdfDocument::parse`].
    pub fn from_element(root: &Element) -> Result<OdfDocument, OdfError> {
        if root.name != "offcode" {
            return Err(OdfError::Invalid {
                what: "root element",
                value: root.name.clone(),
            });
        }
        let package = root.child("package").ok_or(OdfError::Missing("package"))?;
        let bind_name = package
            .child("bindname")
            .ok_or(OdfError::Missing("package/bindname"))?
            .text();
        if bind_name.is_empty() {
            return Err(OdfError::Missing("package/bindname"));
        }
        let guid = Guid(parse_u64(
            "package/GUID",
            &package
                .child("GUID")
                .ok_or(OdfError::Missing("package/GUID"))?
                .text(),
        )?);
        let mut interfaces = Vec::new();
        if let Some(iface) = package.child("interface") {
            for inc in iface.children_named("include") {
                interfaces.push(inc.text().trim_matches('"').to_owned());
            }
        }
        let footprint = match package.child("footprint") {
            None => None,
            Some(fp) => Some(parse_u64("package/footprint", &fp.text())?),
        };

        let mut imports = Vec::new();
        if let Some(sw) = root.child("sw-env") {
            for imp in sw.children_named("import") {
                imports.push(Self::parse_import(imp)?);
            }
        }

        let mut targets = Vec::new();
        if let Some(t) = root.child("targets") {
            for dc in t.children_named("device-class") {
                targets.push(Self::parse_device_class(dc)?);
            }
        }

        let traffic = match root.child("traffic") {
            None => None,
            Some(t) => Some(Self::parse_traffic(t)?),
        };

        Ok(OdfDocument {
            bind_name,
            guid,
            interfaces,
            imports,
            targets,
            footprint,
            traffic,
        })
    }

    fn parse_traffic(t: &Element) -> Result<TrafficSpec, OdfError> {
        let rate_per_sec = parse_u64(
            "traffic/rate",
            t.attr("rate").ok_or(OdfError::Missing("traffic/rate"))?,
        )?;
        let burst = match t.attr("burst") {
            None => 1,
            Some(b) => parse_u64("traffic/burst", b)?.max(1),
        };
        let max_bytes = match t.attr("bytes") {
            None => 1024,
            Some(b) => parse_u64("traffic/bytes", b)?,
        };
        Ok(TrafficSpec {
            rate_per_sec,
            burst,
            max_bytes,
        })
    }

    fn parse_import(imp: &Element) -> Result<Import, OdfError> {
        let file = imp
            .child("file")
            .map(|e| e.text().trim_matches('"').to_owned())
            .unwrap_or_default();
        let bind_name = imp
            .child("bindname")
            .ok_or(OdfError::Missing("import/bindname"))?
            .text();
        let guid = Guid(parse_u64(
            "import/GUID",
            &imp.child("GUID")
                .ok_or(OdfError::Missing("import/GUID"))?
                .text(),
        )?);
        let (constraint, priority) = match imp.child("reference") {
            None => (ConstraintKind::Link, 0),
            Some(r) => {
                let kind = match r.attr("type") {
                    None => ConstraintKind::Link,
                    Some(s) => ConstraintKind::from_str_opt(s).ok_or(OdfError::Invalid {
                        what: "reference/type",
                        value: s.to_owned(),
                    })?,
                };
                let pri = match r.attr("pri") {
                    None => 0,
                    Some(p) => parse_u64("reference/pri", p)? as u8,
                };
                (kind, pri)
            }
        };
        Ok(Import {
            file,
            bind_name,
            guid,
            constraint,
            priority,
        })
    }

    fn parse_device_class(dc: &Element) -> Result<DeviceClassSpec, OdfError> {
        let id = parse_u64(
            "device-class/id",
            dc.attr("id").ok_or(OdfError::Missing("device-class/id"))?,
        )? as u32;
        let name = dc
            .child("name")
            .ok_or(OdfError::Missing("device-class/name"))?
            .text();
        let get = |tag: &str| dc.child(tag).map(|e| e.text());
        Ok(DeviceClassSpec {
            id,
            name,
            bus: get("bus"),
            mac: get("mac"),
            vendor: get("vendor"),
        })
    }

    /// Serializes back to ODF XML. The output re-parses to an equal
    /// document (round-trip property).
    pub fn to_xml(&self) -> String {
        let text_el = |name: &str, text: &str| Element {
            name: name.into(),
            attributes: vec![],
            children: vec![Node::Text(text.into())],
        };
        let mut package_children = vec![
            Node::Element(text_el("bindname", &self.bind_name)),
            Node::Element(text_el("GUID", &self.guid.0.to_string())),
        ];
        if let Some(fp) = self.footprint {
            package_children.push(Node::Element(text_el("footprint", &fp.to_string())));
        }
        if !self.interfaces.is_empty() {
            package_children.push(Node::Element(Element {
                name: "interface".into(),
                attributes: vec![],
                children: self
                    .interfaces
                    .iter()
                    .map(|i| Node::Element(text_el("include", i)))
                    .collect(),
            }));
        }
        let mut children = vec![Node::Element(Element {
            name: "package".into(),
            attributes: vec![],
            children: package_children,
        })];
        if !self.imports.is_empty() {
            children.push(Node::Element(Element {
                name: "sw-env".into(),
                attributes: vec![],
                children: self
                    .imports
                    .iter()
                    .map(|imp| {
                        let mut c = Vec::new();
                        if !imp.file.is_empty() {
                            c.push(Node::Element(text_el("file", &imp.file)));
                        }
                        c.push(Node::Element(text_el("bindname", &imp.bind_name)));
                        c.push(Node::Element(Element {
                            name: "reference".into(),
                            attributes: vec![
                                ("type".into(), imp.constraint.as_str().into()),
                                ("pri".into(), imp.priority.to_string()),
                            ],
                            children: vec![],
                        }));
                        c.push(Node::Element(text_el("GUID", &imp.guid.0.to_string())));
                        Node::Element(Element {
                            name: "import".into(),
                            attributes: vec![],
                            children: c,
                        })
                    })
                    .collect(),
            }));
        }
        if !self.targets.is_empty() {
            children.push(Node::Element(Element {
                name: "targets".into(),
                attributes: vec![],
                children: self
                    .targets
                    .iter()
                    .map(|t| {
                        let mut c = vec![Node::Element(text_el("name", &t.name))];
                        if let Some(b) = &t.bus {
                            c.push(Node::Element(text_el("bus", b)));
                        }
                        if let Some(m) = &t.mac {
                            c.push(Node::Element(text_el("mac", m)));
                        }
                        if let Some(v) = &t.vendor {
                            c.push(Node::Element(text_el("vendor", v)));
                        }
                        Node::Element(Element {
                            name: "device-class".into(),
                            attributes: vec![("id".into(), format!("0x{:04x}", t.id))],
                            children: c,
                        })
                    })
                    .collect(),
            }));
        }
        if let Some(t) = self.traffic {
            children.push(Node::Element(Element {
                name: "traffic".into(),
                attributes: vec![
                    ("rate".into(), t.rate_per_sec.to_string()),
                    ("burst".into(), t.burst.to_string()),
                    ("bytes".into(), t.max_bytes.to_string()),
                ],
                children: vec![],
            }));
        }
        Element {
            name: "offcode".into(),
            attributes: vec![],
            children,
        }
        .to_xml()
    }
}

/// Well-known device class ids used throughout the reproduction.
pub mod class_ids {
    /// The host CPU fallback class.
    pub const HOST_CPU: u32 = 0x0000;
    /// Programmable network interface cards.
    pub const NETWORK: u32 = 0x0001;
    /// Programmable storage controllers ("smart disks").
    pub const STORAGE: u32 = 0x0002;
    /// Graphics processing units.
    pub const GPU: u32 = 0x0003;
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_ODF: &str = r#"<offcode>
  <package>
    <bindname>hydra.net.utils.Socket</bindname>
    <GUID>7070714</GUID>
    <interface><include>"/offcodes/socket.wsdl"</include></interface>
  </package>
  <sw-env>
    <import>
      <file>"/offcodes/checksum.xdf"</file>
      <bindname>hydra.net.utils.Checksum</bindname>
      <reference type=Pull pri=0/>
      <GUID>6060843</GUID>
    </import>
  </sw-env>
  <targets>
    <device-class id=0x0001>
      <name>Network Device</name>
      <bus>pci</bus>
      <mac>ethernet</mac>
      <vendor>3COM</vendor>
    </device-class>
  </targets>
</offcode>"#;

    #[test]
    fn parses_paper_figure_4() {
        let odf = OdfDocument::parse(PAPER_ODF).unwrap();
        assert_eq!(odf.bind_name, "hydra.net.utils.Socket");
        assert_eq!(odf.guid, Guid(7070714));
        assert_eq!(odf.interfaces, vec!["/offcodes/socket.wsdl"]);
        assert_eq!(odf.imports.len(), 1);
        let imp = &odf.imports[0];
        assert_eq!(imp.bind_name, "hydra.net.utils.Checksum");
        assert_eq!(imp.guid, Guid(6060843));
        assert_eq!(imp.constraint, ConstraintKind::Pull);
        assert_eq!(imp.priority, 0);
        assert_eq!(odf.targets.len(), 1);
        let t = &odf.targets[0];
        assert_eq!(t.id, 1);
        assert_eq!(t.name, "Network Device");
        assert_eq!(t.bus.as_deref(), Some("pci"));
        assert_eq!(t.vendor.as_deref(), Some("3COM"));
    }

    #[test]
    fn round_trips_through_xml() {
        let odf = OdfDocument::parse(PAPER_ODF).unwrap();
        let re = OdfDocument::parse(&odf.to_xml()).unwrap();
        assert_eq!(odf, re);
    }

    #[test]
    fn builder_round_trips() {
        let odf = OdfDocument::new("tivo.Decoder", Guid(99))
            .with_interface("/offcodes/decoder.wsdl")
            .with_import(Import {
                file: "/offcodes/display.odf".into(),
                bind_name: "tivo.Display".into(),
                guid: Guid(100),
                constraint: ConstraintKind::Pull,
                priority: 1,
            })
            .with_target(DeviceClassSpec {
                id: class_ids::GPU,
                name: "GPU".into(),
                bus: Some("agp".into()),
                mac: None,
                vendor: None,
            })
            .with_target(DeviceClassSpec::host_cpu());
        let re = OdfDocument::parse(&odf.to_xml()).unwrap();
        assert_eq!(odf, re);
    }

    #[test]
    fn footprint_round_trips() {
        let odf = OdfDocument::new("x", Guid(1)).with_footprint(64 * 1024);
        let re = OdfDocument::parse(&odf.to_xml()).unwrap();
        assert_eq!(re.footprint, Some(64 * 1024));
        assert_eq!(odf, re);
    }

    #[test]
    fn bad_footprint_rejected() {
        let e = OdfDocument::parse(
            "<offcode><package><bindname>x</bindname><GUID>1</GUID><footprint>lots</footprint></package></offcode>",
        )
        .unwrap_err();
        assert!(matches!(
            e,
            OdfError::Invalid {
                what: "package/footprint",
                ..
            }
        ));
    }

    #[test]
    fn traffic_round_trips() {
        let odf = OdfDocument::new("x", Guid(1)).with_traffic(TrafficSpec {
            rate_per_sec: 10_000,
            burst: 2,
            max_bytes: 16 * 1024,
        });
        let re = OdfDocument::parse(&odf.to_xml()).unwrap();
        assert_eq!(
            re.traffic,
            Some(TrafficSpec {
                rate_per_sec: 10_000,
                burst: 2,
                max_bytes: 16 * 1024,
            })
        );
        assert_eq!(odf, re);
    }

    #[test]
    fn traffic_defaults_and_clamps() {
        let odf = OdfDocument::parse(
            "<offcode><package><bindname>x</bindname><GUID>1</GUID></package>\
             <traffic rate=500/></offcode>",
        )
        .unwrap();
        assert_eq!(
            odf.traffic,
            Some(TrafficSpec {
                rate_per_sec: 500,
                burst: 1,
                max_bytes: 1024,
            })
        );
        // A declared zero burst parses (and builds) as 1.
        let odf = OdfDocument::parse(
            "<offcode><package><bindname>x</bindname><GUID>1</GUID></package>\
             <traffic rate=500 burst=0 bytes=64/></offcode>",
        )
        .unwrap();
        assert_eq!(odf.traffic.unwrap().burst, 1);
        let built = OdfDocument::new("x", Guid(1)).with_traffic(TrafficSpec {
            rate_per_sec: 500,
            burst: 0,
            max_bytes: 64,
        });
        assert_eq!(built.traffic.unwrap().burst, 1);
    }

    #[test]
    fn traffic_without_rate_rejected() {
        let e = OdfDocument::parse(
            "<offcode><package><bindname>x</bindname><GUID>1</GUID></package>\
             <traffic burst=2/></offcode>",
        )
        .unwrap_err();
        assert_eq!(e, OdfError::Missing("traffic/rate"));
    }

    #[test]
    fn bad_traffic_rate_rejected() {
        let e = OdfDocument::parse(
            "<offcode><package><bindname>x</bindname><GUID>1</GUID></package>\
             <traffic rate=fast/></offcode>",
        )
        .unwrap_err();
        assert!(matches!(
            e,
            OdfError::Invalid {
                what: "traffic/rate",
                ..
            }
        ));
    }

    #[test]
    fn missing_package_rejected() {
        assert_eq!(
            OdfDocument::parse("<offcode/>"),
            Err(OdfError::Missing("package"))
        );
    }

    #[test]
    fn missing_guid_rejected() {
        let e = OdfDocument::parse("<offcode><package><bindname>x</bindname></package></offcode>")
            .unwrap_err();
        assert_eq!(e, OdfError::Missing("package/GUID"));
    }

    #[test]
    fn bad_guid_rejected() {
        let e = OdfDocument::parse(
            "<offcode><package><bindname>x</bindname><GUID>banana</GUID></package></offcode>",
        )
        .unwrap_err();
        assert!(matches!(
            e,
            OdfError::Invalid {
                what: "package/GUID",
                ..
            }
        ));
    }

    #[test]
    fn hex_guid_accepted() {
        let odf = OdfDocument::parse(
            "<offcode><package><bindname>x</bindname><GUID>0xff</GUID></package></offcode>",
        )
        .unwrap();
        assert_eq!(odf.guid, Guid(255));
    }

    #[test]
    fn wrong_root_rejected() {
        let e = OdfDocument::parse("<manifest/>").unwrap_err();
        assert!(matches!(
            e,
            OdfError::Invalid {
                what: "root element",
                ..
            }
        ));
    }

    #[test]
    fn unknown_constraint_rejected() {
        let doc = r"<offcode>
  <package><bindname>x</bindname><GUID>1</GUID></package>
  <sw-env><import>
    <bindname>y</bindname><reference type=Sometimes/><GUID>2</GUID>
  </import></sw-env>
</offcode>";
        let e = OdfDocument::parse(doc).unwrap_err();
        assert!(matches!(
            e,
            OdfError::Invalid {
                what: "reference/type",
                ..
            }
        ));
    }

    #[test]
    fn import_without_reference_defaults_to_link() {
        let doc = r"<offcode>
  <package><bindname>x</bindname><GUID>1</GUID></package>
  <sw-env><import><bindname>y</bindname><GUID>2</GUID></import></sw-env>
</offcode>";
        let odf = OdfDocument::parse(doc).unwrap();
        assert_eq!(odf.imports[0].constraint, ConstraintKind::Link);
    }

    #[test]
    fn malformed_xml_is_surfaced() {
        assert!(matches!(
            OdfDocument::parse("<offcode>"),
            Err(OdfError::Xml(_))
        ));
    }

    #[test]
    fn constraint_kind_string_round_trip() {
        for k in [
            ConstraintKind::Link,
            ConstraintKind::Pull,
            ConstraintKind::Gang,
            ConstraintKind::AsymGang,
        ] {
            assert_eq!(ConstraintKind::from_str_opt(k.as_str()), Some(k));
        }
        assert_eq!(ConstraintKind::from_str_opt("nope"), None);
    }
}
