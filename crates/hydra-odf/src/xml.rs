//! A minimal XML parser.
//!
//! Offcode Description Files are XML (paper §3.3). The reproduction ships
//! its own small parser rather than an external dependency: elements,
//! attributes (quoted *or* unquoted — the paper's own ODF sample writes
//! `type=Pull pri=0`), text, comments, processing instructions, and the
//! five predefined entities. It is a strict well-formedness parser with
//! positioned errors, not a streaming one: ODF files are small.

use std::fmt;

/// A position in the source text, for error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Where the problem was found.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for XmlError {}

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A node in the document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (entity-decoded, whitespace preserved).
    Text(String),
}

impl Element {
    /// The value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find_map(|n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements regardless of name.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// The concatenated text content of this element (direct children
    /// only), trimmed.
    pub fn text(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                s.push_str(t);
            }
        }
        s.trim().to_owned()
    }

    /// Serializes the element back to XML (entity-escaping text and
    /// attribute values, always quoting).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        let only_text = self.children.iter().all(|c| matches!(c, Node::Text(_)));
        out.push('>');
        if only_text {
            out.push_str(&escape(&self.text()));
        } else {
            out.push('\n');
            for c in &self.children {
                match c {
                    Node::Element(e) => e.write(out, depth + 1),
                    Node::Text(t) => {
                        let t = t.trim();
                        if !t.is_empty() {
                            out.push_str(&"  ".repeat(depth + 1));
                            out.push_str(&escape(t));
                            out.push('\n');
                        }
                    }
                }
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete document, returning the root element.
///
/// # Errors
///
/// Returns a positioned [`XmlError`] on any well-formedness violation.
///
/// # Examples
///
/// ```
/// let root = hydra_odf::xml::parse("<a x=1><b>hi</b></a>").unwrap();
/// assert_eq!(root.name, "a");
/// assert_eq!(root.attr("x"), Some("1"));
/// assert_eq!(root.child("b").unwrap().text(), "hi");
/// ```
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if !p.at_end() {
        return Err(p.error("content after document root"));
    }
    Ok(root)
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            chars: src.chars().collect(),
            pos: 0,
            src,
        }
    }

    fn current_pos(&self) -> Pos {
        let mut line = 1;
        let mut col = 1;
        for &c in &self.chars[..self.pos.min(self.chars.len())] {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Pos { line, col }
    }

    fn error(&self, message: &str) -> XmlError {
        let _ = self.src;
        XmlError {
            pos: self.current_pos(),
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(i, c)| self.peek_at(i) == Some(c))
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.chars().count();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_comment(&mut self) -> Result<bool, XmlError> {
        if !self.eat("<!--") {
            return Ok(false);
        }
        loop {
            if self.at_end() {
                return Err(self.error("unterminated comment"));
            }
            if self.eat("-->") {
                return Ok(true);
            }
            self.pos += 1;
        }
    }

    fn skip_pi(&mut self) -> Result<bool, XmlError> {
        if !self.eat("<?") {
            return Ok(false);
        }
        loop {
            if self.at_end() {
                return Err(self.error("unterminated processing instruction"));
            }
            if self.eat("?>") {
                return Ok(true);
            }
            self.pos += 1;
        }
    }

    fn skip_doctype(&mut self) -> Result<bool, XmlError> {
        if !self.starts_with("<!DOCTYPE") {
            return Ok(false);
        }
        while let Some(c) = self.bump() {
            if c == '>' {
                return Ok(true);
            }
        }
        Err(self.error("unterminated DOCTYPE"))
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.skip_pi()? || self.skip_comment()? || self.skip_doctype()? {
                continue;
            }
            return Ok(());
        }
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            match (self.skip_comment(), self.skip_pi()) {
                (Ok(true), _) | (_, Ok(true)) => {}
                _ => return,
            }
        }
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        Self::is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        match self.peek() {
            Some(c) if Self::is_name_start(c) => {}
            _ => return Err(self.error("expected a name")),
        }
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if Self::is_name_char(c) {
                name.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(name)
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        // Caller consumed '&'.
        let mut ent = String::new();
        loop {
            match self.bump() {
                Some(';') => break,
                Some(c) if ent.len() < 10 => ent.push(c),
                _ => return Err(self.error("unterminated entity reference")),
            }
        }
        match ent.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            other => {
                if let Some(hex) = other.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.error("invalid character reference"))
                } else if let Some(dec) = other.strip_prefix('#') {
                    dec.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.error("invalid character reference"))
                } else {
                    Err(self.error(&format!("unknown entity &{other};")))
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let mut value = String::new();
        match self.peek() {
            Some(quote @ ('"' | '\'')) => {
                self.pos += 1;
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated attribute value")),
                        Some(c) if c == quote => break,
                        Some('&') => value.push(self.parse_entity()?),
                        Some('<') => return Err(self.error("'<' in attribute value")),
                        Some(c) => value.push(c),
                    }
                }
            }
            // Unquoted value (non-standard but used by the paper's ODF).
            Some(c) if !c.is_whitespace() && c != '>' && c != '/' => {
                while let Some(c) = self.peek() {
                    if c.is_whitespace() || c == '>' || c == '/' {
                        break;
                    }
                    value.push(c);
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected attribute value")),
        }
        Ok(value)
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if !self.eat("<") {
            return Err(self.error("expected '<'"));
        }
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.pos += 1;
                    if !self.eat(">") {
                        return Err(self.error("expected '>' after '/'"));
                    }
                    return Ok(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                Some('>') => {
                    self.pos += 1;
                    break;
                }
                Some(c) if Self::is_name_start(c) => {
                    let key = self.parse_name()?;
                    if attributes.iter().any(|(k, _)| *k == key) {
                        return Err(self.error(&format!("duplicate attribute '{key}'")));
                    }
                    self.skip_ws();
                    if !self.eat("=") {
                        return Err(self.error("expected '=' after attribute name"));
                    }
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    attributes.push((key, value));
                }
                _ => return Err(self.error("malformed start tag")),
            }
        }

        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            if self.at_end() {
                return Err(self.error(&format!("unclosed element <{name}>")));
            }
            if self.starts_with("</") {
                if !text.is_empty() {
                    children.push(Node::Text(std::mem::take(&mut text)));
                }
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(
                        self.error(&format!("mismatched close tag </{close}> for <{name}>"))
                    );
                }
                self.skip_ws();
                if !self.eat(">") {
                    return Err(self.error("expected '>' in close tag"));
                }
                return Ok(Element {
                    name,
                    attributes,
                    children,
                });
            }
            if self.starts_with("<!--") {
                self.skip_comment()?;
                continue;
            }
            if self.starts_with("<?") {
                self.skip_pi()?;
                continue;
            }
            if self.starts_with("<") {
                if !text.is_empty() {
                    children.push(Node::Text(std::mem::take(&mut text)));
                }
                children.push(Node::Element(self.parse_element()?));
                continue;
            }
            match self.bump() {
                Some('&') => text.push(self.parse_entity()?),
                Some(c) => text.push(c),
                None => unreachable!("at_end checked above"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let root = parse("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.children_named("b").count(), 2);
        assert!(root.child("b").unwrap().child("c").is_some());
    }

    #[test]
    fn parses_attributes_quoted_and_unquoted() {
        let root = parse(r#"<dev id=0x0001 name="Network Device" kind='nic'/>"#).unwrap();
        assert_eq!(root.attr("id"), Some("0x0001"));
        assert_eq!(root.attr("name"), Some("Network Device"));
        assert_eq!(root.attr("kind"), Some("nic"));
        assert_eq!(root.attr("missing"), None);
    }

    #[test]
    fn parses_text_and_entities() {
        let root = parse("<p>a &lt;b&gt; &amp; c &#65; &#x42;</p>").unwrap();
        assert_eq!(root.text(), "a <b> & c A B");
    }

    #[test]
    fn skips_prolog_comments_doctype() {
        let doc = r#"<?xml version="1.0"?>
<!DOCTYPE odf>
<!-- header comment -->
<root><!-- inner --><child/></root>
<!-- trailing -->"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "root");
        assert!(root.child("child").is_some());
    }

    #[test]
    fn mixed_content_preserved() {
        let root = parse("<p>pre<b>mid</b>post</p>").unwrap();
        assert_eq!(root.children.len(), 3);
        assert!(matches!(&root.children[0], Node::Text(t) if t == "pre"));
        assert!(matches!(&root.children[2], Node::Text(t) if t == "post"));
    }

    #[test]
    fn error_on_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn error_on_unclosed() {
        let err = parse("<a><b>").unwrap_err();
        assert!(err.message.contains("unclosed"), "{err}");
    }

    #[test]
    fn error_on_duplicate_attribute() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn error_on_trailing_content() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("after document root"), "{err}");
    }

    #[test]
    fn error_positions_are_useful() {
        let err = parse("<a>\n  <b x=></b>\n</a>").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"), "{err}");
    }

    #[test]
    fn serialization_round_trips() {
        let doc = r#"<odf version="2">
  <package guid="123">
    <bindname>hydra.net.Socket</bindname>
  </package>
  <import type="Pull" pri="0"/>
  <note>a &lt;tricky&gt; &amp; "quoted" value</note>
</odf>"#;
        let root = parse(doc).unwrap();
        let re = parse(&root.to_xml()).unwrap();
        assert_eq!(root, re);
    }

    #[test]
    fn whitespace_only_text_is_kept_as_node_but_trimmed_by_text() {
        let root = parse("<a>\n  \n</a>").unwrap();
        assert_eq!(root.text(), "");
    }

    #[test]
    fn paper_odf_fragment_parses() {
        // Adapted directly from the paper's Figure 4 (with the typo of an
        // unclosed <reference> normalized to a self-closing tag).
        let doc = r#"<offcode>
  <package>
    <bindname>hydra.net.utils.Socket</bindname>
    <GUID>7070714</GUID>
    <interface><include>"/offcodes/socket.wsdl"</include></interface>
  </package>
  <sw-env>
    <import>
      <file>"/offcodes/checksum.xdf"</file>
      <bindname>hydra.net.utils.Checksum</bindname>
      <reference type=Pull pri=0/>
      <GUID>6060843</GUID>
    </import>
  </sw-env>
  <targets>
    <device-class id=0x0001>
      <name>Network Device</name>
      <bus>pci</bus>
      <mac>ethernet</mac>
      <vendor>3COM</vendor>
    </device-class>
  </targets>
</offcode>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "offcode");
        let import = root.child("sw-env").unwrap().child("import").unwrap();
        assert_eq!(
            import.child("reference").unwrap().attr("type"),
            Some("Pull")
        );
        let dc = root
            .child("targets")
            .unwrap()
            .child("device-class")
            .unwrap();
        assert_eq!(dc.attr("id"), Some("0x0001"));
        assert_eq!(dc.child("name").unwrap().text(), "Network Device");
    }
}
