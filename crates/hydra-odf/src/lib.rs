//! # hydra-odf — Offcode Description Files
//!
//! The manifesto layer of the HYDRA programming model (paper §3.3): a
//! minimal XML parser built for this crate ([`xml`]), the ODF document
//! model with package/dependencies/device-class sections and the four
//! placement constraints ([`odf`]), and WSDL-lite interface specifications
//! with typed operations ([`wsdl`]).
//!
//! Everything round-trips: `parse(doc.to_xml()) == doc`, a property the
//! test suite checks for hand-written, paper-derived, and generated
//! documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod odf;
pub mod wsdl;
pub mod xml;

pub use odf::{class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument, OdfError};
pub use wsdl::{InterfaceSpec, OperationSpec, TypeTag, WsdlError};
pub use xml::{Element, Node, XmlError};
