//! Error-path coverage for [`OdfDocument::parse`]: every rejection the
//! parser can produce, pinned with the variant it must report. The
//! happy paths live in the crate's unit tests; these are the inputs a
//! deployment lint (`repro -- lint`) has to survive without panicking.

use hydra_odf::odf::{OdfDocument, OdfError};

fn err(xml: &str) -> OdfError {
    OdfDocument::parse(xml).expect_err("must be rejected")
}

#[test]
fn malformed_xml_is_an_xml_error() {
    assert!(matches!(err("<offcode"), OdfError::Xml(_)));
    assert!(matches!(err(""), OdfError::Xml(_)));
    assert!(matches!(
        err("<offcode><package></offcode>"),
        OdfError::Xml(_)
    ));
}

#[test]
fn wrong_root_element_is_rejected() {
    let e = err("<deployment><package/></deployment>");
    assert!(matches!(
        e,
        OdfError::Invalid {
            what: "root element",
            ..
        }
    ));
}

#[test]
fn missing_package_sections_are_named() {
    assert_eq!(err("<offcode></offcode>"), OdfError::Missing("package"));
    assert_eq!(
        err("<offcode><package><GUID>1</GUID></package></offcode>"),
        OdfError::Missing("package/bindname")
    );
    // An empty bindname counts as missing, not as a valid empty string.
    assert_eq!(
        err("<offcode><package><bindname></bindname><GUID>1</GUID></package></offcode>"),
        OdfError::Missing("package/bindname")
    );
    assert_eq!(
        err("<offcode><package><bindname>x</bindname></package></offcode>"),
        OdfError::Missing("package/GUID")
    );
}

#[test]
fn non_numeric_guid_is_invalid() {
    let e = err("<offcode><package><bindname>x</bindname><GUID>seven</GUID></package></offcode>");
    match e {
        OdfError::Invalid { what, value } => {
            assert_eq!(what, "package/GUID");
            assert_eq!(value, "seven");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn bad_footprint_is_invalid_but_absent_is_fine() {
    let e = err("<offcode><package><bindname>x</bindname><GUID>1</GUID>\
         <footprint>lots</footprint></package></offcode>");
    assert!(matches!(
        e,
        OdfError::Invalid {
            what: "package/footprint",
            ..
        }
    ));
    let odf = OdfDocument::parse(
        "<offcode><package><bindname>x</bindname><GUID>1</GUID></package></offcode>",
    )
    .unwrap();
    assert_eq!(odf.footprint, None);
}

#[test]
fn import_requires_bindname_and_guid() {
    let base = "<offcode><package><bindname>x</bindname><GUID>1</GUID></package>\
                <sw-env><import>{IMP}</import></sw-env></offcode>";
    let e = err(&base.replace("{IMP}", "<GUID>2</GUID>"));
    assert_eq!(e, OdfError::Missing("import/bindname"));
    let e = err(&base.replace("{IMP}", "<bindname>y</bindname>"));
    assert_eq!(e, OdfError::Missing("import/GUID"));
}

#[test]
fn unknown_constraint_kind_is_invalid() {
    let e = err(
        "<offcode><package><bindname>x</bindname><GUID>1</GUID></package>\
         <sw-env><import><bindname>y</bindname><GUID>2</GUID>\
         <reference type=Sideways/></import></sw-env></offcode>",
    );
    match e {
        OdfError::Invalid { what, value } => {
            assert_eq!(what, "reference/type");
            assert_eq!(value, "Sideways");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn device_class_requires_id_and_name() {
    let base = "<offcode><package><bindname>x</bindname><GUID>1</GUID></package>\
                <targets>{DC}</targets></offcode>";
    let e = err(&base.replace("{DC}", "<device-class><name>nic</name></device-class>"));
    assert_eq!(e, OdfError::Missing("device-class/id"));
    let e = err(&base.replace("{DC}", "<device-class id=0x0001></device-class>"));
    assert_eq!(e, OdfError::Missing("device-class/name"));
    let e = err(&base.replace(
        "{DC}",
        "<device-class id=banana><name>nic</name></device-class>",
    ));
    assert!(matches!(
        e,
        OdfError::Invalid {
            what: "device-class/id",
            ..
        }
    ));
}

#[test]
fn errors_render_their_context() {
    assert!(err("<offcode></offcode>").to_string().contains("package"));
    assert!(err("<nope/>").to_string().contains("root element"));
}
