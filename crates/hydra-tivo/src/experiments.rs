//! The experiment harness: one entry point per paper table and figure.
//!
//! Each function runs the corresponding experiment on the simulated
//! testbed and returns a result struct whose `Display` implementation
//! prints the same rows/series the paper reports. The `hydra-bench`
//! crate's `repro` binary drives these; EXPERIMENTS.md records a captured
//! run against the paper's numbers.

use std::fmt;

use hydra_core::layout::{LayoutGraph, LayoutNode, NodeIdx, Objective};
use hydra_odf::odf::{ConstraintKind, Guid};
use hydra_sim::rng::DetRng;
use hydra_sim::stats::Histogram;
use hydra_sim::time::SimDuration;

use crate::client::{run_client, ClientConfig, ClientKind, ClientRun};
use crate::server::{run_server, ServerConfig, ServerKind, ServerRun};
use crate::tcpmodel::{GhzGbpsModel, GhzGbpsPoint, TcpDirection};

/// Global experiment knobs.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Simulated duration of each streaming run.
    pub duration: SimDuration,
    /// Seed for every run.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            duration: SimDuration::from_secs(60),
            seed: 42,
        }
    }
}

impl SuiteConfig {
    /// The paper's full 10-minute runs.
    pub fn paper_full() -> Self {
        SuiteConfig {
            duration: SimDuration::from_secs(600),
            seed: 42,
        }
    }
}

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

/// Figure 1: GHz/Gbps ratio vs. packet size, transmit and receive.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Transmit curve.
    pub transmit: Vec<GhzGbpsPoint>,
    /// Receive curve.
    pub receive: Vec<GhzGbpsPoint>,
}

/// Runs the Figure 1 sweep.
pub fn fig1() -> Fig1 {
    let m = GhzGbpsModel::paper_setup();
    Fig1 {
        transmit: m.sweep(TcpDirection::Transmit),
        receive: m.sweep(TcpDirection::Receive),
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1 — GHz/Gbps ratio (transmit | receive)")?;
        writeln!(
            f,
            "{:>10}  {:>12}  {:>12}  {:>10}  {:>10}",
            "pkt bytes", "tx GHz/Gbps", "rx GHz/Gbps", "tx util", "rx util"
        )?;
        for (t, r) in self.transmit.iter().zip(&self.receive) {
            writeln!(
                f,
                "{:>10}  {:>12.3}  {:>12.3}  {:>9.1}%  {:>9.1}%",
                t.packet_bytes,
                t.ghz_per_gbps,
                r.ghz_per_gbps,
                t.cpu_utilization * 100.0,
                r.cpu_utilization * 100.0
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Figure 9 + Table 2
// ---------------------------------------------------------------------

/// Figure 9 + Table 2: per-scenario jitter distributions and statistics.
#[derive(Debug, Clone)]
pub struct JitterResults {
    /// One run per streaming scenario (Simple, Sendfile, Offloaded).
    pub runs: Vec<ServerRun>,
}

/// Runs the jitter experiment for the three server variants.
pub fn fig9_tab2(cfg: &SuiteConfig) -> JitterResults {
    let runs = [
        ServerKind::Simple,
        ServerKind::Sendfile,
        ServerKind::Offloaded,
    ]
    .into_iter()
    .map(|kind| {
        let mut c = ServerConfig::paper(kind, cfg.seed);
        c.duration = cfg.duration;
        run_server(c)
    })
    .collect();
    JitterResults { runs }
}

fn ascii_histogram(f: &mut fmt::Formatter<'_>, h: &Histogram) -> fmt::Result {
    let max = (0..h.bins())
        .map(|i| h.bin_count(i))
        .max()
        .unwrap_or(1)
        .max(1);
    for i in 0..h.bins() {
        let count = h.bin_count(i);
        if count == 0 && h.bin_lo(i) > 9.0 {
            continue;
        }
        let bar = "#".repeat((count * 48 / max) as usize);
        writeln!(f, "  {:>6.2} ms | {:<48} {}", h.bin_lo(i), bar, count)?;
    }
    if h.overflow() > 0 {
        writeln!(f, "  (+{} above range)", h.overflow())?;
    }
    Ok(())
}

impl fmt::Display for JitterResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9 — packet jitter histogram + CDF")?;
        for run in &self.runs {
            let h = run.jitter_ms.histogram(4.0, 10.0, 24);
            writeln!(
                f,
                "\n[{}] ({} packets)",
                run.kind.label(),
                run.packets_delivered
            )?;
            ascii_histogram(f, &h)?;
            let cdf = h.cdf();
            write!(f, "  CDF:")?;
            for (i, c) in cdf.iter().enumerate().step_by(4) {
                write!(f, " {:.1}ms={:.0}%", h.bin_lo(i), c * 100.0)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "\nTable 2 — client-side jitter statistics (ms)")?;
        writeln!(
            f,
            "{:<18} {:>8} {:>8} {:>8}",
            "Scenario", "Median", "Average", "Std Dev"
        )?;
        for run in &self.runs {
            let s = run.jitter_ms.summary();
            writeln!(
                f,
                "{:<18} {:>8.2} {:>8.2} {:>8.4}",
                run.kind.label(),
                s.median,
                s.mean,
                s.std_dev
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Figure 10 + Table 3
// ---------------------------------------------------------------------

/// Figure 10 + Table 3: server-side L2 slowdown and CPU utilization.
#[derive(Debug, Clone)]
pub struct ServerSideResults {
    /// Idle, Simple, Sendfile, Offloaded — in that order.
    pub runs: Vec<ServerRun>,
}

/// Runs the four server-side scenarios.
pub fn fig10_tab3(cfg: &SuiteConfig) -> ServerSideResults {
    let runs = ServerKind::all()
        .into_iter()
        .map(|kind| {
            let mut c = ServerConfig::paper(kind, cfg.seed);
            c.duration = cfg.duration;
            run_server(c)
        })
        .collect();
    ServerSideResults { runs }
}

impl ServerSideResults {
    /// The idle run (Figure 10's normalization baseline).
    pub fn idle(&self) -> &ServerRun {
        self.runs
            .iter()
            .find(|r| r.kind == ServerKind::Idle)
            .expect("idle scenario always included")
    }

    /// Normalized L2 miss rate for a scenario (1.0 = idle).
    pub fn normalized_l2(&self, kind: ServerKind) -> f64 {
        let idle = self.idle().l2_miss_rate.summary().mean;
        let run = self
            .runs
            .iter()
            .find(|r| r.kind == kind)
            .expect("all scenarios included");
        run.l2_miss_rate.summary().mean / idle
    }
}

impl fmt::Display for ServerSideResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10 — L2 slowdown (server side, normalized to idle)"
        )?;
        for run in &self.runs {
            let n = self.normalized_l2(run.kind);
            let bar = "#".repeat(((n - 0.9).max(0.0) * 200.0) as usize);
            writeln!(f, "  {:<18} {:>6.3}x | {}", run.kind.label(), n, bar)?;
        }
        writeln!(f, "\nTable 3 — server-side CPU utilization")?;
        writeln!(
            f,
            "{:<18} {:>8} {:>8} {:>8}",
            "Scenario", "Median", "Average", "Std Dev"
        )?;
        for run in &self.runs {
            let s = run.cpu_util.summary();
            writeln!(
                f,
                "{:<18} {:>7.2}% {:>7.2}% {:>7.2}%",
                run.kind.label(),
                s.median * 100.0,
                s.mean * 100.0,
                s.std_dev * 100.0
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Table 4 + client L2
// ---------------------------------------------------------------------

/// Table 4 + the §6.4 client L2 paragraph.
#[derive(Debug, Clone)]
pub struct ClientResults {
    /// Idle, UserSpace, Offloaded — in that order.
    pub runs: Vec<ClientRun>,
}

/// Runs the three client-side scenarios.
pub fn tab4_client(cfg: &SuiteConfig) -> ClientResults {
    let runs = ClientKind::all()
        .into_iter()
        .map(|kind| {
            let mut c = ClientConfig::paper(kind, cfg.seed);
            c.duration = cfg.duration;
            run_client(c)
        })
        .collect();
    ClientResults { runs }
}

impl ClientResults {
    /// Normalized L2 miss rate for a scenario (1.0 = idle).
    pub fn normalized_l2(&self, kind: ClientKind) -> f64 {
        let idle = self
            .runs
            .iter()
            .find(|r| r.kind == ClientKind::Idle)
            .expect("idle included")
            .l2_miss_rate
            .summary()
            .mean;
        self.runs
            .iter()
            .find(|r| r.kind == kind)
            .expect("all kinds included")
            .l2_miss_rate
            .summary()
            .mean
            / idle
    }
}

impl fmt::Display for ClientResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 4 — client-side CPU utilization")?;
        writeln!(
            f,
            "{:<18} {:>8} {:>8} {:>8}",
            "Scenario", "Median", "Average", "Std Dev"
        )?;
        for run in &self.runs {
            let s = run.cpu_util.summary();
            writeln!(
                f,
                "{:<18} {:>7.2}% {:>7.2}% {:>7.2}%",
                run.kind.label(),
                s.median * 100.0,
                s.mean * 100.0,
                s.std_dev * 100.0
            )?;
        }
        writeln!(f, "\nClient L2 misses, normalized to idle (§6.4 text)")?;
        for run in &self.runs {
            writeln!(
                f,
                "  {:<18} {:>6.3}x",
                run.kind.label(),
                self.normalized_l2(run.kind)
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// §5: ILP vs greedy layout optimization
// ---------------------------------------------------------------------

/// One random layout-optimization case.
#[derive(Debug, Clone, Copy)]
pub struct IlpCase {
    /// Offcodes in the graph.
    pub offcodes: usize,
    /// Devices (excluding host).
    pub devices: usize,
    /// Constraint edges.
    pub edges: usize,
    /// Greedy objective value.
    pub greedy_value: f64,
    /// Exact ILP objective value.
    pub ilp_value: f64,
    /// Branch-and-bound nodes explored.
    pub bnb_nodes: u64,
}

/// §5 evaluation: the exact ILP against the greedy heuristic over random
/// layout graphs.
#[derive(Debug, Clone)]
pub struct IlpResults {
    /// Every case evaluated.
    pub cases: Vec<IlpCase>,
}

impl IlpResults {
    /// Fraction of cases where the ILP strictly beats greedy.
    pub fn improvement_fraction(&self) -> f64 {
        let wins = self
            .cases
            .iter()
            .filter(|c| c.ilp_value > c.greedy_value + 1e-9)
            .count();
        wins as f64 / self.cases.len().max(1) as f64
    }

    /// Mean relative improvement of ILP over greedy, over the cases where
    /// greedy found a non-zero solution.
    pub fn mean_improvement(&self) -> f64 {
        let eligible: Vec<f64> = self
            .cases
            .iter()
            .filter(|c| c.greedy_value > 1e-9)
            .map(|c| c.ilp_value / c.greedy_value - 1.0)
            .collect();
        if eligible.is_empty() {
            0.0
        } else {
            eligible.iter().sum::<f64>() / eligible.len() as f64
        }
    }

    /// Cases where greedy offloaded nothing but the ILP found value.
    pub fn greedy_total_misses(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.greedy_value <= 1e-9 && c.ilp_value > 1e-9)
            .count()
    }
}

/// Builds one random layout graph.
pub fn random_layout(rng: &mut DetRng, offcodes: usize, devices: usize) -> LayoutGraph {
    let mut g = LayoutGraph::new();
    for i in 0..offcodes {
        let mut compat = vec![true];
        for _ in 0..devices {
            compat.push(rng.chance(0.55));
        }
        g.add_node(LayoutNode {
            guid: Guid(i as u64 + 1),
            bind_name: format!("oc{i}"),
            compat,
            price: 1.0 + rng.index(6) as f64,
        });
    }
    for _ in 0..offcodes {
        let a = rng.index(offcodes);
        let b = rng.index(offcodes);
        if a == b {
            continue;
        }
        let c = match rng.index(4) {
            0 => ConstraintKind::Link,
            1 => ConstraintKind::Pull,
            2 => ConstraintKind::Gang,
            _ => ConstraintKind::AsymGang,
        };
        g.add_edge(NodeIdx(a), NodeIdx(b), c);
    }
    g
}

/// Runs the ILP-vs-greedy comparison over `cases` random graphs.
pub fn ilp_vs_greedy(seed: u64, cases: usize) -> IlpResults {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(cases);
    for _ in 0..cases {
        let offcodes = 4 + rng.index(6);
        let devices = 2 + rng.index(3);
        let g = random_layout(&mut rng, offcodes, devices);
        let capacities: Vec<f64> = (0..=devices).map(|_| 3.0 + rng.index(9) as f64).collect();
        let obj = Objective::MaximizeBusUsage { capacities };
        let greedy = g.resolve_greedy(&obj);
        let exact = g.resolve_ilp(&obj).expect("host fallback always feasible");
        out.push(IlpCase {
            offcodes,
            devices,
            edges: g.edges().len(),
            greedy_value: g.bus_value(&greedy),
            ilp_value: g.bus_value(&exact),
            bnb_nodes: 0, // filled by the bench when it re-solves with stats
        });
    }
    IlpResults { cases: out }
}

impl fmt::Display for IlpResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§5 — exact ILP vs greedy layout ({} random graphs)",
            self.cases.len()
        )?;
        writeln!(
            f,
            "{:>4} {:>4} {:>4} {:>10} {:>10} {:>8}",
            "N", "K", "E", "greedy", "ILP", "gain"
        )?;
        for c in self.cases.iter().take(20) {
            let gain = if c.greedy_value > 1e-9 {
                format!("{:>6.1}%", (c.ilp_value / c.greedy_value - 1.0) * 100.0)
            } else if c.ilp_value > 1e-9 {
                "   +inf".to_owned()
            } else {
                "      -".to_owned()
            };
            writeln!(
                f,
                "{:>4} {:>4} {:>4} {:>10.1} {:>10.1} {:>8}",
                c.offcodes,
                c.devices,
                c.edges,
                c.greedy_value.max(0.0),
                c.ilp_value.max(0.0),
                gain
            )?;
        }
        if self.cases.len() > 20 {
            writeln!(f, "  … {} more cases", self.cases.len() - 20)?;
        }
        writeln!(
            f,
            "ILP strictly better in {:.0}% of cases; mean improvement {:.1}% \
             (plus {} cases where greedy offloaded nothing)",
            self.improvement_fraction() * 100.0,
            self.mean_improvement() * 100.0,
            self.greedy_total_misses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SuiteConfig {
        SuiteConfig {
            duration: SimDuration::from_secs(15),
            seed: 42,
        }
    }

    #[test]
    fn fig1_renders_and_orders() {
        let fig = fig1();
        let text = fig.to_string();
        assert!(text.contains("GHz/Gbps"));
        assert!(fig.receive[0].ghz_per_gbps > fig.transmit[0].ghz_per_gbps);
    }

    #[test]
    fn jitter_results_render() {
        let r = fig9_tab2(&quick());
        let text = r.to_string();
        assert!(text.contains("Table 2"));
        assert!(text.contains("Offloaded Server"));
        assert!(text.contains("CDF:"));
        assert_eq!(r.runs.len(), 3);
    }

    #[test]
    fn server_side_results_render_and_normalize() {
        let r = fig10_tab3(&quick());
        assert_eq!(r.runs.len(), 4);
        let n_idle = r.normalized_l2(ServerKind::Idle);
        assert!((n_idle - 1.0).abs() < 1e-9);
        assert!(r.normalized_l2(ServerKind::Simple) > 1.0);
        assert!(r.to_string().contains("Table 3"));
    }

    #[test]
    fn client_results_render_and_normalize() {
        let r = tab4_client(&quick());
        assert_eq!(r.runs.len(), 3);
        assert!(r.normalized_l2(ClientKind::UserSpace) > 1.0);
        assert!(r.to_string().contains("Table 4"));
    }

    #[test]
    fn ilp_vs_greedy_finds_improvements() {
        let r = ilp_vs_greedy(7, 25);
        assert_eq!(r.cases.len(), 25);
        // The ILP is never worse...
        for c in &r.cases {
            assert!(c.ilp_value >= c.greedy_value - 1e-9);
        }
        // ...and strictly better somewhere (the paper's motivation).
        assert!(r.improvement_fraction() > 0.0, "no case improved");
        assert!(r.to_string().contains("mean improvement"));
    }
}
