//! Extension (paper §8, "Advanced Storage Services"): disk-side search.
//!
//! "Programmable disks will provide an opportunity to run I/O-intensive
//! computations efficiently by running them closer to the data. Potential
//! applications include content indexing and searching, virus scanning…"
//!
//! A recording lives on the NAS behind the smart disk. Find every
//! occurrence of a byte pattern in it, two ways:
//!
//! * **Host scan** — the host reads every block through the conventional
//!   path (disk → NFS → NIC DMA → kernel buffer → user copy) and scans it
//!   on the host CPU, dragging the entire recording across the I/O bus
//!   and through the L2.
//! * **Disk-side Offcode** — a Search Offcode on the disk controller
//!   scans blocks as it reads them from its private NAS path and ships
//!   only the match offsets to the host.
//!
//! Both must find *exactly* the same matches (asserted on real bytes);
//! the comparison is where the time, bus bytes and host cycles went.

use bytes::Bytes;
use hydra_devices::disk::{SmartDiskModel, BLOCK_BYTES};
use hydra_devices::host::HostModel;
use hydra_devices::nic::NicModel;
use hydra_hw::cache::AccessKind;
use hydra_hw::cpu::Cycles;
use hydra_net::nfs::NasServer;
use hydra_sim::rng::DetRng;
use hydra_sim::time::{SimDuration, SimTime};

/// Which implementation performs the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchKind {
    /// Read everything to the host and scan there.
    HostScan,
    /// Scan on the disk controller, return offsets only.
    DiskOffcode,
}

impl SearchKind {
    /// Both designs.
    pub fn all() -> [SearchKind; 2] {
        [SearchKind::HostScan, SearchKind::DiskOffcode]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SearchKind::HostScan => "Host scan",
            SearchKind::DiskOffcode => "Disk-side Offcode",
        }
    }
}

/// Results of one search run.
#[derive(Debug, Clone)]
pub struct SearchRun {
    /// The design.
    pub kind: SearchKind,
    /// Byte offsets of every match, ascending.
    pub matches: Vec<u64>,
    /// Wall-clock (simulated) completion time.
    pub elapsed: SimDuration,
    /// Host CPU busy time during the search.
    pub host_busy: SimDuration,
    /// Bytes that crossed the host's I/O bus.
    pub host_bus_bytes: u64,
    /// Host L2 misses incurred.
    pub host_l2_misses: u64,
}

/// Builds a deterministic corpus with `plants` occurrences of `needle`
/// sprinkled through random filler (filler is generated needle-free).
pub fn build_corpus(len: usize, needle: &[u8], plants: usize, seed: u64) -> Vec<u8> {
    assert!(!needle.is_empty() && needle.len() < 64, "sane needle");
    let mut rng = DetRng::new(seed);
    let mut data: Vec<u8> = (0..len)
        .map(|_| {
            // Exclude the needle's first byte from filler so accidental
            // matches are impossible.
            let mut b = rng.next_below(255) as u8;
            if b == needle[0] {
                b = b.wrapping_add(1);
            }
            b
        })
        .collect();
    if plants > 0 {
        let stride = len.checked_div(plants).expect("plants > 0 checked above");
        assert!(stride > needle.len() * 2, "corpus too small for plants");
        for i in 0..plants {
            let at = i * stride + (rng.index(stride - needle.len()));
            data[at..at + needle.len()].copy_from_slice(needle);
        }
    }
    data
}

fn find_all(haystack: &[u8], needle: &[u8], base: u64, out: &mut Vec<u64>) {
    if needle.is_empty() || haystack.len() < needle.len() {
        return;
    }
    for i in 0..=haystack.len() - needle.len() {
        if &haystack[i..i + needle.len()] == needle {
            out.push(base + i as u64);
        }
    }
}

/// Scan cost: ~1.5 cycles per byte on either processor.
fn scan_cycles(bytes: usize) -> Cycles {
    Cycles::new(bytes as u64 * 3 / 2)
}

/// Runs one search over a corpus previously stored via the smart disk.
///
/// # Panics
///
/// Panics if the corpus does not fit the disk protocol's assumptions
/// (empty needle etc. — validated by `build_corpus`).
pub fn run_search(kind: SearchKind, corpus: &[u8], needle: &[u8], seed: u64) -> SearchRun {
    // Stage the corpus on the NAS through the disk.
    let mut nas = NasServer::default();
    let mut disk = SmartDiskModel::new();
    disk.open(&mut nas, "/dvr/corpus");
    let mut t = SimTime::ZERO;
    for (i, block) in corpus.chunks(BLOCK_BYTES).enumerate() {
        let op = disk
            .write_block(t, &mut nas, i as u64, Bytes::copy_from_slice(block))
            .expect("staging writes succeed");
        t = op.complete_at;
    }
    let start = t;

    let mut host = HostModel::paper_host(seed ^ 0x5EA6);
    let mut nic = NicModel::new_3c985b(seed);
    let mut matches = Vec::new();
    let blocks = corpus.len().div_ceil(BLOCK_BYTES) as u64;
    // Overlap buffer so matches spanning block boundaries are found.
    let overlap = needle.len().saturating_sub(1);

    let host_busy_before = host.cpu.retired();
    let end_time;
    match kind {
        SearchKind::HostScan => {
            let kbuf = host.space.alloc("scan-kbuf", BLOCK_BYTES);
            let ubuf = host.space.alloc("scan-ubuf", BLOCK_BYTES + 64);
            let mut tail: Vec<u8> = Vec::new();
            let mut now = start;
            for b in 0..blocks {
                let (data, op) = disk.read_block(now, &mut nas, b).expect("block exists");
                // The block crosses the host bus by NIC DMA (the disk *is*
                // a NIC exporting a block device).
                let xfer = nic.dma_from_host(op.complete_at, &mut host.bus, kbuf);
                host.mem.dma_transfer(kbuf);
                let irq = host.interrupt(xfer.end);
                let copy = host.cpu_copy(irq.end, kbuf, ubuf, data.len());
                // Scan (tail + block) on the host CPU.
                let mut window = std::mem::take(&mut tail);
                let base = b * BLOCK_BYTES as u64 - window.len() as u64;
                window.extend_from_slice(&data);
                find_all(&window, needle, base, &mut matches);
                let scan = host.compute_over(
                    copy.end,
                    ubuf.slice(0, data.len().max(1)),
                    scan_cycles(window.len()),
                    AccessKind::Read,
                );
                tail = window[window.len().saturating_sub(overlap)..].to_vec();
                now = scan.end;
            }
            end_time = now;
        }
        SearchKind::DiskOffcode => {
            let mut tail: Vec<u8> = Vec::new();
            let mut now = start;
            for b in 0..blocks {
                let (data, op) = disk.read_block(now, &mut nas, b).expect("block exists");
                let mut window = std::mem::take(&mut tail);
                let base = b * BLOCK_BYTES as u64 - window.len() as u64;
                window.extend_from_slice(&data);
                find_all(&window, needle, base, &mut matches);
                // The scan runs on the controller CPU.
                let scan = disk.offcode_work(op.complete_at, scan_cycles(window.len()));
                tail = window[window.len().saturating_sub(overlap)..].to_vec();
                now = scan.end;
            }
            // Ship only the result offsets across the bus (8 B each) and
            // take one interrupt.
            let result_buf = host.space.alloc("results", (matches.len() * 8).max(64));
            let xfer = nic.dma_from_host(now, &mut host.bus, result_buf);
            host.mem.dma_transfer(result_buf);
            let irq = host.interrupt(xfer.end);
            end_time = irq.end;
        }
    }
    // Deduplicate overlap-window rescans (a match inside the overlap is
    // found twice).
    matches.sort_unstable();
    matches.dedup();

    let busy_cycles = host.cpu.retired().get() - host_busy_before.get();
    SearchRun {
        kind,
        matches,
        elapsed: end_time.duration_since(start),
        host_busy: host.cpu.spec().duration_of(Cycles::new(busy_cycles)),
        host_bus_bytes: host.bus.bytes_moved(),
        host_l2_misses: host.mem.cache().stats().misses,
    }
}

impl std::fmt::Display for SearchRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<18} {:>4} matches in {} | host busy {} | bus {} B | L2 misses {}",
            self.kind.label(),
            self.matches.len(),
            self.elapsed,
            self.host_busy,
            self.host_bus_bytes,
            self.host_l2_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEEDLE: &[u8] = b"\x7fVIRUS_SIGNATURE";

    fn runs(len: usize, plants: usize) -> (SearchRun, SearchRun) {
        let corpus = build_corpus(len, NEEDLE, plants, 7);
        (
            run_search(SearchKind::HostScan, &corpus, NEEDLE, 7),
            run_search(SearchKind::DiskOffcode, &corpus, NEEDLE, 7),
        )
    }

    #[test]
    fn both_find_exactly_the_planted_matches() {
        let (host, disk) = runs(256 * 1024, 9);
        assert_eq!(host.matches.len(), 9);
        assert_eq!(host.matches, disk.matches);
    }

    #[test]
    fn matches_spanning_block_boundaries_are_found() {
        // Hand-plant a needle across the 4096-byte boundary.
        let mut corpus = build_corpus(3 * BLOCK_BYTES, NEEDLE, 0, 3);
        let at = BLOCK_BYTES - NEEDLE.len() / 2;
        corpus[at..at + NEEDLE.len()].copy_from_slice(NEEDLE);
        let host = run_search(SearchKind::HostScan, &corpus, NEEDLE, 3);
        let disk = run_search(SearchKind::DiskOffcode, &corpus, NEEDLE, 3);
        assert_eq!(host.matches, vec![at as u64]);
        assert_eq!(disk.matches, vec![at as u64]);
    }

    #[test]
    fn disk_side_saves_host_resources() {
        let (host, disk) = runs(512 * 1024, 4);
        assert!(
            disk.host_busy < host.host_busy / 5,
            "host busy {} vs {}",
            disk.host_busy,
            host.host_busy
        );
        assert!(
            disk.host_bus_bytes < host.host_bus_bytes / 10,
            "bus {} vs {}",
            disk.host_bus_bytes,
            host.host_bus_bytes
        );
        assert!(disk.host_l2_misses < host.host_l2_misses / 5);
    }

    #[test]
    fn disk_side_is_not_slower_end_to_end() {
        // The controller CPU is 4x slower, but it skips the extra bus hop,
        // the interrupt-per-block, and the copies.
        let (host, disk) = runs(512 * 1024, 4);
        assert!(
            disk.elapsed < host.elapsed * 2,
            "disk {} vs host {}",
            disk.elapsed,
            host.elapsed
        );
    }

    #[test]
    fn empty_corpus_yields_no_matches() {
        let corpus = build_corpus(BLOCK_BYTES, NEEDLE, 0, 1);
        let run = run_search(SearchKind::DiskOffcode, &corpus, NEEDLE, 1);
        assert!(run.matches.is_empty());
    }

    #[test]
    fn display_renders() {
        let (host, _) = runs(64 * 1024, 2);
        assert!(host.to_string().contains("matches"));
    }
}
