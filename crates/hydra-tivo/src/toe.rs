//! TOE: TCP offload with a *real* TCP (paper §1.1).
//!
//! "Offloading has been traditionally synonymous with TCP Offload Engine
//! devices." This experiment runs the same `hydra-net` TCP-lite state
//! machine in two places while receiving a bulk transfer over a lossy
//! link:
//!
//! * **Host stack** — every segment is DMA'd to host memory, raises a
//!   (coalesced) interrupt, and is processed by the host CPU; acks are
//!   generated on the host and DMA'd back out.
//! * **TOE** — the NIC's processor terminates TCP: segments never cross
//!   the bus; only reassembled in-order payload is delivered to host
//!   memory in large chunks.
//!
//! Both must deliver byte-identical streams despite loss and reordering
//! (the protocol machine is literally the same code). The comparison is
//! host CPU time, interrupts taken, and bus traffic — Mogul's "dumb idea
//! whose time has come", quantified.

use hydra_devices::host::HostModel;
use hydra_devices::nic::NicModel;
use hydra_hw::cpu::Cycles;
use hydra_hw::irq::IrqDecision;
use hydra_media::cost::PacketCostModel;
use hydra_net::tcp::{TcpEndpoint, TcpSegment, MSS};
use hydra_sim::rng::DetRng;
use hydra_sim::time::{SimDuration, SimTime};

/// Where the receive-side TCP runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpPlacement {
    /// Conventional host stack.
    HostStack,
    /// TCP Offload Engine on the NIC.
    Toe,
}

impl TcpPlacement {
    /// Both placements.
    pub fn all() -> [TcpPlacement; 2] {
        [TcpPlacement::HostStack, TcpPlacement::Toe]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TcpPlacement::HostStack => "Host TCP stack",
            TcpPlacement::Toe => "TOE (NIC TCP)",
        }
    }
}

/// Results of one bulk receive.
#[derive(Debug, Clone)]
pub struct ToeRun {
    /// The placement.
    pub placement: TcpPlacement,
    /// Bytes delivered to the application, for cross-checking.
    pub delivered: Vec<u8>,
    /// Host CPU busy time.
    pub host_busy: SimDuration,
    /// Host interrupts taken.
    pub interrupts: u64,
    /// Bytes that crossed the host I/O bus.
    pub bus_bytes: u64,
    /// Retransmissions the connection needed (loss recovery worked).
    pub retransmissions: u64,
    /// Completion time.
    pub elapsed: SimDuration,
}

/// Receives `payload` over a link with `loss` probability per segment,
/// with the receive-side TCP at `placement`.
pub fn run_bulk_receive(placement: TcpPlacement, payload: &[u8], loss: f64, seed: u64) -> ToeRun {
    let mut host = HostModel::paper_host(seed ^ 0x70E0);
    let mut nic = NicModel::new_3c985b(seed);
    let mut rng = DetRng::new(seed).split(0x70E);

    // Sender (the remote peer) and receiver endpoints.
    let mut sender = TcpEndpoint::client(100);
    let mut receiver = TcpEndpoint::listener(9_000);
    let mut now = SimTime::ZERO;

    // Handshake (lossless for brevity; loss applies to the bulk phase).
    let syn = sender.connect(now);
    let synack = receiver.on_segment(&syn, now).pop().expect("syn-ack");
    for seg in sender.on_segment(&synack, now) {
        receiver.on_segment(&seg, now);
    }
    sender.send(payload);
    sender.close();

    let host_cycles_before = host.cpu.retired();
    let mut interrupts = 0u64;
    let rx_cost = PacketCostModel::host_receive();
    let mut rx_buf_rotor = 0usize;
    let rx_bufs: Vec<_> = (0..16)
        .map(|i| host.space.alloc(&format!("tcp-rx{i}"), MSS + 64))
        .collect();
    let app_buf = host.space.alloc("tcp-app", 64 * 1024);
    let start = now;

    let mut toe_delivered_storage: Vec<u8> = Vec::new();

    // Event loop: sender pushes segments, the wire drops some, receiver
    // processes them at its placement, acks flow back (lossless reverse
    // path keeps the loop simple), retransmissions fire on tick.
    let mut wire: Vec<TcpSegment> = sender.pump_output(now);
    let mut quiet_rounds = 0;
    while !(sender.all_acked() && receiver.state() == hydra_net::tcp::TcpState::CloseWait) {
        if wire.is_empty() {
            now += SimDuration::from_millis(250);
            wire.extend(sender.tick(now));
            wire.extend(receiver.tick(now));
            quiet_rounds += 1;
            assert!(quiet_rounds < 10_000, "transfer did not converge");
            continue;
        }
        quiet_rounds = 0;
        let seg = wire.remove(0);
        now += SimDuration::from_micros(15); // wire time per segment
        if rng.chance(loss) {
            continue; // the network ate it
        }
        let acks = match placement {
            TcpPlacement::HostStack => {
                // Segment DMA'd into a host ring buffer + interrupt.
                let rx = nic.rx_process(now, seg.wire_size());
                let buf = rx_bufs[rx_buf_rotor];
                rx_buf_rotor = (rx_buf_rotor + 1) % rx_bufs.len();
                let (xfer, irq) = nic.dma_to_host(rx.end, &mut host.bus, buf);
                host.mem.dma_transfer(buf);
                let visible = match irq {
                    IrqDecision::Fire { .. } => {
                        interrupts += 1;
                        host.interrupt(xfer.end).end
                    }
                    IrqDecision::Hold { deadline } => deadline.max(xfer.end),
                };
                // Host CPU runs the protocol machine.
                let work = host
                    .cpu
                    .reserve(visible, Cycles::new(rx_cost.cycles(seg.payload.len())));
                now = now.max(work.end);
                receiver.on_segment(&seg, now)
            }
            TcpPlacement::Toe => {
                // NIC CPU runs the protocol machine; no bus crossing yet.
                let rx = nic.rx_process(now, seg.wire_size());
                let work = nic.offcode_work(rx.end, seg.payload.len(), Cycles::new(2_000));
                now = now.max(work.end);
                receiver.on_segment(&seg, now)
            }
        };
        // Acks return over a lossless reverse path; charge the sender side
        // nothing (it is the remote machine).
        for ack in acks {
            for reply in sender.on_segment(&ack, now) {
                wire.push(reply);
            }
        }
        // TOE: in-order payload is delivered to the host in large chunks.
        if placement == TcpPlacement::Toe {
            let ready = receiver.take_deliverable();
            if ready.len() >= 16 * 1024 || (sender.all_acked() && !ready.is_empty()) {
                let n = ready.len().min(app_buf.len());
                let (h, nref) = (&mut host, &mut nic);
                let (xfer, _) = nref.dma_to_host(now, &mut h.bus, app_buf.slice(0, n));
                h.mem.dma_transfer(app_buf);
                interrupts += 1;
                host.interrupt(xfer.end);
            }
            toe_stash(&mut toe_delivered_storage, ready);
        }
    }

    // Drain whatever is still buffered.
    let mut delivered = std::mem::take(&mut toe_delivered_storage);
    delivered.extend(receiver.take_deliverable());

    let busy = host.cpu.retired().get() - host_cycles_before.get();
    ToeRun {
        placement,
        delivered,
        host_busy: host.cpu.spec().duration_of(Cycles::new(busy)),
        interrupts,
        bus_bytes: host.bus.bytes_moved(),
        retransmissions: sender.stats().retransmissions,
        elapsed: now.duration_since(start),
    }
}

// Helper storage threaded through the loop above (defined out-of-line so
// the loop reads naturally).
fn toe_stash(store: &mut Vec<u8>, chunk: Vec<u8>) {
    store.extend(chunk);
}

impl std::fmt::Display for ToeRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} {:>7} B | host busy {} | {} interrupts | bus {} B | {} retx | {}",
            self.placement.label(),
            self.delivered.len(),
            self.host_busy,
            self.interrupts,
            self.bus_bytes,
            self.retransmissions,
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 249) as u8).collect()
    }

    #[test]
    fn both_placements_deliver_identical_bytes_under_loss() {
        let data = payload(120_000);
        let host = run_bulk_receive(TcpPlacement::HostStack, &data, 0.05, 42);
        let toe = run_bulk_receive(TcpPlacement::Toe, &data, 0.05, 42);
        assert_eq!(host.delivered, data);
        assert_eq!(toe.delivered, data);
        assert!(host.retransmissions > 0, "loss must be exercised");
        assert!(toe.retransmissions > 0);
    }

    #[test]
    fn toe_saves_host_cpu_and_interrupts() {
        let data = payload(200_000);
        let host = run_bulk_receive(TcpPlacement::HostStack, &data, 0.02, 7);
        let toe = run_bulk_receive(TcpPlacement::Toe, &data, 0.02, 7);
        assert!(
            toe.host_busy < host.host_busy / 4,
            "toe {} vs host {}",
            toe.host_busy,
            host.host_busy
        );
        assert!(
            toe.interrupts < host.interrupts / 2,
            "toe {} vs host {} interrupts",
            toe.interrupts,
            host.interrupts
        );
    }

    #[test]
    fn lossless_transfer_has_no_retransmissions() {
        let data = payload(50_000);
        let run = run_bulk_receive(TcpPlacement::Toe, &data, 0.0, 1);
        assert_eq!(run.delivered, data);
        assert_eq!(run.retransmissions, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = payload(40_000);
        let a = run_bulk_receive(TcpPlacement::HostStack, &data, 0.1, 5);
        let b = run_bulk_receive(TcpPlacement::HostStack, &data, 0.1, 5);
        assert_eq!(a.retransmissions, b.retransmissions);
        assert_eq!(a.host_busy, b.host_busy);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn display_renders() {
        let run = run_bulk_receive(TcpPlacement::Toe, &payload(5_000), 0.0, 2);
        assert!(run.to_string().contains("TOE"));
    }
}
