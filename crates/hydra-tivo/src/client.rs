//! The Video Client experiment (paper §6.4, Table 4).
//!
//! The client of Figure 7's right-hand side receives the 1 kB / 5 ms UDP
//! stream and must (a) store it for later playback and (b) decode and
//! display it live. Two implementations:
//!
//! * **User-space** — the conventional path: NIC DMAs each packet into a
//!   kernel ring, interrupt, `recv()` copy to user space, `write()` back
//!   down through the NFS client to store it, software MPEG decode on the
//!   host CPU, and a bus blit of every raw frame to the GPU.
//! * **Offloaded** — the full HYDRA layout of Figure 8: the NIC's
//!   Streamer forwards each packet over the bus to the GPU (Decoder +
//!   Display Offcodes, hardware decode into the framebuffer) and to the
//!   smart disk (File Offcode, stored via the disk's private NFS path).
//!   "There are no components left on the host processor."
//!
//! Measured: client CPU utilization (Table 4) and L2 misses (the text's
//! "the non-offloaded client generates 12% more misses").

use hydra_devices::disk::SmartDiskModel;
use hydra_devices::gpu::GpuModel;
use hydra_devices::host::HostModel;
use hydra_devices::nic::NicModel;
use hydra_hw::cache::AccessKind;
use hydra_hw::cpu::Cycles;
use hydra_hw::irq::IrqDecision;
use hydra_hw::mem::Region;
use hydra_media::codec::{CodecConfig, EncodedFrame, Encoder, GopConfig};
use hydra_media::cost::DecodeCostModel;
use hydra_media::frame::SyntheticVideo;
use hydra_media::stream::{Chunk, Chunker};
use hydra_net::nfs::NasServer;
use hydra_sim::stats::Samples;
use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::Sim;

/// Which client implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// No playback: the Table 4 "Idle Client" baseline.
    Idle,
    /// Conventional user-space client.
    UserSpace,
    /// Fully offloaded HYDRA client.
    Offloaded,
}

impl ClientKind {
    /// All three scenarios in table order.
    pub fn all() -> [ClientKind; 3] {
        [
            ClientKind::Idle,
            ClientKind::UserSpace,
            ClientKind::Offloaded,
        ]
    }

    /// The label used in Table 4.
    pub fn label(&self) -> &'static str {
        match self {
            ClientKind::Idle => "Idle Client",
            ClientKind::UserSpace => "User-space Client",
            ClientKind::Offloaded => "Offloaded Client",
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Which implementation.
    pub kind: ClientKind,
    /// Stream chunk size (paper: 1 kB).
    pub packet_bytes: usize,
    /// Chunk arrival period (paper: 5 ms).
    pub period: SimDuration,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Sampling period for utilization/L2 windows.
    pub sample_period: SimDuration,
    /// Video geometry (QCIF by default).
    pub width: usize,
    /// Video height.
    pub height: usize,
    /// Host I/O interconnect generation. The paper's footnote 2: on PCIe
    /// the NIC-to-peer forward is a single transaction; on classic PCI it
    /// crosses the host bridge twice.
    pub bus: hydra_hw::bus::BusSpec,
    /// RNG seed.
    pub seed: u64,
}

impl ClientConfig {
    /// The paper's setup with a 60 s default run.
    pub fn paper(kind: ClientKind, seed: u64) -> Self {
        ClientConfig {
            kind,
            packet_bytes: 1024,
            period: SimDuration::from_millis(5),
            duration: SimDuration::from_secs(60),
            sample_period: SimDuration::from_secs(5),
            width: 176,
            height: 144,
            bus: hydra_hw::bus::BusSpec::pci64(),
            seed,
        }
    }

    /// The same client on a PCIe interconnect (footnote 2's what-if).
    pub fn paper_pcie(kind: ClientKind, seed: u64) -> Self {
        ClientConfig {
            bus: hydra_hw::bus::BusSpec::pcie_x4(),
            ..Self::paper(kind, seed)
        }
    }
}

/// Results of one client run.
#[derive(Debug, Clone)]
pub struct ClientRun {
    /// The scenario.
    pub kind: ClientKind,
    /// CPU utilization per sample window (Table 4), fractions.
    pub cpu_util: Samples,
    /// L2 misses per second per window.
    pub l2_miss_rate: Samples,
    /// Packets processed.
    pub packets: u64,
    /// Frames decoded (by host or GPU, depending on the scenario).
    pub frames_decoded: u64,
    /// Frames stored to the recording (blocks × block size).
    pub bytes_stored: u64,
    /// Host-bus transactions over the run (footnote 2's currency).
    pub bus_transactions: u64,
}

/// Calibration constants for the user-space client's kernel paths; see
/// DESIGN.md §2.
mod calib {
    use hydra_hw::cpu::Cycles;

    /// recv() path cycles per packet (interrupt bottom half, socket
    /// lookup, wakeup).
    pub const RECV_PATH: Cycles = Cycles::new(210_000);
    /// write()-to-NFS path cycles per packet.
    pub const WRITE_PATH: Cycles = Cycles::new(175_000);
    /// Software-decode dispatch overhead per frame beyond the codec model.
    pub const DECODE_DISPATCH: Cycles = Cycles::new(40_000);
}

/// The pre-encoded looping stream the server sends.
#[derive(Debug, Clone)]
struct StreamSource {
    chunks: Vec<Chunk>,
    frames: Vec<EncodedFrame>,
    next: usize,
}

impl StreamSource {
    fn new(cfg: &ClientConfig) -> Self {
        let video = SyntheticVideo::new(cfg.width, cfg.height);
        let raw: Vec<_> = (0..50).map(|i| video.frame(i)).collect();
        let frames = Encoder::new(CodecConfig {
            quantizer: 6,
            gop: GopConfig::ibbp(),
        })
        .encode_sequence(&raw);
        let mut chunker = Chunker::new(cfg.packet_bytes);
        let chunks = frames.iter().flat_map(|f| chunker.chunk_frame(f)).collect();
        StreamSource {
            chunks,
            frames,
            next: 0,
        }
    }

    /// The next arriving chunk, looping forever; also reports the frame
    /// that *completes* with this chunk, if any.
    fn next_chunk(&mut self) -> (usize, Option<usize>) {
        let idx = self.next;
        self.next = (self.next + 1) % self.chunks.len();
        let chunk = &self.chunks[idx];
        let completes = if chunk.offset as usize + chunk.data.len() == chunk.total_len as usize {
            Some(chunk.frame_id as usize % self.frames.len())
        } else {
            None
        };
        (idx, completes)
    }

    fn chunk_len(&self, idx: usize) -> usize {
        self.chunks[idx].data.len()
    }

    fn frame(&self, idx: usize) -> &EncodedFrame {
        &self.frames[idx]
    }
}

struct World {
    host: HostModel,
    nic: NicModel,
    gpu: GpuModel,
    disk: SmartDiskModel,
    disk_nas: NasServer,
    source: StreamSource,
    cfg: ClientConfig,
    // Host buffers (user-space path).
    rx_bufs: Vec<Region>,
    rx_next: usize,
    user_buf: Region,
    skb_buf: Region,
    frame_ref: Region,
    frame_cur: Region,
    meta_buf: Region,
    // Recording accumulation into 4 kB blocks.
    pending_block_bytes: usize,
    next_block: u64,
    // Stats.
    packets: u64,
    frames_decoded: u64,
    bytes_stored: u64,
    cpu_util: Samples,
    l2_rate: Samples,
    last_busy_secs: f64,
    last_misses: u64,
    last_sample_at: SimTime,
    irq_deadline_pending: bool,
    /// Arrival-jitter stream, independent of the host's own RNG so the
    /// background (idle) activity is identical across scenarios.
    jitter_rng: hydra_sim::rng::DetRng,
}

impl World {
    fn new(cfg: ClientConfig) -> Self {
        let jitter_rng = hydra_sim::rng::DetRng::new(cfg.seed).split(0xA221);
        let mut host = HostModel::paper_host(cfg.seed ^ 0xC11E);
        host.bus = hydra_hw::bus::Bus::new(cfg.bus);
        let source = StreamSource::new(&cfg);
        let rx_bufs = (0..32)
            .map(|i| host.space.alloc(&format!("rx{i}"), cfg.packet_bytes))
            .collect();
        let user_buf = host.space.alloc("user", 64 * 1024);
        let skb_buf = host.space.alloc("skb", cfg.packet_bytes + 256);
        let raw_bytes = cfg.width * cfg.height;
        let frame_ref = host.space.alloc("frame-ref", raw_bytes);
        let frame_cur = host.space.alloc("frame-cur", raw_bytes);
        let meta_buf = host.space.alloc("meta", 64 * 1024);
        let mut disk = SmartDiskModel::new();
        let mut disk_nas = NasServer::default();
        disk.open(&mut disk_nas, "/dvr/recording");
        World {
            host,
            nic: NicModel::new_3c985b(cfg.seed),
            gpu: GpuModel::new(),
            disk,
            disk_nas,
            source,
            cfg,
            rx_bufs,
            rx_next: 0,
            user_buf,
            skb_buf,
            frame_ref,
            frame_cur,
            meta_buf,
            pending_block_bytes: 0,
            next_block: 0,
            packets: 0,
            frames_decoded: 0,
            bytes_stored: 0,
            cpu_util: Samples::new(),
            l2_rate: Samples::new(),
            last_busy_secs: 0.0,
            last_misses: 0,
            last_sample_at: SimTime::ZERO,
            irq_deadline_pending: false,
            jitter_rng,
        }
    }

    fn take_window_sample(&mut self, now: SimTime) {
        let span = now.duration_since(self.last_sample_at).as_secs_f64();
        if span <= 0.0 {
            return;
        }
        let busy = self.host.cpu.utilization(now) * now.as_secs_f64();
        self.cpu_util
            .record(((busy - self.last_busy_secs) / span).clamp(0.0, 1.0));
        let misses = self.host.mem.cache().stats().misses;
        self.l2_rate
            .record((misses - self.last_misses) as f64 / span);
        self.last_busy_secs = busy;
        self.last_misses = misses;
        self.last_sample_at = now;
    }

    /// Appends `len` stream bytes to the recording, flushing whole blocks
    /// through the smart disk (offloaded path) at `now`.
    fn disk_store(&mut self, now: SimTime, len: usize) {
        self.pending_block_bytes += len;
        while self.pending_block_bytes >= hydra_devices::disk::BLOCK_BYTES {
            self.pending_block_bytes -= hydra_devices::disk::BLOCK_BYTES;
            let data = bytes::Bytes::from(vec![0u8; hydra_devices::disk::BLOCK_BYTES]);
            let idx = self.next_block;
            self.next_block += 1;
            if self
                .disk
                .write_block(now, &mut self.disk_nas, idx, data)
                .is_ok()
            {
                self.bytes_stored += hydra_devices::disk::BLOCK_BYTES as u64;
            }
        }
    }
}

/// One packet through the user-space client.
fn user_space_packet(
    world: &mut World,
    arrival: SimTime,
    chunk_idx: usize,
    completes: Option<usize>,
) {
    let len = world.source.chunk_len(chunk_idx);
    // NIC receive + DMA into the kernel ring.
    let rx = world.nic.rx_process(arrival, len);
    let kbuf = world.rx_bufs[world.rx_next];
    world.rx_next = (world.rx_next + 1) % world.rx_bufs.len();
    let (host, nic) = (&mut world.host, &mut world.nic);
    let (xfer, irq) = nic.dma_to_host(rx.end, &mut host.bus, kbuf);
    host.mem.dma_transfer(kbuf);
    let visible = match irq {
        IrqDecision::Fire { .. } => {
            let r = world.host.interrupt(xfer.end);
            r.end
        }
        IrqDecision::Hold { deadline } => {
            // The coalescing timer will fire; model its CPU cost once.
            if !world.irq_deadline_pending {
                world.irq_deadline_pending = true;
                let r = world.host.interrupt(deadline);
                world.irq_deadline_pending = false;
                r.end.max(xfer.end)
            } else {
                deadline.max(xfer.end)
            }
        }
    };
    // recv(): syscall + copy kernel -> user. The application reuses one
    // receive buffer, so the user side stays cache-warm.
    let sys = world.host.syscall(visible);
    let user_slice = world.user_buf.slice(0, len);
    let copy = world.host.cpu_copy(sys.end, kbuf, user_slice, len);
    let recv_path = world.host.cpu.reserve(copy.end, calib::RECV_PATH);
    // write() to the NFS recording: copy user -> skb, checksum, DMA out.
    let sys2 = world.host.syscall(recv_path.end);
    let copy2 = world
        .host
        .cpu_copy(sys2.end, user_slice, world.skb_buf, len);
    let csum = world.host.compute_over(
        copy2.end,
        world.skb_buf,
        Cycles::new(len as u64 / 2),
        AccessKind::Read,
    );
    let write_path = world.host.cpu.reserve(csum.end, calib::WRITE_PATH);
    let (host, nic) = (&mut world.host, &mut world.nic);
    let out = nic.dma_from_host(write_path.end, &mut host.bus, world.skb_buf);
    host.mem.dma_transfer(world.skb_buf);
    world.bytes_stored += len as u64;
    // Metadata traffic for both syscalls.
    let meta_at = (world.packets as usize * 768) % (64 * 1024 - 512);
    let meta = world.meta_buf.slice(meta_at, 512);
    world.host.mem.touch(meta, AccessKind::Write);
    let mut t = out.end;
    // If a frame completed: software decode + blit to the GPU.
    if let Some(fidx) = completes {
        let frame = world.source.frame(fidx).clone();
        let cycles = DecodeCostModel::software().cycles(&frame);
        // The decoder only reconstructs coded blocks; skipped blocks stay
        // in place in the reference, so the memory traffic scales with
        // the coded fraction of the frame.
        let raw = world.cfg.width * world.cfg.height;
        let coded = (raw as u64 * u64::from(frame.coded_blocks)
            / u64::from(frame.total_blocks().max(1))) as usize;
        let wr = world.host.compute_over(
            t,
            world.frame_cur.slice(0, coded.max(64)),
            Cycles::new(cycles) + calib::DECODE_DISPATCH,
            AccessKind::Write,
        );
        std::mem::swap(&mut world.frame_ref, &mut world.frame_cur);
        // Blit the raw frame across the bus to the GPU framebuffer.
        let raw = world.cfg.width * world.cfg.height;
        let blit = world.host.bus.transfer(wr.end, raw);
        world.gpu.blit_raw(blit.end, frame.display_index, raw);
        world.gpu.display();
        world.frames_decoded += 1;
        t = blit.end;
    }
    let _ = t;
    world.packets += 1;
}

/// One packet through the offloaded client.
fn offloaded_packet(
    world: &mut World,
    arrival: SimTime,
    chunk_idx: usize,
    completes: Option<usize>,
) {
    let len = world.source.chunk_len(chunk_idx);
    // NIC Streamer Offcode: classify and forward to both peers.
    let rx = world.nic.rx_process(arrival, len);
    let work = world.nic.offcode_work(rx.end, len, Cycles::new(400));
    let (host, nic) = (&mut world.host, &mut world.nic);
    // One bus crossing to the GPU...
    let to_gpu = nic.forward_to_peer(work.end, &mut host.bus, len);
    // ...and one to the smart disk.
    let to_disk = nic.forward_to_peer(work.end, &mut host.bus, len);
    // Smart disk stores asynchronously via its own NFS path.
    world.disk_store(to_disk.end, len);
    // GPU-side Decoder Offcode: hardware decode when a frame completes.
    if let Some(fidx) = completes {
        let frame = world.source.frame(fidx).clone();
        world.gpu.hw_decode(to_gpu.end, &frame);
        world.gpu.display();
        world.frames_decoded += 1;
    }
    world.packets += 1;
}

/// Runs one client scenario to completion.
pub fn run_client(cfg: ClientConfig) -> ClientRun {
    let kind = cfg.kind;
    let duration = cfg.duration;
    let sample_period = cfg.sample_period;
    let period = cfg.period;
    let end = SimTime::ZERO + duration;
    let mut sim = Sim::new(World::new(cfg));

    sim.every(SimTime::ZERO, SimDuration::from_millis(1), move |sim| {
        let now = sim.now();
        sim.model_mut().host.background_tick(now);
        now < end
    });
    sim.every(SimTime::ZERO + sample_period, sample_period, move |sim| {
        let now = sim.now();
        sim.model_mut().take_window_sample(now);
        now < end
    });

    if kind != ClientKind::Idle {
        sim.every(SimTime::ZERO + period, period, move |sim| {
            let now = sim.now();
            // Arrival jitter from the (offloaded) server: tens of µs.
            let jitter = sim.model_mut().jitter_rng.next_below(60);
            let arrival = now + SimDuration::from_micros(jitter);
            let (chunk_idx, completes) = sim.model_mut().source.next_chunk();
            match kind {
                ClientKind::UserSpace => {
                    user_space_packet(sim.model_mut(), arrival, chunk_idx, completes);
                }
                ClientKind::Offloaded => {
                    offloaded_packet(sim.model_mut(), arrival, chunk_idx, completes);
                }
                ClientKind::Idle => unreachable!("idle schedules no stream"),
            }
            now < end
        });
    }

    sim.run_until(end);
    let world = sim.into_model();
    ClientRun {
        kind,
        cpu_util: world.cpu_util,
        l2_miss_rate: world.l2_rate,
        packets: world.packets,
        frames_decoded: world.frames_decoded,
        bytes_stored: world.bytes_stored,
        bus_transactions: world.host.bus.transactions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(kind: ClientKind, secs: u64) -> ClientRun {
        let mut cfg = ClientConfig::paper(kind, 7);
        cfg.duration = SimDuration::from_secs(secs);
        run_client(cfg)
    }

    #[test]
    fn idle_client_matches_baseline() {
        let run = short(ClientKind::Idle, 30);
        let u = run.cpu_util.summary().mean;
        assert!((u - 0.029).abs() < 0.012, "idle utilization {u}");
        assert_eq!(run.packets, 0);
    }

    #[test]
    fn cpu_ordering_matches_table_4() {
        let idle = short(ClientKind::Idle, 30).cpu_util.summary().mean;
        let user = short(ClientKind::UserSpace, 30).cpu_util.summary().mean;
        let off = short(ClientKind::Offloaded, 30).cpu_util.summary().mean;
        assert!(user > idle + 0.02, "user {user} vs idle {idle}");
        assert!(
            (off - idle).abs() < 0.004,
            "offloaded {off} should equal idle {idle}"
        );
    }

    #[test]
    fn l2_user_space_penalty_near_12_percent() {
        let idle = short(ClientKind::Idle, 30).l2_miss_rate.summary().mean;
        let user = short(ClientKind::UserSpace, 30).l2_miss_rate.summary().mean;
        let off = short(ClientKind::Offloaded, 30).l2_miss_rate.summary().mean;
        let n_user = user / idle;
        let n_off = off / idle;
        assert!(
            (1.05..1.25).contains(&n_user),
            "user-space normalized {n_user}"
        );
        assert!((n_off - 1.0).abs() < 0.02, "offloaded normalized {n_off}");
    }

    #[test]
    fn both_clients_decode_and_store() {
        let user = short(ClientKind::UserSpace, 20);
        let off = short(ClientKind::Offloaded, 20);
        assert!(user.frames_decoded > 0);
        assert!(off.frames_decoded > 0);
        assert!(user.bytes_stored > 0);
        assert!(off.bytes_stored > 0);
        // Same stream: same packet count and similar decode counts.
        assert_eq!(user.packets, off.packets);
        assert!(user.frames_decoded.abs_diff(off.frames_decoded) <= 1);
    }

    #[test]
    fn offloaded_work_lands_on_devices() {
        let mut cfg = ClientConfig::paper(ClientKind::Offloaded, 7);
        cfg.duration = SimDuration::from_secs(10);
        let kind = cfg.kind;
        let end = SimTime::ZERO + cfg.duration;
        // Re-run inline so we can inspect the world.
        let mut sim = Sim::new(World::new(cfg));
        let period = SimDuration::from_millis(5);
        sim.every(SimTime::ZERO + period, period, move |sim| {
            let now = sim.now();
            let (c, f) = sim.model_mut().source.next_chunk();
            match kind {
                ClientKind::Offloaded => offloaded_packet(sim.model_mut(), now, c, f),
                _ => unreachable!(),
            }
            now < end
        });
        sim.run_until(end);
        let w = sim.into_model();
        assert!(w.gpu.stats().frames_decoded > 0);
        assert_eq!(w.gpu.stats().frames_blitted, 0, "no host blits");
        assert!(w.disk.stats().blocks_written > 0);
        assert!(w.nic.stats().peer_bytes > 0);
        assert_eq!(w.nic.stats().host_dma_bytes, 0, "no host DMA");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = short(ClientKind::UserSpace, 10);
        let b = short(ClientKind::UserSpace, 10);
        assert_eq!(a.cpu_util.values(), b.cpu_util.values());
        assert_eq!(a.frames_decoded, b.frames_decoded);
    }

    #[test]
    fn pcie_halves_offloaded_peer_transactions() {
        // Footnote 2: a NIC-to-peer packet is one transaction on PCIe but
        // two (through the host bridge) on classic PCI.
        let mut pci = ClientConfig::paper(ClientKind::Offloaded, 7);
        pci.duration = SimDuration::from_secs(10);
        let mut pcie = ClientConfig::paper_pcie(ClientKind::Offloaded, 7);
        pcie.duration = SimDuration::from_secs(10);
        let run_pci = run_client(pci);
        let run_pcie = run_client(pcie);
        assert_eq!(run_pci.packets, run_pcie.packets);
        // Two peer forwards per packet: PCI = 4 transactions, PCIe = 2.
        assert_eq!(run_pci.bus_transactions, run_pci.packets * 4);
        assert_eq!(run_pcie.bus_transactions, run_pcie.packets * 2);
    }
}
