//! Offloading vs. *onloading* (paper §1.1).
//!
//! The paper's related-work argument: Piglet dedicates a host CPU to I/O
//! ("onloading"), Regnier et al. onload TCP onto one core, SINIC
//! integrates the NIC with the CPU. "Although onloading part of the
//! device's functionality to a host processor can yield better
//! performance, eventually the data will still need to be transferred
//! between the host CPU and the device and will then incur the
//! bus-crossing overhead." And the power argument: a Pentium 4 burns 68 W
//! where a peripheral XScale burns 0.5 W.
//!
//! [`compare_designs`] evaluates the three designs on a steady packet
//! stream and reports exactly those trade-offs: application-CPU load,
//! dedicated-core count, bus crossings per packet, and watts per Gbps.

use hydra_hw::cpu::CpuSpec;
use hydra_media::cost::PacketCostModel;

/// The I/O processing design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoDesign {
    /// Conventional: interrupts + protocol work share the application CPU.
    Interrupt,
    /// Onloading (Piglet / TCP onload): one host core is dedicated to I/O.
    Onload,
    /// Offloading (HYDRA): the NIC's embedded processor does the protocol
    /// work; payloads can move device-to-device.
    Offload,
}

impl IoDesign {
    /// All three designs in presentation order.
    pub fn all() -> [IoDesign; 3] {
        [IoDesign::Interrupt, IoDesign::Onload, IoDesign::Offload]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            IoDesign::Interrupt => "Interrupt (shared CPU)",
            IoDesign::Onload => "Onload (dedicated core)",
            IoDesign::Offload => "Offload (NIC CPU)",
        }
    }
}

/// Evaluation of one design at one load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoDesignPoint {
    /// The design.
    pub design: IoDesign,
    /// Fraction of the *application* CPU consumed by I/O work.
    pub app_cpu_fraction: f64,
    /// Whole host cores dedicated to I/O.
    pub dedicated_cores: u32,
    /// Host memory-bus crossings per payload (the paper's footnote-2
    /// currency).
    pub bus_crossings_per_packet: u32,
    /// Electrical power of the I/O engine itself, in watts.
    pub io_power_watts: f64,
    /// Watts of I/O-engine power per Gbps of goodput.
    pub watts_per_gbps: f64,
}

/// Compares the three designs for a stream of `pps` packets of
/// `packet_bytes` each.
///
/// # Panics
///
/// Panics if `packet_bytes` is zero.
pub fn compare_designs(packet_bytes: usize, pps: f64) -> [IoDesignPoint; 3] {
    assert!(packet_bytes > 0, "packet size must be positive");
    let host = CpuSpec::pentium4();
    let nic = CpuSpec::xscale();
    let rx = PacketCostModel::host_receive();
    let gbps = pps * packet_bytes as f64 * 8.0 / 1e9;

    // Protocol cycles per second of this stream on a host core.
    let host_cycles = pps * rx.cycles(packet_bytes) as f64;
    // The NIC's firmware path is leaner (no context switches, no generic
    // socket layer) but its core is 4x slower; net per-packet cycle count
    // is ~40% of the host path.
    let nic_cycles = pps * (rx.cycles(packet_bytes) as f64 * 0.4);

    IoDesign::all().map(|design| match design {
        IoDesign::Interrupt => IoDesignPoint {
            design,
            app_cpu_fraction: (host_cycles / host.freq_hz as f64).min(1.0),
            dedicated_cores: 0,
            // NIC -> kernel buffer -> application buffer.
            bus_crossings_per_packet: 2,
            io_power_watts: 0.0, // burns the app CPU instead
            watts_per_gbps: 0.0,
        },
        IoDesign::Onload => IoDesignPoint {
            design,
            // The application core is freed...
            app_cpu_fraction: 0.0,
            // ...because a whole second core soaks the I/O.
            dedicated_cores: 1,
            // The data still crosses to the app's cache/core.
            bus_crossings_per_packet: 2,
            io_power_watts: host.power_busy_watts,
            watts_per_gbps: host.power_busy_watts / gbps.max(1e-9),
        },
        IoDesign::Offload => IoDesignPoint {
            design,
            app_cpu_fraction: 0.0,
            dedicated_cores: 0,
            // Device-to-device delivery: one crossing (PCIe peer) or the
            // single final DMA into the consumer's buffer.
            bus_crossings_per_packet: 1,
            io_power_watts: nic.power_busy_watts * (nic_cycles / nic.freq_hz as f64).min(1.0),
            watts_per_gbps: nic.power_busy_watts * (nic_cycles / nic.freq_hz as f64).min(1.0)
                / gbps.max(1e-9),
        },
    })
}

impl std::fmt::Display for IoDesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<24} app cpu {:>5.1}% | +{} core | {} bus crossings/pkt | {:>6.2} W I/O ({:>6.2} W/Gbps)",
            self.design.label(),
            self.app_cpu_fraction * 100.0,
            self.dedicated_cores,
            self.bus_crossings_per_packet,
            self.io_power_watts,
            self.watts_per_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> [IoDesignPoint; 3] {
        // The TiVoPC-ish stream scaled up: 1 kB packets at 100k pps (~0.8 Gbps).
        compare_designs(1024, 100_000.0)
    }

    #[test]
    fn interrupt_design_burns_the_app_cpu() {
        let [interrupt, onload, offload] = points();
        assert!(interrupt.app_cpu_fraction > 0.4);
        assert_eq!(onload.app_cpu_fraction, 0.0);
        assert_eq!(offload.app_cpu_fraction, 0.0);
    }

    #[test]
    fn onload_frees_the_app_cpu_but_not_the_bus() {
        let [interrupt, onload, offload] = points();
        // The paper's §1.1 point verbatim: onloading keeps the bus
        // crossings of the conventional path.
        assert_eq!(
            onload.bus_crossings_per_packet,
            interrupt.bus_crossings_per_packet
        );
        assert!(offload.bus_crossings_per_packet < onload.bus_crossings_per_packet);
        // And it costs a whole core.
        assert_eq!(onload.dedicated_cores, 1);
        assert_eq!(offload.dedicated_cores, 0);
    }

    #[test]
    fn power_gap_is_orders_of_magnitude() {
        let [_, onload, offload] = points();
        // Paper §1.1 argument 3: 68 W vs 0.5 W-class peripheral.
        assert!(
            onload.io_power_watts > 50.0 * offload.io_power_watts,
            "onload {} W vs offload {} W",
            onload.io_power_watts,
            offload.io_power_watts
        );
        assert!(onload.watts_per_gbps > 50.0 * offload.watts_per_gbps);
    }

    #[test]
    fn small_packets_make_interrupt_design_saturate() {
        let [interrupt, ..] = compare_designs(64, 1_000_000.0);
        assert_eq!(interrupt.app_cpu_fraction, 1.0);
    }

    #[test]
    fn display_renders() {
        for p in points() {
            assert!(p.to_string().contains("bus crossings"));
        }
    }
}
