//! Record-then-playback: the TiVo feature itself.
//!
//! The paper's §1: "we provide online-recording while watching a media
//! stream and support its playback at a later time. … In case a user
//! wishes to replay the stored media stream, a Streamer component running
//! on the disk controller will transfer previously stored packets to the
//! Decoder."
//!
//! This module runs that flow end to end *with real bytes*: encode a
//! synthetic movie, record the serialized stream through the smart disk
//! onto the NAS, then have the disk-side Streamer pace it back out, cross
//! the bus to the GPU, reassemble, and decode — verifying the pixels that
//! come out. The host CPU does no data-path work in either phase.

use bytes::Bytes;
use hydra_devices::disk::{SmartDiskModel, BLOCK_BYTES};
use hydra_devices::gpu::GpuModel;
use hydra_devices::nic::NicModel;
use hydra_hw::bus::{Bus, BusSpec};
use hydra_hw::cpu::Cycles;
use hydra_media::codec::{CodecConfig, Decoder, Encoder, GopConfig};
use hydra_media::frame::{psnr, RawFrame, SyntheticVideo};
use hydra_media::stream::{Chunker, Reassembler, StreamError};
use hydra_net::nfs::NasServer;
use hydra_sim::stats::Samples;
use hydra_sim::time::{SimDuration, SimTime};

/// Parameters of a record/playback run.
#[derive(Debug, Clone)]
pub struct PlaybackConfig {
    /// Number of video frames in the recording.
    pub frames: u64,
    /// Codec quantizer (1 = lossless end to end).
    pub quantizer: u16,
    /// Video width.
    pub width: usize,
    /// Video height.
    pub height: usize,
    /// Playback pacing per chunk (the stream's 5 ms cadence).
    pub period: SimDuration,
    /// Chunk size.
    pub chunk_bytes: usize,
}

impl Default for PlaybackConfig {
    fn default() -> Self {
        PlaybackConfig {
            frames: 25,
            quantizer: 6,
            width: 96,
            height: 64,
            period: SimDuration::from_millis(5),
            chunk_bytes: 1024,
        }
    }
}

/// Results of a record/playback run.
#[derive(Debug)]
pub struct PlaybackRun {
    /// Frames decoded during playback.
    pub frames_played: u64,
    /// Worst PSNR of any played frame vs. the original (infinite at q=1).
    pub worst_psnr_db: f64,
    /// Inter-chunk gaps during playback, ms (pacing fidelity).
    pub playback_gaps_ms: Samples,
    /// Bytes stored on the NAS by the recording phase.
    pub bytes_recorded: u64,
    /// When the playback finished.
    pub finished_at: SimTime,
}

/// Errors of the playback pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaybackError {
    /// Disk I/O failed.
    Disk(String),
    /// The recorded stream did not reassemble/parse.
    Stream(StreamError),
    /// The codec rejected the stream.
    Codec(String),
}

impl std::fmt::Display for PlaybackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaybackError::Disk(e) => write!(f, "disk: {e}"),
            PlaybackError::Stream(e) => write!(f, "stream: {e}"),
            PlaybackError::Codec(e) => write!(f, "codec: {e}"),
        }
    }
}

impl std::error::Error for PlaybackError {}

/// Runs the full record-then-playback flow.
///
/// # Errors
///
/// Fails if any stage of the pipeline corrupts the stream — which would
/// be a bug, and is exactly what the integration tests assert never
/// happens.
pub fn run_record_playback(cfg: PlaybackConfig) -> Result<PlaybackRun, PlaybackError> {
    // --- Produce the movie. -------------------------------------------
    let video = SyntheticVideo::new(cfg.width, cfg.height);
    let originals: Vec<RawFrame> = (0..cfg.frames).map(|i| video.frame(i)).collect();
    let encoded = Encoder::new(CodecConfig {
        quantizer: cfg.quantizer,
        gop: GopConfig::ibbp(),
    })
    .encode_sequence(&originals);

    // --- Phase 1: record through the smart disk. -----------------------
    let mut nas = NasServer::default();
    let mut disk = SmartDiskModel::new();
    disk.open(&mut nas, "/dvr/rec0");
    let mut chunker = Chunker::new(cfg.chunk_bytes);
    let mut wire = Vec::new();
    for f in &encoded {
        for c in chunker.chunk_frame(f) {
            wire.extend_from_slice(&c.encode());
        }
    }
    // Prefix the stream with its length so playback knows where it ends.
    let mut recorded = (wire.len() as u64).to_le_bytes().to_vec();
    recorded.extend_from_slice(&wire);
    let mut t = SimTime::ZERO;
    for (idx, block) in recorded.chunks(BLOCK_BYTES).enumerate() {
        let op = disk
            .write_block(t, &mut nas, idx as u64, Bytes::copy_from_slice(block))
            .map_err(|e| PlaybackError::Disk(e.to_string()))?;
        t = op.complete_at;
    }
    let bytes_recorded = recorded.len() as u64;

    // --- Phase 2: playback from the disk-side Streamer. ----------------
    let mut bus = Bus::new(BusSpec::pci64());
    let mut gpu = GpuModel::new();
    // The disk controller is, physically, a programmable NIC — reuse its
    // firmware timer for pacing.
    let mut pacer = NicModel::new_3c985b(99);
    let mut reassembler = Reassembler::new();
    let mut decoder = Decoder::new();
    let mut played: Vec<(u64, RawFrame)> = Vec::new();
    let mut gaps = Samples::new();
    let mut last_delivery: Option<SimTime> = None;

    // Read the recording back block by block, re-chunk into the paced
    // stream.
    let mut stream = Vec::new();
    let mut read_t = t;
    let mut idx = 0u64;
    loop {
        let (data, op) = disk
            .read_block(read_t, &mut nas, idx)
            .map_err(|e| PlaybackError::Disk(e.to_string()))?;
        read_t = op.complete_at;
        if data.is_empty() {
            break;
        }
        stream.extend_from_slice(&data);
        idx += 1;
    }
    let total = u64::from_le_bytes(
        stream[..8]
            .try_into()
            .map_err(|_| PlaybackError::Disk("short stream".into()))?,
    ) as usize;
    let stream = &stream[8..8 + total];

    // Chunks were written back-to-back: parse them out again. Each chunk
    // is 12 bytes of header + payload; payload length is not stored in the
    // chunk header, so re-derive it from the chunker geometry.
    let mut offset = 0usize;
    let mut n = 0u64;
    while offset < stream.len() {
        let header_end = offset + 12;
        let chunk_total = u32::from_be_bytes(stream[offset + 8..header_end].try_into().unwrap());
        let chunk_off = u32::from_be_bytes(stream[offset + 4..offset + 8].try_into().unwrap());
        let payload = (chunk_total as usize - chunk_off as usize).min(cfg.chunk_bytes);
        let end = header_end + payload;
        let raw = Bytes::copy_from_slice(&stream[offset..end]);
        offset = end;

        // Pace: the disk Streamer fires every `period`.
        let target = read_t + cfg.period * (n + 1);
        let fire = pacer.timer_fire(target);
        n += 1;
        // Controller work + bus crossing to the GPU.
        let work = disk.offcode_work(fire, Cycles::new(2_000));
        let xfer = bus.transfer(work.end, payload + 12);
        let delivery = xfer.end;
        if let Some(prev) = last_delivery {
            gaps.record(delivery.duration_since(prev).as_millis_f64());
        }
        last_delivery = Some(delivery);

        // GPU-side: reassemble and decode.
        let chunk = hydra_media::stream::Chunk::decode(raw).map_err(PlaybackError::Stream)?;
        if let Some(frame) = reassembler.push(chunk).map_err(PlaybackError::Stream)? {
            gpu.hw_decode(delivery, &frame);
            let out = decoder
                .push(&frame)
                .map_err(|e| PlaybackError::Codec(e.to_string()))?;
            played.extend(out);
        }
    }
    played.extend(decoder.flush());
    played.sort_by_key(|(i, _)| *i);

    let mut worst = f64::INFINITY;
    for (i, frame) in &played {
        let p = psnr(&originals[*i as usize], frame);
        if p < worst {
            worst = p;
        }
    }

    Ok(PlaybackRun {
        frames_played: played.len() as u64,
        worst_psnr_db: worst,
        playback_gaps_ms: gaps,
        bytes_recorded,
        finished_at: last_delivery.unwrap_or(SimTime::ZERO),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_round_trip_through_the_disk() {
        let run = run_record_playback(PlaybackConfig {
            quantizer: 1,
            frames: 13,
            ..PlaybackConfig::default()
        })
        .unwrap();
        assert_eq!(run.frames_played, 13);
        assert_eq!(run.worst_psnr_db, f64::INFINITY, "q=1 must be lossless");
        assert!(run.bytes_recorded > 0);
    }

    #[test]
    fn lossy_round_trip_has_good_quality() {
        let run = run_record_playback(PlaybackConfig::default()).unwrap();
        assert_eq!(run.frames_played, 25);
        assert!(run.worst_psnr_db > 28.0, "psnr {}", run.worst_psnr_db);
    }

    #[test]
    fn playback_pacing_is_firmware_tight() {
        let run = run_record_playback(PlaybackConfig::default()).unwrap();
        let s = run.playback_gaps_ms.summary();
        assert!((s.median - 5.0).abs() < 0.1, "median gap {}", s.median);
        assert!(s.std_dev < 0.2, "gap std {}", s.std_dev);
    }

    #[test]
    fn recording_grows_with_movie_length() {
        let short = run_record_playback(PlaybackConfig {
            frames: 5,
            ..PlaybackConfig::default()
        })
        .unwrap();
        let long = run_record_playback(PlaybackConfig {
            frames: 40,
            ..PlaybackConfig::default()
        })
        .unwrap();
        assert!(long.bytes_recorded > short.bytes_recorded * 4);
        assert_eq!(long.frames_played, 40);
    }
}
