//! The shared observability demo deployment.
//!
//! One deterministic scenario used by the `repro` binary's `metrics` and
//! `trace` selectors, the budget-gate test, and CI: a three-Offcode
//! TiVo-style pipeline (streamer → decoder → display) deployed on the
//! full testbed, a Figure-3 channel pushing calls at the streamer, and
//! one message explicitly walked through the device datapath (NIC
//! firmware → peer-to-peer bus forward → GPU hardware decode) so its
//! causal chain spans three trace pids: host, NIC, GPU.
//!
//! Because everything here is driven by sim time and the deterministic
//! models, two invocations produce byte-identical snapshots, Chrome
//! traces, and budget-gate inputs.

use hydra_core::call::{Call, Value};
use hydra_core::channel::ChannelConfig;
use hydra_core::device::{DeviceDescriptor, DeviceRegistry};
use hydra_core::error::RuntimeError;
use hydra_core::offcode::{Offcode, OffcodeCtx};
use hydra_core::runtime::{Runtime, RuntimeConfig};
use hydra_hw::bus::{Bus, BusSpec};
use hydra_media::codec::{CodecConfig, Encoder, GopConfig};
use hydra_media::frame::SyntheticVideo;
use hydra_odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument};
use hydra_sim::time::SimTime;

use hydra_devices::gpu::GpuModel;
use hydra_devices::nic::NicModel;

/// A do-nothing Offcode for the demo deployment.
#[derive(Debug)]
struct DemoOffcode {
    guid: Guid,
    name: &'static str,
}

impl Offcode for DemoOffcode {
    fn guid(&self) -> Guid {
        self.guid
    }
    fn bind_name(&self) -> &str {
        self.name
    }
    fn handle_call(&mut self, _ctx: &mut OffcodeCtx, _call: &Call) -> Result<Value, RuntimeError> {
        Ok(Value::Unit)
    }
}

fn class(id: u32) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: format!("class-{id}"),
        bus: None,
        mac: None,
        vendor: None,
    }
}

/// The demo application's three ODF manifests (streamer → decoder →
/// display), root first. Shared between [`demo_deployment`] and the
/// `repro -- lint` deployment lint.
pub fn demo_odfs() -> Vec<OdfDocument> {
    let streamer = OdfDocument::new("tivo.Streamer", Guid(1))
        .with_target(class(class_ids::NETWORK))
        .with_import(Import {
            file: String::new(),
            bind_name: "tivo.Decoder".into(),
            guid: Guid(2),
            constraint: ConstraintKind::Gang,
            priority: 0,
        });
    let decoder = OdfDocument::new("tivo.Decoder", Guid(2))
        .with_target(class(class_ids::GPU))
        .with_import(Import {
            file: String::new(),
            bind_name: "tivo.Display".into(),
            guid: Guid(3),
            constraint: ConstraintKind::Pull,
            priority: 0,
        });
    let display = OdfDocument::new("tivo.Display", Guid(3)).with_target(class(class_ids::GPU));
    vec![streamer, decoder, display]
}

/// Builds, deploys and exercises the demo application, returning the
/// runtime with its recorder fully populated.
///
/// The scenario: deploy the three-Offcode closure, pump four calls
/// through the streamer's Figure-3 channel, then take a fifth message
/// off the channel by hand and walk it through the traced device
/// datapath — NIC receive, bus forward, GPU decode — so at least one
/// causal chain crosses host → NIC → GPU.
pub fn demo_deployment() -> Runtime {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic()); // dev1
    reg.install(DeviceDescriptor::smart_disk()); // dev2
    reg.install(DeviceDescriptor::gpu()); // dev3
    let mut rt = Runtime::new(reg, RuntimeConfig::default());

    for odf in demo_odfs() {
        let guid = odf.guid;
        let name: &'static str = match guid {
            Guid(1) => "tivo.Streamer",
            Guid(2) => "tivo.Decoder",
            _ => "tivo.Display",
        };
        rt.register_offcode(odf, move || Box::new(DemoOffcode { guid, name }))
            .expect("fresh depot");
    }

    let root = rt
        .create_offcode(Guid(1), SimTime::ZERO)
        .expect("demo app deploys");
    let device = rt.device_of(root).expect("deployed");
    let chan = rt
        .create_channel(ChannelConfig::figure3(device))
        .expect("figure-3 channel");
    rt.connect_offcode(chan, root).expect("connect streamer");
    let mut t = SimTime::ZERO;
    for i in 0..4u64 {
        let call = Call::new(Guid(1), "frame").with_return_id(i);
        t = rt.send_call(chan, &call, t).expect("channel accepts");
    }
    rt.pump(t);

    // One more message, received by hand so its TraceCtx can continue
    // through the device models: NIC firmware → bus forward → GPU decode.
    let recorder = rt.recorder().clone();
    let mut nic = NicModel::new_3c985b(7);
    nic.set_recorder(recorder.clone(), 1);
    let mut gpu = GpuModel::new();
    gpu.set_recorder(recorder, 3);
    let call = Call::new(Guid(1), "frame").with_return_id(99);
    let t2 = rt.send_call(chan, &call, t).expect("channel accepts");
    let msg = rt
        .executive_mut()
        .get_mut(chan)
        .expect("channel is live")
        .recv(t2, 0)
        .expect("message delivered");
    let bytes = msg.data.len();
    let (r, ctx) = nic.rx_process_traced(t2, bytes, msg.trace);
    let mut bus = Bus::new(BusSpec::pcie_x4());
    let (xfer, ctx) = nic.forward_to_peer_traced(r.end, &mut bus, bytes, ctx);
    let video = SyntheticVideo::new(64, 48);
    let frames = Encoder::new(CodecConfig {
        quantizer: 4,
        gop: GopConfig::ipp(),
    })
    .encode_sequence(&[video.frame(0)]);
    gpu.hw_decode_traced(xfer.end, &frames[0], ctx);
    rt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_is_deterministic() {
        let a = demo_deployment().metrics_snapshot();
        let b = demo_deployment().metrics_snapshot();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn demo_chain_spans_three_devices() {
        let rt = demo_deployment();
        let snap = rt.metrics_snapshot();
        // The hand-walked message: find the gpu.decode hop and follow its
        // trace back — it must include events on host (0), NIC (1), GPU (3).
        let decode = snap
            .events
            .iter()
            .find(|e| e.name == "gpu.decode")
            .expect("demo decodes on the GPU");
        let chain = snap.trace_events(decode.trace);
        assert!(chain.len() >= 5, "send, hop, recv, nic hops, gpu decode");
        let devices: std::collections::BTreeSet<u64> = chain.iter().map(|e| e.device).collect();
        assert!(devices.contains(&0) && devices.contains(&1) && devices.contains(&3));
        // Connected: every non-root event's parent is in the chain.
        for e in &chain {
            if let Some(p) = e.parent {
                assert!(chain.iter().any(|o| o.id == p), "parent {p} in chain");
            }
        }
    }
}
