//! Certification scenarios: declared-traffic ODF sets and the
//! bound-vs-observed differential replay.
//!
//! `repro -- certify` runs `hydra-verify`'s quantitative passes over
//! three built-in deployments. The sets here are the regular demo and
//! TiVo-client ODF graphs annotated with `<traffic>` declarations
//! (arrival curves), plus a synthetic `stats` set shaped after the
//! telemetry scenario in [`crate::stats`], so the static certificate can
//! be checked against that scenario's observed timelines.
//!
//! The module also carries the empirical half of the differential
//! harness:
//!
//! - [`observe_declared`] replays a declared-traffic set against real
//!   Figure-3 channels at exactly the declared rates and payload sizes,
//!   then reports per-ring observed p99 latency and peak queue depth —
//!   numbers the certificate's bounds must bracket.
//! - [`stats_observation`] extracts the same observed values from the
//!   full `repro -- stats` scenario (clean or faulted), mapping its two
//!   channels onto the synthetic set's rings.
//! - [`stats_overlay`] converts the committed stats fault plan into the
//!   disruption budget that widens the faulted certificate.

use bytes::Bytes;
use hydra_core::channel::{ChannelConfig, ChannelExecutive, CHANNEL_QUEUE_DEPTH};
use hydra_core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
use hydra_core::runtime::{Runtime, RuntimeConfig};
use hydra_obs::{peak_level, MetricsSnapshot, Sampler};
use hydra_odf::odf::{
    class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument, TrafficSpec,
};
use hydra_sim::fault::{FaultKind, FaultPlan};
use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::Sim;
use hydra_verify::{FaultOverlay, ServiceTable};

use crate::stats::{run_stats_observed, stats_horizon};

/// Recovery allowance charged per [`FaultKind::Crash`] event: the
/// disruption budget assumes the crashed device is effectively lost for
/// this long (re-deployment, failover) within the observation horizon.
const CRASH_RECOVERY_NS: u64 = 1_000_000;

/// Charge per lost frame / exhausted ring slot when converting the
/// remaining fault kinds into disruption time.
const PER_UNIT_FAULT_NS: u64 = 10_000;

fn class(id: u32) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: format!("class-{id}"),
        bus: None,
        mac: None,
        vendor: None,
    }
}

fn link(guid: Guid, bind_name: &str) -> Import {
    Import {
        file: String::new(),
        bind_name: bind_name.into(),
        guid,
        constraint: ConstraintKind::Link,
        priority: 0,
    }
}

fn traffic(rate_per_sec: u64, burst: u64, max_bytes: u64) -> TrafficSpec {
    TrafficSpec {
        rate_per_sec,
        burst,
        max_bytes,
    }
}

/// The demo deployment ([`crate::demo::demo_odfs`]) with declared
/// arrival curves: the streamer and decoder each sustain 5 000 calls/s
/// in bursts of two 1 500-byte messages toward their import.
#[must_use]
pub fn demo_certify_odfs() -> Vec<OdfDocument> {
    crate::demo::demo_odfs()
        .into_iter()
        .map(|odf| {
            if odf.imports.is_empty() {
                odf
            } else {
                odf.with_traffic(traffic(5_000, 2, 1_500))
            }
        })
        .collect()
}

/// The TiVo client deployment ([`crate::components::tivo_client_odfs`])
/// with declared arrival curves: the GUI issues rare small control
/// calls; the streaming pipeline sustains 3 000 calls/s of 16 KiB
/// payloads in bursts of two.
#[must_use]
pub fn tivo_certify_odfs() -> Vec<OdfDocument> {
    crate::components::tivo_client_odfs()
        .into_iter()
        .map(|odf| match odf.bind_name.as_str() {
            "tivo.Gui" => odf.with_traffic(traffic(200, 1, 512)),
            "tivo.Streamer.Net" | "tivo.Streamer.Disk" | "tivo.Decoder" => {
                odf.with_traffic(traffic(3_000, 2, 16_384))
            }
            _ => odf,
        })
        .collect()
}

/// A synthetic deployment shaped after the `repro -- stats` telemetry
/// scenario: one bulk source feeding a NIC-resident sink that fans out
/// to GPU / disk / host backends (the 16 KiB / 1 KiB / 64 B size
/// classes), a small-payload control path into the disk, and a periodic
/// host-load chain. Its certificate's NIC-ring and control-ring bounds
/// are the ones the stats scenario's observed telemetry must respect.
#[must_use]
pub fn stats_certify_odfs() -> Vec<OdfDocument> {
    let source = OdfDocument::new("stats.Source", Guid(0x9001))
        .with_traffic(traffic(10_000, 2, 16_384))
        .with_import(link(Guid(0x9002), "stats.NicSink"));
    let nic_sink = OdfDocument::new("stats.NicSink", Guid(0x9002))
        .with_target(class(class_ids::NETWORK))
        .with_traffic(traffic(4_000, 2, 16_384))
        .with_import(link(Guid(0x9003), "stats.GpuSink"))
        .with_import(link(Guid(0x9004), "stats.DiskSink"))
        .with_import(link(Guid(0x9005), "stats.HostSink"));
    let gpu_sink =
        OdfDocument::new("stats.GpuSink", Guid(0x9003)).with_target(class(class_ids::GPU));
    let disk_sink =
        OdfDocument::new("stats.DiskSink", Guid(0x9004)).with_target(class(class_ids::STORAGE));
    let host_sink = OdfDocument::new("stats.HostSink", Guid(0x9005));
    let ctl_source = OdfDocument::new("stats.CtlSource", Guid(0x9006))
        .with_traffic(traffic(2_000, 1, 32))
        .with_import(link(Guid(0x9007), "stats.CtlSink"));
    let ctl_sink =
        OdfDocument::new("stats.CtlSink", Guid(0x9007)).with_target(class(class_ids::STORAGE));
    let host_load = OdfDocument::new("stats.HostLoad", Guid(0x9008))
        .with_traffic(traffic(2_000, 1, 16_384))
        .with_import(link(Guid(0x9009), "stats.HostSpin"));
    let host_spin = OdfDocument::new("stats.HostSpin", Guid(0x9009));
    vec![
        source, nic_sink, gpu_sink, disk_sink, host_sink, ctl_source, ctl_sink, host_load,
        host_spin,
    ]
}

/// The service table certification runs against: exported from a
/// Channel Executive carrying the full provider family (defaults plus
/// the PIO / doorbell-batch extras), so the analysis prices messages
/// with exactly the cost tables the runtime bids with.
#[must_use]
pub fn certify_service_table() -> ServiceTable {
    let mut exec = ChannelExecutive::with_default_providers();
    hydra_core::providers::install_extras(&mut exec);
    exec.service_table()
}

/// Converts a committed fault plan into the disruption budget that
/// widens a certificate: stalls charge their duration, crashes charge a
/// fixed recovery allowance, loss bursts and ring exhaustion charge per
/// lost unit. Amortized over the stats scenario horizon.
#[must_use]
pub fn stats_overlay(plan: &FaultPlan) -> FaultOverlay {
    let disruptions = plan
        .events()
        .iter()
        .map(|e| {
            let ns = match e.kind {
                FaultKind::Stall { duration } => duration.as_nanos(),
                FaultKind::Crash => CRASH_RECOVERY_NS,
                FaultKind::LossBurst { frames } => u64::from(frames) * PER_UNIT_FAULT_NS,
                FaultKind::RingExhaustion { slots } => slots as u64 * PER_UNIT_FAULT_NS,
            };
            (e.device, ns)
        })
        .collect();
    FaultOverlay {
        disruptions,
        horizon_ns: stats_horizon().as_nanos(),
    }
}

/// Resolves a built-in certification set by name: the ODFs plus the
/// fault overlay the set is certified under (only `stats` commits to a
/// fault plan). Returns `None` for unknown names.
#[must_use]
pub fn certify_set(name: &str) -> Option<(Vec<OdfDocument>, Option<FaultOverlay>)> {
    match name {
        "demo" => Some((demo_certify_odfs(), None)),
        "tivo" => Some((tivo_certify_odfs(), None)),
        "stats" => Some((
            stats_certify_odfs(),
            Some(stats_overlay(&crate::stats::stats_demo_plan())),
        )),
        _ => None,
    }
}

/// One ring's observed telemetry from a replay or the stats scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedChannel {
    /// Bind name of the serving Offcode (the certificate's ring key).
    pub ring: String,
    /// The channel's metric label (`chan#N`).
    pub label: String,
    /// Worst observed p99 send latency across the size buckets.
    pub p99_ns: u64,
    /// Peak queue depth any telemetry window edge caught.
    pub peak_depth: u64,
}

/// The observed side of the differential harness: the full metrics
/// snapshot plus the per-ring latency/depth extracts.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The run's frozen telemetry.
    pub snapshot: MetricsSnapshot,
    /// Per-ring observed values, in channel-creation order.
    pub channels: Vec<ObservedChannel>,
    /// The run horizon in nanoseconds (busy-permille denominator).
    pub horizon_ns: u64,
}

struct ReplayModel {
    rt: Runtime,
}

fn device_for(odf: &OdfDocument) -> DeviceId {
    match odf.targets.first().map(|t| t.id) {
        Some(class_ids::NETWORK) => DeviceId(1),
        Some(class_ids::STORAGE) => DeviceId(2),
        Some(class_ids::GPU) => DeviceId(3),
        _ => DeviceId(0),
    }
}

/// Replays a declared-traffic ODF set against real channels: every ring
/// (imported Offcode) gets a Figure-3 channel on its first target-class
/// device, and every import edge drives it at exactly the writer's
/// declared curve — `burst` messages of `max_bytes` every
/// `burst/rate` seconds, drained at the next tick. Undeclared writers
/// fall back to the analysis defaults (1 000 msg/s, burst 1, 1 KiB), so
/// the replay and the certificate price the same traffic.
///
/// Runs for 10 ms with 1 ms telemetry windows and returns the observed
/// per-ring p99 latency and peak queue depth the certificate must
/// bracket.
#[must_use]
pub fn observe_declared(odfs: &[OdfDocument]) -> Observation {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic()); // dev1
    reg.install(DeviceDescriptor::smart_disk()); // dev2
    reg.install(DeviceDescriptor::gpu()); // dev3
    let mut rt = Runtime::new(reg, RuntimeConfig::default());

    let mut imported = vec![false; odfs.len()];
    let mut edges = Vec::new();
    for (wi, odf) in odfs.iter().enumerate() {
        for imp in &odf.imports {
            if let Some(ri) = odfs.iter().position(|o| o.guid == imp.guid) {
                imported[ri] = true;
                edges.push((wi, ri));
            }
        }
    }
    let mut rings = Vec::new();
    for (ri, odf) in odfs.iter().enumerate() {
        if !imported[ri] {
            continue;
        }
        let id = rt
            .create_channel(ChannelConfig::figure3(device_for(odf)))
            .expect("replay channel");
        let ep = rt
            .executive_mut()
            .get_mut(id)
            .expect("fresh channel is live")
            .connect_endpoint()
            .expect("fresh channel has room");
        rings.push((ri, id, ep));
    }

    let rec = rt.recorder().clone();
    let horizon = SimTime::from_millis(10);
    let mut sim = Sim::new(ReplayModel { rt });
    Sampler::new(SimDuration::from_millis(1), horizon).install(&mut sim, &rec);
    for (wi, ri) in edges {
        let Some(&(_, id, ep)) = rings.iter().find(|(r, _, _)| *r == ri) else {
            continue;
        };
        let t = odfs[wi].traffic.unwrap_or(TrafficSpec {
            rate_per_sec: 1_000,
            burst: 1,
            max_bytes: 1_024,
        });
        let period_ns = t
            .burst
            .saturating_mul(1_000_000_000)
            .checked_div(t.rate_per_sec)
            .unwrap_or(1_000_000);
        let period = SimDuration::from_nanos(period_ns.max(1));
        let payload = Bytes::from(vec![0x42u8; usize::try_from(t.max_bytes).unwrap_or(1_024)]);
        let burst = t.burst;
        sim.every(SimTime::ZERO + period, period, move |sim| {
            let now = sim.now();
            let m = sim.model_mut();
            let ch = m.rt.executive_mut().get_mut(id).expect("replay channel");
            let _ = ch.recv_batch(now, ep, usize::MAX);
            for _ in 0..burst {
                let _ = ch.send(now, payload.clone());
            }
            now.saturating_add(period) <= horizon
        });
    }
    sim.run();

    let model = sim.into_model();
    let snap = model.rt.metrics_snapshot();
    let exec = model.rt.executive();
    let channels = rings
        .iter()
        .map(|&(ri, id, _)| {
            let ch = exec.get(id).expect("replay channel is live");
            let p99 = ch
                .cost_profile()
                .size_buckets()
                .map(|(_, h)| h.p99().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let label = format!("chan#{}", id.0);
            let peak_depth = peak_level(&snap, CHANNEL_QUEUE_DEPTH, &label);
            ObservedChannel {
                ring: odfs[ri].bind_name.clone(),
                label,
                p99_ns: p99,
                peak_depth,
            }
        })
        .collect();
    Observation {
        snapshot: snap,
        channels,
        horizon_ns: horizon.as_nanos(),
    }
}

/// The observed side of the stats differential: runs the full
/// `repro -- stats` scenario (optionally under its fault plan) and maps
/// its two channels onto the synthetic certification set's rings — the
/// bulk channel is `stats.NicSink`'s ring, the OOB control channel is
/// `stats.CtlSink`'s.
#[must_use]
pub fn stats_observation(plan: Option<&FaultPlan>) -> Observation {
    let (snapshot, observed) = run_stats_observed(plan);
    let rings = ["stats.NicSink", "stats.CtlSink"];
    let channels = observed
        .into_iter()
        .zip(rings)
        .map(|(obs, ring)| {
            let peak_depth = peak_level(&snapshot, CHANNEL_QUEUE_DEPTH, &obs.label);
            ObservedChannel {
                ring: ring.to_owned(),
                label: obs.label,
                p99_ns: obs.p99_ns,
                peak_depth,
            }
        })
        .collect();
    Observation {
        snapshot,
        channels,
        horizon_ns: stats_horizon().as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_verify::{Certification, CertifyInput, VerifyInput};

    fn certify(name: &str) -> Certification {
        let (odfs, overlay) = certify_set(name).expect("built-in set");
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic());
        reg.install(DeviceDescriptor::smart_disk());
        reg.install(DeviceDescriptor::gpu());
        let table = reg.verify_table();
        let services = certify_service_table();
        hydra_verify::certify(&CertifyInput {
            verify: VerifyInput {
                odfs: &odfs,
                devices: &table,
                demands: None,
                roots: None,
            },
            services: &services,
            overlay: overlay.as_ref(),
        })
    }

    #[test]
    fn builtin_certify_sets_are_error_free() {
        for name in ["demo", "tivo", "stats"] {
            let cert = certify(name);
            assert!(
                !cert.report.has_errors(),
                "{name} must certify clean: {}",
                cert.report.render_human()
            );
            assert!(!cert.certificate.channels.is_empty(), "{name} has rings");
            assert!(!cert.certificate.chains.is_empty(), "{name} has chains");
        }
    }

    #[test]
    fn stats_overlay_widens_but_stays_bounded() {
        let base = {
            let (odfs, _) = certify_set("stats").expect("set");
            let mut reg = DeviceRegistry::new();
            reg.install(DeviceDescriptor::programmable_nic());
            reg.install(DeviceDescriptor::smart_disk());
            reg.install(DeviceDescriptor::gpu());
            let table = reg.verify_table();
            let services = certify_service_table();
            hydra_verify::certify(&CertifyInput {
                verify: VerifyInput {
                    odfs: &odfs,
                    devices: &table,
                    demands: None,
                    roots: None,
                },
                services: &services,
                overlay: None,
            })
        };
        let faulted = certify("stats");
        let clean_nic = base
            .certificate
            .channel("stats.NicSink")
            .and_then(|c| c.latency_bound_ns)
            .expect("clean NIC ring bound");
        let faulted_nic = faulted
            .certificate
            .channel("stats.NicSink")
            .and_then(|c| c.latency_bound_ns)
            .expect("faulted NIC ring bound");
        assert!(faulted_nic > clean_nic, "the overlay widens the NIC bound");
        for d in &faulted.certificate.devices {
            assert!(d.permille <= 1000, "{} stays a valid permille", d.name);
        }
    }

    #[test]
    fn replay_honors_declared_rings() {
        let odfs = demo_certify_odfs();
        let obs = observe_declared(&odfs);
        // Two rings: the decoder's and the display's.
        assert_eq!(obs.channels.len(), 2);
        assert!(obs.channels.iter().any(|c| c.ring == "tivo.Decoder"));
        assert!(obs.channels.iter().all(|c| c.p99_ns > 0), "traffic flowed");
    }

    #[test]
    fn observed_demo_telemetry_is_bracketed() {
        let cert = certify("demo");
        let obs = observe_declared(&demo_certify_odfs());
        for ch in &obs.channels {
            let bound = cert.certificate.channel(&ch.ring).expect("certified ring");
            assert!(
                ch.p99_ns <= bound.latency_bound_ns.expect("stable ring"),
                "{}: observed p99 {} within bound",
                ch.ring,
                ch.p99_ns
            );
            assert!(ch.peak_depth <= bound.queue_bound);
        }
    }
}
