//! Extension (paper §8, "Virtualization"): NIC-side VM packet demux.
//!
//! "Offload-capable devices could perform more efficiently some of the
//! tasks that are performed today on the host CPUs, such as multiplexing
//! incoming network packets directly to the destination virtual machine."
//!
//! Two designs over the same packet mix:
//!
//! * **Host bridge** — every packet is DMA'd into the hypervisor's ring,
//!   the host takes the interrupt, the software bridge classifies it and
//!   *copies* it into the destination VM's buffer.
//! * **NIC demux Offcode** — a classifier Offcode on the NIC inspects the
//!   header and DMAs the payload straight into the destination VM's
//!   buffer; the host is only involved at the (coalesced) interrupt for
//!   final notification.
//!
//! Measured: host CPU utilization, L2 misses, and mean per-packet
//! delivery latency.

use hydra_devices::host::HostModel;
use hydra_devices::nic::NicModel;
use hydra_hw::cache::AccessKind;
use hydra_hw::cpu::Cycles;
use hydra_hw::irq::IrqDecision;
use hydra_hw::mem::Region;
use hydra_sim::stats::Samples;
use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::Sim;

/// Which demux design to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DemuxKind {
    /// Software bridge on the host.
    HostBridge,
    /// Classifier Offcode on the NIC.
    NicOffcode,
}

impl DemuxKind {
    /// Both designs.
    pub fn all() -> [DemuxKind; 2] {
        [DemuxKind::HostBridge, DemuxKind::NicOffcode]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            DemuxKind::HostBridge => "Host bridge",
            DemuxKind::NicOffcode => "NIC demux Offcode",
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct VmDemuxConfig {
    /// The design under test.
    pub kind: DemuxKind,
    /// Number of co-resident virtual machines.
    pub vms: usize,
    /// Packet size.
    pub packet_bytes: usize,
    /// Mean packet inter-arrival time.
    pub mean_interarrival: SimDuration,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl Default for VmDemuxConfig {
    fn default() -> Self {
        VmDemuxConfig {
            kind: DemuxKind::HostBridge,
            vms: 4,
            packet_bytes: 1024,
            mean_interarrival: SimDuration::from_micros(200), // ~5k pps
            duration: SimDuration::from_secs(10),
            seed: 42,
        }
    }
}

/// Results of one demux run.
#[derive(Debug, Clone)]
pub struct VmDemuxRun {
    /// The design.
    pub kind: DemuxKind,
    /// Packets delivered to VMs.
    pub delivered: u64,
    /// Per-packet wire-to-VM-buffer latency, microseconds.
    pub latency_us: Samples,
    /// Host CPU utilization over the run.
    pub host_cpu: f64,
    /// Host L2 misses per second.
    pub l2_misses_per_sec: f64,
    /// Per-VM delivery counts (fairness check).
    pub per_vm: Vec<u64>,
}

struct World {
    host: HostModel,
    nic: NicModel,
    cfg: VmDemuxConfig,
    bridge_ring: Vec<Region>,
    ring_next: usize,
    vm_bufs: Vec<Vec<Region>>, // per VM, rotating
    vm_next: Vec<usize>,
    latency_us: Samples,
    per_vm: Vec<u64>,
    delivered: u64,
    arrival_rng: hydra_sim::rng::DetRng,
}

impl World {
    fn new(cfg: VmDemuxConfig) -> Self {
        let mut host = HostModel::paper_host(cfg.seed ^ 0x7EDE);
        let bridge_ring = (0..32)
            .map(|i| host.space.alloc(&format!("bridge{i}"), cfg.packet_bytes))
            .collect();
        let vm_bufs: Vec<Vec<Region>> = (0..cfg.vms)
            .map(|v| {
                (0..8)
                    .map(|i| host.space.alloc(&format!("vm{v}-buf{i}"), cfg.packet_bytes))
                    .collect()
            })
            .collect();
        World {
            host,
            nic: NicModel::new_3c985b(cfg.seed),
            arrival_rng: hydra_sim::rng::DetRng::new(cfg.seed).split(0x1111),
            vm_next: vec![0; cfg.vms],
            per_vm: vec![0; cfg.vms],
            latency_us: Samples::new(),
            delivered: 0,
            ring_next: 0,
            bridge_ring,
            vm_bufs,
            cfg,
        }
    }

    fn vm_buf(&mut self, vm: usize) -> Region {
        let buf = self.vm_bufs[vm][self.vm_next[vm]];
        self.vm_next[vm] = (self.vm_next[vm] + 1) % self.vm_bufs[vm].len();
        buf
    }
}

/// Calibration: software bridge classification + virtio-style delivery.
const BRIDGE_CLASSIFY: Cycles = Cycles::new(30_000);
/// NIC classifier firmware cycles per packet.
const NIC_CLASSIFY: Cycles = Cycles::new(900);

fn host_bridge_packet(world: &mut World, arrival: SimTime, vm: usize) {
    let len = world.cfg.packet_bytes;
    let rx = world.nic.rx_process(arrival, len);
    let ring_buf = world.bridge_ring[world.ring_next];
    world.ring_next = (world.ring_next + 1) % world.bridge_ring.len();
    let (host, nic) = (&mut world.host, &mut world.nic);
    let (xfer, irq) = nic.dma_to_host(rx.end, &mut host.bus, ring_buf);
    host.mem.dma_transfer(ring_buf);
    let visible = match irq {
        IrqDecision::Fire { .. } => world.host.interrupt(xfer.end).end,
        IrqDecision::Hold { deadline } => world.host.interrupt(deadline).end.max(xfer.end),
    };
    // Bridge classification + copy into the VM's buffer.
    let classify = world.host.cpu.reserve(visible, BRIDGE_CLASSIFY);
    let dst = world.vm_buf(vm);
    let copy = world.host.cpu_copy(classify.end, ring_buf, dst, len);
    // VM-side touch (guest reads the packet).
    let done = world
        .host
        .compute_over(copy.end, dst, Cycles::new(2_000), AccessKind::Read);
    world
        .latency_us
        .record(done.end.duration_since(arrival).as_nanos() as f64 / 1_000.0);
    world.per_vm[vm] += 1;
    world.delivered += 1;
}

fn nic_offcode_packet(world: &mut World, arrival: SimTime, vm: usize) {
    let len = world.cfg.packet_bytes;
    let rx = world.nic.rx_process(arrival, len);
    // The classifier Offcode inspects the header on the NIC CPU.
    let classify = world.nic.offcode_work(rx.end, 64, NIC_CLASSIFY);
    // Direct DMA into the destination VM's buffer.
    let dst = world.vm_buf(vm);
    let (host, nic) = (&mut world.host, &mut world.nic);
    let (xfer, irq) = nic.dma_to_host(classify.end, &mut host.bus, dst);
    host.mem.dma_transfer(dst);
    let visible = match irq {
        IrqDecision::Fire { .. } => world.host.interrupt(xfer.end).end,
        IrqDecision::Hold { deadline } => deadline.max(xfer.end),
    };
    // Guest reads it; no hypervisor copy ever happened.
    let done = world
        .host
        .compute_over(visible, dst, Cycles::new(2_000), AccessKind::Read);
    world
        .latency_us
        .record(done.end.duration_since(arrival).as_nanos() as f64 / 1_000.0);
    world.per_vm[vm] += 1;
    world.delivered += 1;
}

/// Runs one demux scenario.
pub fn run_vm_demux(cfg: VmDemuxConfig) -> VmDemuxRun {
    let kind = cfg.kind;
    let vms = cfg.vms;
    let mean = cfg.mean_interarrival;
    let end = SimTime::ZERO + cfg.duration;
    let mut sim = Sim::new(World::new(cfg));
    sim.every(SimTime::ZERO, SimDuration::from_millis(1), move |sim| {
        let now = sim.now();
        sim.model_mut().host.background_tick(now);
        now < end
    });
    fn next_arrival(
        sim: &mut Sim<World>,
        kind: DemuxKind,
        vms: usize,
        mean: SimDuration,
        end: SimTime,
    ) {
        let gap = {
            let w = sim.model_mut();
            SimDuration::from_secs_f64(w.arrival_rng.exp(mean.as_secs_f64()))
        };
        let at = sim.now() + gap.max(SimDuration::from_nanos(100));
        if at >= end {
            return;
        }
        sim.schedule_at(at, move |sim| {
            let now = sim.now();
            let vm = sim.model_mut().arrival_rng.index(vms);
            match kind {
                DemuxKind::HostBridge => host_bridge_packet(sim.model_mut(), now, vm),
                DemuxKind::NicOffcode => nic_offcode_packet(sim.model_mut(), now, vm),
            }
            next_arrival(sim, kind, vms, mean, end);
        });
    }
    next_arrival(&mut sim, kind, vms, mean, end);
    sim.run_until(end);
    let world = sim.into_model();
    VmDemuxRun {
        kind,
        delivered: world.delivered,
        latency_us: world.latency_us,
        host_cpu: world.host.cpu_utilization(end),
        l2_misses_per_sec: world.host.mem.cache().stats().misses as f64 / end.as_secs_f64(),
        per_vm: world.per_vm,
    }
}

/// Runs both designs and returns them `[host bridge, nic offcode]`.
pub fn vm_demux_comparison(seed: u64, duration: SimDuration) -> [VmDemuxRun; 2] {
    DemuxKind::all().map(|kind| {
        run_vm_demux(VmDemuxConfig {
            kind,
            duration,
            seed,
            ..VmDemuxConfig::default()
        })
    })
}

impl std::fmt::Display for VmDemuxRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let l = self.latency_us.summary();
        write!(
            f,
            "{:<18} {:>8} pkts | host cpu {:>5.2}% | latency p50 {:>6.1} us (σ {:>5.1}) | L2 {:>9.0}/s",
            self.kind.label(),
            self.delivered,
            self.host_cpu * 100.0,
            l.median,
            l.std_dev,
            self.l2_misses_per_sec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(secs: u64) -> [VmDemuxRun; 2] {
        vm_demux_comparison(42, SimDuration::from_secs(secs))
    }

    #[test]
    fn nic_demux_saves_host_cpu() {
        let [bridge, nic] = both(10);
        assert!(
            bridge.host_cpu > nic.host_cpu + 0.02,
            "bridge {} vs nic {}",
            bridge.host_cpu,
            nic.host_cpu
        );
    }

    #[test]
    fn nic_demux_saves_l2_traffic() {
        let [bridge, nic] = both(10);
        assert!(
            bridge.l2_misses_per_sec > nic.l2_misses_per_sec * 1.02,
            "bridge {} vs nic {}",
            bridge.l2_misses_per_sec,
            nic.l2_misses_per_sec
        );
    }

    #[test]
    fn both_deliver_the_same_load() {
        let [bridge, nic] = both(5);
        assert_eq!(bridge.delivered, nic.delivered);
        assert_eq!(
            bridge.per_vm.iter().sum::<u64>(),
            bridge.delivered,
            "every packet reaches exactly one VM"
        );
        // Roughly fair spread across VMs.
        let min = *bridge.per_vm.iter().min().expect("vms > 0");
        let max = *bridge.per_vm.iter().max().expect("vms > 0");
        assert!(min * 2 > max, "per-VM spread {min}..{max}");
    }

    #[test]
    fn latency_is_lower_without_the_bridge_copy() {
        let [bridge, nic] = both(5);
        assert!(
            nic.latency_us.summary().median < bridge.latency_us.summary().median,
            "nic {} vs bridge {}",
            nic.latency_us.summary().median,
            bridge.latency_us.summary().median
        );
    }

    #[test]
    fn deterministic() {
        let a = run_vm_demux(VmDemuxConfig {
            duration: SimDuration::from_secs(3),
            ..VmDemuxConfig::default()
        });
        let b = run_vm_demux(VmDemuxConfig {
            duration: SimDuration::from_secs(3),
            ..VmDemuxConfig::default()
        });
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.latency_us.values(), b.latency_us.values());
    }
}
