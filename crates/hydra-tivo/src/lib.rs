//! # hydra-tivo — the TiVoPC case study
//!
//! The paper's §6 end to end: the TiVo component Offcodes with the
//! Figure 8 constraint layout ([`components`]), the three video-server
//! implementations whose jitter, CPU and L2 behaviour Figures 9–10 and
//! Tables 2–3 report ([`server`]), the user-space vs offloaded client of
//! Table 4 ([`client`]), the record-then-playback flow with real bytes
//! through the smart disk ([`playback`]), the Figure 1 GHz/Gbps model
//! ([`tcpmodel`]), and the harness that regenerates every table and
//! figure in paper format ([`experiments`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod client;
pub mod components;
pub mod demo;
pub mod experiments;
pub mod faults;
pub mod onload;
pub mod playback;
pub mod server;
pub mod stats;
pub mod storage;
pub mod tcpmodel;
pub mod toe;
pub mod virtualization;

pub use certify::{
    certify_service_table, certify_set, demo_certify_odfs, observe_declared, stats_certify_odfs,
    stats_observation, stats_overlay, tivo_certify_odfs, Observation, ObservedChannel,
};
pub use client::{run_client, ClientConfig, ClientKind, ClientRun};
pub use components::{register_tivo_client, tivo_client_odfs, tivo_server_odfs, TivoComponent};
pub use demo::demo_deployment;
pub use faults::{fault_demo_odfs, fault_demo_plan, run_fault_demo};

pub use experiments::{
    fig1, fig10_tab3, fig9_tab2, ilp_vs_greedy, tab4_client, ClientResults, Fig1, IlpResults,
    JitterResults, ServerSideResults, SuiteConfig,
};
pub use onload::{compare_designs, IoDesign, IoDesignPoint};
pub use playback::{run_record_playback, PlaybackConfig, PlaybackRun};
pub use server::{run_server, ServerConfig, ServerKind, ServerRun};
pub use stats::{run_stats_demo, run_stats_observed, stats_demo_plan, StatsChannelObs};
pub use storage::{build_corpus, run_search, SearchKind, SearchRun};
pub use tcpmodel::{GhzGbpsModel, GhzGbpsPoint, TcpDirection};
pub use toe::{run_bulk_receive, TcpPlacement, ToeRun};
pub use virtualization::{run_vm_demux, vm_demux_comparison, DemuxKind, VmDemuxConfig, VmDemuxRun};
