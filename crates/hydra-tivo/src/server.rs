//! The Video Server experiment (paper §6.4).
//!
//! Three implementations of the same streaming server — the paper's
//! Figure 7, paths 1–3 — paced at one 1 kB chunk every 5 ms:
//!
//! 1. **Simple** — a user-space loop: `read()` the chunk from the NAS
//!    over NFS into a user buffer, `send()` it over a UDP socket. Two
//!    copies, two syscalls, context switches, tick-quantized `sleep`.
//! 2. **Sendfile** — the zero-copy kernel path: the NIC's scatter-gather
//!    engine sends straight from the kernel buffer the NAS data was
//!    DMA'd into; no user-space copy, fewer context switches.
//! 3. **Offloaded** — a HYDRA Offcode on the programmable NIC: the File
//!    Offcode reads from the NAS, the Broadcast Offcode transmits, pacing
//!    comes from the NIC's microsecond firmware timer. The host CPU and
//!    its L2 cache never see the stream.
//!
//! The run measures what the paper measures: client-side inter-arrival
//! jitter (Figure 9 / Table 2), server CPU utilization sampled every 5 s
//! (Table 3), and the server's L2 miss *rate* normalized against an idle
//! machine (Figure 10).

use hydra_devices::host::HostModel;
use hydra_devices::nic::NicModel;
use hydra_hw::cache::AccessKind;
use hydra_hw::cpu::Cycles;
use hydra_hw::mem::Region;
use hydra_net::link::{Link, LinkSpec};
use hydra_net::nfs::{NasServer, NfsRequest, NfsResponse};
use hydra_net::udp::FlowMeter;
use hydra_sim::stats::Samples;
use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::Sim;

/// Which server implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// No streaming at all: the Table 3 "Idle" baseline.
    Idle,
    /// User-space read+send loop.
    Simple,
    /// The `sendfile` zero-copy kernel path.
    Sendfile,
    /// HYDRA Offcodes on the programmable NIC.
    Offloaded,
}

impl ServerKind {
    /// All four scenarios in table order.
    pub fn all() -> [ServerKind; 4] {
        [
            ServerKind::Idle,
            ServerKind::Simple,
            ServerKind::Sendfile,
            ServerKind::Offloaded,
        ]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            ServerKind::Idle => "Idle",
            ServerKind::Simple => "Simple Server",
            ServerKind::Sendfile => "Sendfile Server",
            ServerKind::Offloaded => "Offloaded Server",
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which implementation.
    pub kind: ServerKind,
    /// Chunk size (paper: 1 kB).
    pub packet_bytes: usize,
    /// Pacing period (paper: 5 ms).
    pub period: SimDuration,
    /// Simulated run length (paper: 10 minutes).
    pub duration: SimDuration,
    /// Utilization/L2 sampling period (paper: 5 s).
    pub sample_period: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl ServerConfig {
    /// The paper's configuration for one scenario, with a shorter default
    /// run (60 s) that yields stable statistics; pass
    /// `duration: SimDuration::from_secs(600)` for the full 10 minutes.
    pub fn paper(kind: ServerKind, seed: u64) -> Self {
        ServerConfig {
            kind,
            packet_bytes: 1024,
            period: SimDuration::from_millis(5),
            duration: SimDuration::from_secs(60),
            sample_period: SimDuration::from_secs(5),
            seed,
        }
    }
}

/// Results of one server run.
#[derive(Debug, Clone)]
pub struct ServerRun {
    /// The scenario.
    pub kind: ServerKind,
    /// Client-side inter-arrival gaps, milliseconds (Figure 9 / Table 2).
    pub jitter_ms: Samples,
    /// CPU utilization per 5 s window (Table 3), as fractions.
    pub cpu_util: Samples,
    /// L2 misses per second per 5 s window (Figure 10, before
    /// normalization).
    pub l2_miss_rate: Samples,
    /// Packets that reached the client.
    pub packets_delivered: u64,
}

/// Calibration constants for the user-space kernel path. These stand in
/// for everything the simulator does not model instruction-by-instruction
/// (VFS, socket layer, scheduler work); see DESIGN.md §2.
mod calib {
    use hydra_hw::cpu::Cycles;

    /// Kernel+libc path cycles per Simple-server cycle (two syscalls'
    /// worth of VFS/socket-layer work plus process wakeup). Calibrated so
    /// the Simple server's utilization lands near Table 3's 7.5%.
    pub const SIMPLE_PATH: Cycles = Cycles::new(760_000);
    /// Kernel path cycles per Sendfile cycle (single in-kernel splice),
    /// calibrated toward Table 3's 6.2%.
    pub const SENDFILE_PATH: Cycles = Cycles::new(470_000);
    /// Socket/NFS metadata bytes touched per packet (beyond payload).
    pub const META_BYTES: usize = 1024;
}

struct World {
    host: HostModel,
    nic: NicModel,
    /// Server NIC → switch → client path (one way).
    downlink: Link,
    /// NAS round-trip path (dedicated storage network, as in a machine
    /// room; the NIC is the initiator either way).
    nas_link: Link,
    nas: NasServer,
    movie: hydra_net::nfs::FileHandle,
    meter: FlowMeter,
    cfg: ServerConfig,
    // Buffers.
    kernel_bufs: Vec<Region>,
    user_buf: Region,
    skb_buf: Region,
    meta_buf: Region,
    kb_next: usize,
    seq: u64,
    offset: u64,
    // Windowed sampling state.
    cpu_util: Samples,
    l2_rate: Samples,
    last_busy_secs: f64,
    last_misses: u64,
    last_sample_at: SimTime,
}

impl World {
    fn new(cfg: ServerConfig) -> Self {
        let mut host = HostModel::paper_host(cfg.seed);
        if cfg.kind == ServerKind::Sendfile {
            // The sendfile loop is paced by an in-kernel timer: same tick
            // quantization, but without the extra-tick overshoot and with
            // less run-queue noise than a user-space sleep.
            host.timer = hydra_hw::os::TimerModel::linux_kernel_path();
        }
        let nic = NicModel::new_3c985b(cfg.seed);
        let mut nas = NasServer::default();
        // Preload enough movie bytes for the whole run.
        let cycles = cfg.duration.as_nanos() / cfg.period.as_nanos().max(1) + 16;
        let movie = nas.preload(
            "/movies/feature.mpg",
            vec![0x5A; cycles as usize * cfg.packet_bytes],
        );
        let kernel_bufs = (0..16)
            .map(|i| host.space.alloc(&format!("nfs-kbuf{i}"), cfg.packet_bytes))
            .collect();
        let user_buf = host.space.alloc("user-buf", cfg.packet_bytes);
        let skb_buf = host.space.alloc("skb", cfg.packet_bytes + 256);
        let meta_buf = host.space.alloc("socket-meta", 64 * 1024);
        World {
            host,
            nic,
            downlink: Link::new(LinkSpec::gigabit()),
            nas_link: Link::new(LinkSpec::gigabit()),
            nas,
            movie,
            meter: FlowMeter::new(),
            cfg,
            kernel_bufs,
            user_buf,
            skb_buf,
            meta_buf,
            kb_next: 0,
            seq: 0,
            offset: 0,
            cpu_util: Samples::new(),
            l2_rate: Samples::new(),
            last_busy_secs: 0.0,
            last_misses: 0,
            last_sample_at: SimTime::ZERO,
        }
    }

    /// Reads the next chunk from the NAS, returning `(kernel buffer,
    /// response-arrival instant)`. The NIC DMAs the response into a
    /// rotating kernel buffer, which invalidates those cache lines.
    fn nfs_read_chunk(&mut self, now: SimTime) -> (Region, SimTime) {
        let req = NfsRequest::Read {
            fh: self.movie,
            offset: self.offset,
            len: self.cfg.packet_bytes as u32,
        };
        self.offset += self.cfg.packet_bytes as u64;
        let req_out = self.nas_link.transmit(now, 96);
        let (resp, service) = self.nas.handle(&req);
        let bytes = match &resp {
            NfsResponse::Data(d) => d.len(),
            _ => 0,
        };
        let resp_in = self.nas_link.transmit(req_out + service, bytes + 64);
        let kbuf = self.kernel_bufs[self.kb_next];
        self.kb_next = (self.kb_next + 1) % self.kernel_bufs.len();
        // NIC DMA into host memory: coherent invalidation, no pollution.
        self.host.mem.dma_transfer(kbuf);
        (kbuf, resp_in)
    }

    /// Books the per-packet kernel metadata touches (socket structures,
    /// NFS rpc bookkeeping) at a rotating offset so they conflict
    /// realistically.
    fn touch_metadata(&mut self, bytes: usize) {
        let at = (self.seq as usize * 1536) % (64 * 1024 - bytes);
        let slice = self.meta_buf.slice(at, bytes);
        self.host.mem.touch(slice, AccessKind::Write);
    }

    /// Delivers the packet to the client and records the arrival.
    fn deliver(&mut self, tx_done: SimTime) {
        // Switch store-and-forward latency plus the client link.
        let arrival = self.downlink.transmit(tx_done, self.cfg.packet_bytes + 42);
        self.meter.on_arrival(arrival, self.seq);
        self.seq += 1;
    }

    fn take_window_sample(&mut self, now: SimTime) {
        let span = now.duration_since(self.last_sample_at).as_secs_f64();
        if span <= 0.0 {
            return;
        }
        let busy = self.host.cpu.utilization(now) * now.as_secs_f64();
        let util = (busy - self.last_busy_secs) / span;
        self.cpu_util.record(util.clamp(0.0, 1.0));
        let misses = self.host.mem.cache().stats().misses;
        self.l2_rate
            .record((misses - self.last_misses) as f64 / span);
        self.last_busy_secs = busy;
        self.last_misses = misses;
        self.last_sample_at = now;
    }
}

/// One Simple-server cycle starting at wakeup instant `w`; returns when
/// the application finished and goes back to sleep.
fn simple_cycle(world: &mut World, w: SimTime) -> SimTime {
    // Wake the process: context switch in.
    let cs = world.host.context_switch(w);
    // read() syscall: RPC to the NAS; the process blocks, the response
    // arrives by DMA and an interrupt.
    let sys1 = world.host.syscall(cs.end);
    let (kbuf, resp_at) = world.nfs_read_chunk(sys1.end);
    let irq = world.host.interrupt(resp_at.max(sys1.end));
    // Copy kernel buffer (cache-cold after DMA) to the user buffer.
    let copy1 = world
        .host
        .cpu_copy(irq.end, kbuf, world.user_buf, world.cfg.packet_bytes);
    // send() syscall: copy user buffer into an skb, checksum it.
    let sys2 = world.host.syscall(copy1.end);
    let copy2 = world.host.cpu_copy(
        sys2.end,
        world.user_buf,
        world.skb_buf,
        world.cfg.packet_bytes,
    );
    let csum = world.host.compute_over(
        copy2.end,
        world.skb_buf,
        Cycles::new(world.cfg.packet_bytes as u64 / 2),
        AccessKind::Read,
    );
    world.touch_metadata(calib::META_BYTES);
    // The remaining kernel path (VFS, socket layer, wakeups).
    let path = world.host.cpu.reserve(csum.end, calib::SIMPLE_PATH);
    // NIC DMAs the skb out and transmits.
    let (host_ref, nic_ref) = (&mut world.host, &mut world.nic);
    let xfer = nic_ref.dma_from_host(path.end, &mut host_ref.bus, world.skb_buf);
    host_ref.mem.dma_transfer(world.skb_buf);
    let tx = world.nic.tx_process(xfer.end, world.cfg.packet_bytes);
    world.deliver(tx.end);
    path.end
}

/// One Sendfile cycle: no user-space copy, single kernel splice.
fn sendfile_cycle(world: &mut World, w: SimTime) -> SimTime {
    let sys = world.host.syscall(w);
    let (kbuf, resp_at) = world.nfs_read_chunk(sys.end);
    let irq = world.host.interrupt(resp_at.max(sys.end));
    // sendfile: initialize the socket buffer descriptor to point at the
    // kernel buffer — header-only CPU touches, no payload copy.
    world.touch_metadata(calib::META_BYTES);
    let path = world.host.cpu.reserve(irq.end, calib::SENDFILE_PATH);
    let (host_ref, nic_ref) = (&mut world.host, &mut world.nic);
    let xfer = nic_ref.dma_from_host(path.end, &mut host_ref.bus, kbuf);
    host_ref.mem.dma_transfer(kbuf);
    let tx = world.nic.tx_process(xfer.end, world.cfg.packet_bytes);
    world.deliver(tx.end);
    path.end
}

/// One Offloaded cycle, run entirely on the NIC at firmware-timer instant
/// `t`: the File Offcode fetches the chunk from the NAS, the Broadcast
/// Offcode transmits it. The host is never involved.
fn offloaded_cycle(world: &mut World, t: SimTime) {
    // File Offcode: NFS read issued by the NIC itself.
    let req = NfsRequest::Read {
        fh: world.movie,
        offset: world.offset,
        len: world.cfg.packet_bytes as u32,
    };
    world.offset += world.cfg.packet_bytes as u64;
    let fw1 = world.nic.offcode_work(t, 96, Cycles::new(800));
    let req_out = world.nas_link.transmit(fw1.end, 96);
    let (_resp, service) = world.nas.handle(&req);
    let resp_in = world
        .nas_link
        .transmit(req_out + service, world.cfg.packet_bytes + 64);
    // Broadcast Offcode: packetize and transmit from NIC local memory.
    let fw2 = world
        .nic
        .offcode_work(resp_in, world.cfg.packet_bytes, Cycles::new(600));
    let tx = world.nic.tx_process(fw2.end, world.cfg.packet_bytes);
    world.deliver(tx.end);
}

/// Runs one server scenario to completion.
pub fn run_server(cfg: ServerConfig) -> ServerRun {
    let kind = cfg.kind;
    let duration = cfg.duration;
    let sample_period = cfg.sample_period;
    let end = SimTime::ZERO + duration;
    let mut sim = Sim::new(World::new(cfg));

    // Background OS load on the host, always.
    sim.every(SimTime::ZERO, SimDuration::from_millis(1), move |sim| {
        let now = sim.now();
        sim.model_mut().host.background_tick(now);
        now < end
    });

    // Periodic window sampling.
    sim.every(SimTime::ZERO + sample_period, sample_period, move |sim| {
        let now = sim.now();
        sim.model_mut().take_window_sample(now);
        now < end
    });

    // The streaming workload.
    match kind {
        ServerKind::Idle => {}
        ServerKind::Simple | ServerKind::Sendfile => {
            fn cycle(sim: &mut Sim<World>, kind: ServerKind, end: SimTime) {
                let w = sim.now();
                let done = match kind {
                    ServerKind::Simple => simple_cycle(sim.model_mut(), w),
                    ServerKind::Sendfile => sendfile_cycle(sim.model_mut(), w),
                    _ => unreachable!("only user-space kinds reach here"),
                };
                // Relative sleep: the loop sleeps `period` after finishing,
                // so tick quantization and overshoot accumulate into the
                // inter-packet gap.
                let target = done + sim.model().cfg.period;
                let wake = sim.model_mut().host.wakeup(target);
                if wake < end {
                    sim.schedule_at(wake.max(sim.now()), move |sim| cycle(sim, kind, end));
                }
            }
            let first = sim.model_mut().host.wakeup(SimTime::from_millis(5));
            sim.schedule_at(first, move |sim| cycle(sim, kind, end));
        }
        ServerKind::Offloaded => {
            fn cycle(sim: &mut Sim<World>, n: u64, end: SimTime) {
                let period = sim.model().cfg.period;
                // Absolute pacing on the firmware timer: no drift.
                let target = SimTime::ZERO + period * (n + 1);
                let fire = sim.model_mut().nic.timer_fire(target);
                if fire < end {
                    sim.schedule_at(fire.max(sim.now()), move |sim| {
                        let t = sim.now();
                        offloaded_cycle(sim.model_mut(), t);
                        cycle(sim, n + 1, end);
                    });
                }
            }
            cycle(&mut sim, 0, end);
        }
    }

    sim.run_until(end);
    let world = sim.into_model();
    ServerRun {
        kind,
        jitter_ms: world.meter.gaps_ms().clone(),
        cpu_util: world.cpu_util,
        l2_miss_rate: world.l2_rate,
        packets_delivered: world.meter.received(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(kind: ServerKind, secs: u64) -> ServerRun {
        let mut cfg = ServerConfig::paper(kind, 42);
        cfg.duration = SimDuration::from_secs(secs);
        run_server(cfg)
    }

    #[test]
    fn idle_server_floor_matches_paper() {
        let run = short(ServerKind::Idle, 30);
        let u = run.cpu_util.summary().mean;
        assert!((u - 0.029).abs() < 0.012, "idle utilization {u}");
        assert_eq!(run.packets_delivered, 0);
    }

    #[test]
    fn jitter_ordering_matches_figure_9() {
        let simple = short(ServerKind::Simple, 30);
        let sendfile = short(ServerKind::Sendfile, 30);
        let offloaded = short(ServerKind::Offloaded, 30);
        let s = simple.jitter_ms.summary();
        let f = sendfile.jitter_ms.summary();
        let o = offloaded.jitter_ms.summary();
        // Medians: ~7 / ~6 / ~5 ms.
        assert!((s.median - 7.0).abs() < 0.6, "simple median {}", s.median);
        assert!((f.median - 6.0).abs() < 0.6, "sendfile median {}", f.median);
        assert!(
            (o.median - 5.0).abs() < 0.05,
            "offloaded median {}",
            o.median
        );
        // Std devs strictly ordered, offloaded an order of magnitude lower.
        assert!(
            s.std_dev > f.std_dev,
            "simple {} vs sendfile {}",
            s.std_dev,
            f.std_dev
        );
        assert!(
            o.std_dev < f.std_dev / 5.0,
            "offloaded std {} not well below sendfile {}",
            o.std_dev,
            f.std_dev
        );
    }

    #[test]
    fn cpu_ordering_matches_table_3() {
        let idle = short(ServerKind::Idle, 30).cpu_util.summary().mean;
        let simple = short(ServerKind::Simple, 30).cpu_util.summary().mean;
        let sendfile = short(ServerKind::Sendfile, 30).cpu_util.summary().mean;
        let offloaded = short(ServerKind::Offloaded, 30).cpu_util.summary().mean;
        assert!(simple > sendfile, "simple {simple} vs sendfile {sendfile}");
        assert!(
            sendfile > idle + 0.005,
            "sendfile {sendfile} vs idle {idle}"
        );
        assert!(
            (offloaded - idle).abs() < 0.004,
            "offloaded {offloaded} should equal idle {idle}"
        );
    }

    #[test]
    fn l2_ordering_matches_figure_10() {
        let idle = short(ServerKind::Idle, 30).l2_miss_rate.summary().mean;
        let simple = short(ServerKind::Simple, 30).l2_miss_rate.summary().mean;
        let sendfile = short(ServerKind::Sendfile, 30).l2_miss_rate.summary().mean;
        let offloaded = short(ServerKind::Offloaded, 30).l2_miss_rate.summary().mean;
        let n_simple = simple / idle;
        let n_sendfile = sendfile / idle;
        let n_offloaded = offloaded / idle;
        assert!(
            (1.02..1.2).contains(&n_simple),
            "simple normalized {n_simple}"
        );
        assert!(
            n_sendfile < n_simple,
            "sendfile {n_sendfile} < simple {n_simple}"
        );
        assert!(
            (n_offloaded - 1.0).abs() < 0.02,
            "offloaded normalized {n_offloaded}"
        );
    }

    #[test]
    fn offloaded_throughput_matches_bitrate() {
        let run = short(ServerKind::Offloaded, 30);
        // 5 ms pacing for 30 s = ~6000 packets.
        assert!(
            (5900..=6001).contains(&(run.packets_delivered as i64)),
            "delivered {}",
            run.packets_delivered
        );
    }

    #[test]
    fn user_space_servers_drift_slower() {
        // The paper's simple server averages 7 ms between packets — it
        // delivers fewer packets than the offloaded one in the same time.
        let simple = short(ServerKind::Simple, 30);
        let offloaded = short(ServerKind::Offloaded, 30);
        assert!(simple.packets_delivered < offloaded.packets_delivered * 8 / 10);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = short(ServerKind::Simple, 10);
        let b = short(ServerKind::Simple, 10);
        assert_eq!(a.jitter_ms.values(), b.jitter_ms.values());
        assert_eq!(a.packets_delivered, b.packets_delivered);
    }
}
