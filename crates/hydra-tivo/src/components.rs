//! The TiVoPC Offcodes and their offloading layout (paper §6.2–6.3).
//!
//! Table 1's components — GUI, Streamer, Decoder, Display, File,
//! Broadcast — implemented as HYDRA Offcodes with the ODF constraint
//! graph of Figure 8:
//!
//! * the network Streamer holds a **Gang** constraint to the disk
//!   Streamer ("we do not want packets to traverse the bus twice"),
//! * the Streamers hold a **Gang** constraint to the Decoder,
//! * the Decoder holds a **Pull** constraint to the Display (both on the
//!   GPU, which "may have specialized MPEG support on board"),
//! * the File Offcode is **Pulled** with the disk Streamer,
//! * the GUI keeps plain **Link** dependencies (control traffic only) and
//!   is the one component that stays in user space.
//!
//! Deploying `tivo.Gui` through the runtime therefore reproduces the
//! placement of Figure 8: Streamer→NIC, Streamer→disk, Decoder+Display→
//! GPU, File→disk, GUI→host.

use bytes::Bytes;
use hydra_core::call::{Call, Value};
use hydra_core::channel::ChannelId;
use hydra_core::error::RuntimeError;
use hydra_core::offcode::{Offcode, OffcodeCtx};
use hydra_core::runtime::Runtime;
use hydra_hw::cpu::Cycles;
use hydra_odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument};

/// GUIDs of the TiVoPC components.
pub mod guids {
    use hydra_odf::odf::Guid;

    /// The user-interface component (host).
    pub const GUI: Guid = Guid(0x7100);
    /// The network-side Streamer.
    pub const STREAMER_NET: Guid = Guid(0x7101);
    /// The disk-side Streamer (same implementation, second instance).
    pub const STREAMER_DISK: Guid = Guid(0x7102);
    /// The MPEG Decoder.
    pub const DECODER: Guid = Guid(0x7103);
    /// The Display (framebuffer wrapper).
    pub const DISPLAY: Guid = Guid(0x7104);
    /// The File component.
    pub const FILE: Guid = Guid(0x7105);
    /// The server-side Broadcast component.
    pub const BROADCAST: Guid = Guid(0x7106);
}

fn class(id: u32, name: &str) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: name.into(),
        bus: None,
        mac: None,
        vendor: None,
    }
}

fn import(guid: Guid, bind_name: &str, constraint: ConstraintKind) -> Import {
    Import {
        file: format!("/offcodes/{bind_name}.odf"),
        bind_name: bind_name.into(),
        guid,
        constraint,
        priority: 0,
    }
}

/// The ODFs of the full TiVoPC client application, Figure 8's graph.
pub fn tivo_client_odfs() -> Vec<OdfDocument> {
    let gui = OdfDocument::new("tivo.Gui", guids::GUI)
        .with_import(import(
            guids::STREAMER_NET,
            "tivo.Streamer.Net",
            ConstraintKind::Link,
        ))
        .with_import(import(
            guids::STREAMER_DISK,
            "tivo.Streamer.Disk",
            ConstraintKind::Link,
        ));
    let streamer_net = OdfDocument::new("tivo.Streamer.Net", guids::STREAMER_NET)
        .with_target(class(class_ids::NETWORK, "Network Device"))
        .with_import(import(
            guids::STREAMER_DISK,
            "tivo.Streamer.Disk",
            ConstraintKind::Gang,
        ))
        .with_import(import(guids::DECODER, "tivo.Decoder", ConstraintKind::Gang));
    let streamer_disk = OdfDocument::new("tivo.Streamer.Disk", guids::STREAMER_DISK)
        .with_target(class(class_ids::STORAGE, "Smart Disk"))
        .with_import(import(guids::DECODER, "tivo.Decoder", ConstraintKind::Gang))
        .with_import(import(guids::FILE, "tivo.File", ConstraintKind::Pull));
    let decoder = OdfDocument::new("tivo.Decoder", guids::DECODER)
        .with_target(class(class_ids::GPU, "GPU"))
        .with_target(class(class_ids::NETWORK, "Network Device"))
        .with_import(import(guids::DISPLAY, "tivo.Display", ConstraintKind::Pull));
    let display =
        OdfDocument::new("tivo.Display", guids::DISPLAY).with_target(class(class_ids::GPU, "GPU"));
    let file = OdfDocument::new("tivo.File", guids::FILE)
        .with_target(class(class_ids::STORAGE, "Smart Disk"));
    vec![gui, streamer_net, streamer_disk, decoder, display, file]
}

/// The ODFs of the offloaded video server (§6.4 implementation 3): a
/// Broadcast Offcode and a File Offcode on the networking device.
pub fn tivo_server_odfs() -> Vec<OdfDocument> {
    let broadcast = OdfDocument::new("tivo.Broadcast", guids::BROADCAST)
        .with_target(class(class_ids::NETWORK, "Network Device"))
        .with_import(import(guids::FILE, "tivo.File", ConstraintKind::Pull));
    let file = OdfDocument::new("tivo.File", guids::FILE)
        .with_target(class(class_ids::NETWORK, "Network Device"))
        .with_target(class(class_ids::STORAGE, "Smart Disk"));
    vec![broadcast, file]
}

/// A generic TiVo component: counts the traffic it handles and charges
/// per-byte work; concrete behaviour (decode costs, file I/O) is modelled
/// by the timed scenarios in [`crate::server`] / [`crate::client`] — this
/// component layer exists to drive the *deployment* machinery.
#[derive(Debug)]
pub struct TivoComponent {
    guid: Guid,
    name: String,
    per_byte: Cycles,
    /// Bytes pushed through `handle_call`.
    pub bytes_handled: u64,
    /// Calls served.
    pub calls: u64,
    /// Downstream channels this component forwards data onto, installed
    /// at runtime through `wire` control calls (delivered over the
    /// OOB channel in a real deployment — §3.2: "The OOB-channel is
    /// usually used to notify the Offcode regarding … availability of
    /// other channels").
    forward: Vec<(ChannelId, Guid)>,
}

impl TivoComponent {
    /// Creates a component with the given identity and per-byte cost.
    pub fn new(guid: Guid, name: &str, per_byte: Cycles) -> Self {
        TivoComponent {
            guid,
            name: name.to_owned(),
            per_byte,
            bytes_handled: 0,
            calls: 0,
            forward: Vec::new(),
        }
    }

    fn boxed(guid: Guid, name: &str, per_byte: u64) -> Box<dyn Offcode> {
        Box::new(TivoComponent::new(guid, name, Cycles::new(per_byte)))
    }
}

impl Offcode for TivoComponent {
    fn guid(&self) -> Guid {
        self.guid
    }

    fn bind_name(&self) -> &str {
        &self.name
    }

    fn handle_call(&mut self, ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError> {
        self.calls += 1;
        let bytes = call
            .args
            .iter()
            .filter_map(Value::as_bytes)
            .map(Bytes::len)
            .sum::<usize>();
        self.bytes_handled += bytes as u64;
        ctx.charge(self.per_byte * bytes as u64 + Cycles::new(500));
        match call.operation.as_str() {
            // Control plane: install a downstream channel. Arguments are
            // the channel id and the target interface GUID.
            "wire" => {
                let (Some(chan), Some(target)) = (
                    call.args.first().and_then(Value::as_u64),
                    call.args.get(1).and_then(Value::as_u64),
                ) else {
                    return Err(RuntimeError::Rejected(
                        "wire needs (channel, target guid)".into(),
                    ));
                };
                self.forward.push((ChannelId(chan as u32), Guid(target)));
                Ok(Value::Unit)
            }
            // Data plane: count, charge, and forward payloads downstream.
            "push" | "store" | "decode" | "show" | "read" | "write" | "control" => {
                for (chan, target) in &self.forward {
                    for arg in &call.args {
                        if let Value::Bytes(b) = arg {
                            let fwd = Call::new(*target, "push").with_arg(Value::Bytes(b.clone()));
                            ctx.send_call(*chan, &fwd);
                        }
                    }
                }
                Ok(Value::U64(self.bytes_handled))
            }
            other => Err(RuntimeError::UnknownOperation(other.to_owned())),
        }
    }
}

/// Registers every TiVoPC client component in a runtime's depot.
///
/// # Errors
///
/// Propagates depot registration failures (duplicate GUIDs).
pub fn register_tivo_client(rt: &mut Runtime) -> Result<(), RuntimeError> {
    for odf in tivo_client_odfs() {
        let guid = odf.guid;
        let name = odf.bind_name.clone();
        rt.register_offcode(odf, move || TivoComponent::boxed(guid, &name, 2))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
    use hydra_core::runtime::RuntimeConfig;
    use hydra_sim::time::SimTime;

    fn full_machine() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic()); // dev1
        reg.install(DeviceDescriptor::smart_disk()); // dev2
        reg.install(DeviceDescriptor::gpu()); // dev3
        reg
    }

    #[test]
    fn figure_8_layout_is_reproduced() {
        let mut rt = Runtime::new(full_machine(), RuntimeConfig::default());
        register_tivo_client(&mut rt).unwrap();
        rt.create_offcode(guids::GUI, SimTime::ZERO).unwrap();

        let dev = |g| rt.device_of(rt.get_offcode(g).unwrap()).unwrap();
        assert_eq!(dev(guids::GUI), DeviceId::HOST, "GUI stays in user space");
        assert_eq!(dev(guids::STREAMER_NET), DeviceId(1), "Streamer on NIC");
        assert_eq!(dev(guids::STREAMER_DISK), DeviceId(2), "Streamer on disk");
        assert_eq!(dev(guids::DECODER), DeviceId(3), "Decoder on GPU");
        assert_eq!(dev(guids::DISPLAY), DeviceId(3), "Display pulled to GPU");
        assert_eq!(dev(guids::FILE), DeviceId(2), "File pulled to disk");
    }

    #[test]
    fn without_gpu_gang_pulls_pipeline_back_to_host() {
        // Remove the GPU: the Decoder can fall back to the NIC (its second
        // device class), so the gang can still be satisfied.
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic());
        reg.install(DeviceDescriptor::smart_disk());
        // The static verifier flags the GPU-less machine up front (HV012:
        // the Decoder–Display Pull has no common device); disable it to
        // exercise the solver's host-fallback resolution of that Pull.
        let config = RuntimeConfig {
            verify_deployments: false,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(reg, config);
        register_tivo_client(&mut rt).unwrap();
        rt.create_offcode(guids::GUI, SimTime::ZERO).unwrap();
        let dev = |g| rt.device_of(rt.get_offcode(g).unwrap()).unwrap();
        // Decoder lands on the NIC; Display must be pulled along (its only
        // non-host class is GPU, so both end up wherever feasible).
        let d = dev(guids::DECODER);
        assert_eq!(dev(guids::DISPLAY), d, "Pull keeps them together");
    }

    #[test]
    fn components_count_traffic() {
        let mut rt = Runtime::new(full_machine(), RuntimeConfig::default());
        register_tivo_client(&mut rt).unwrap();
        rt.create_offcode(guids::GUI, SimTime::ZERO).unwrap();
        let dec = rt.get_offcode(guids::DECODER).unwrap();
        let call = Call::new(guids::DECODER, "decode")
            .with_arg(Value::Bytes(Bytes::from_static(&[0u8; 1024])));
        let out = rt.invoke(dec, &call, SimTime::ZERO).unwrap();
        assert_eq!(out, Value::U64(1024));
        // Work booked on the GPU, not the host.
        assert!(rt.device_work(DeviceId(3)).get() > 0);
        assert_eq!(rt.device_work(DeviceId::HOST).get(), 0);
    }

    #[test]
    fn unknown_operation_rejected() {
        let mut rt = Runtime::new(full_machine(), RuntimeConfig::default());
        register_tivo_client(&mut rt).unwrap();
        rt.create_offcode(guids::GUI, SimTime::ZERO).unwrap();
        let dec = rt.get_offcode(guids::DECODER).unwrap();
        assert!(matches!(
            rt.invoke(dec, &Call::new(guids::DECODER, "explode"), SimTime::ZERO),
            Err(RuntimeError::UnknownOperation(_))
        ));
    }

    #[test]
    fn server_odfs_colocate_broadcast_and_file() {
        let mut reg = DeviceRegistry::new();
        reg.install(DeviceDescriptor::programmable_nic());
        let mut rt = Runtime::new(reg, RuntimeConfig::default());
        for odf in tivo_server_odfs() {
            let guid = odf.guid;
            let name = odf.bind_name.clone();
            rt.register_offcode(odf, move || TivoComponent::boxed(guid, &name, 1))
                .unwrap();
        }
        rt.create_offcode(guids::BROADCAST, SimTime::ZERO).unwrap();
        let b = rt
            .device_of(rt.get_offcode(guids::BROADCAST).unwrap())
            .unwrap();
        let f = rt.device_of(rt.get_offcode(guids::FILE).unwrap()).unwrap();
        assert_eq!(b, DeviceId(1));
        assert_eq!(f, b, "Pull keeps File with Broadcast on the NIC");
    }

    #[test]
    fn figure_2_dataflow_through_wired_channels() {
        // Reproduce Figure 2's flow with live Call dispatch: a packet
        // enters the NIC Streamer, which forwards it over zero-copy
        // channels to the Decoder (GPU) and the disk Streamer; the
        // Decoder forwards decoded data to the Display (same device).
        use hydra_core::channel::ChannelConfig;
        let mut rt = Runtime::new(full_machine(), RuntimeConfig::default());
        register_tivo_client(&mut rt).unwrap();
        rt.create_offcode(guids::GUI, SimTime::ZERO).unwrap();
        let id = |g| rt.get_offcode(g).unwrap();
        let (net, dec, dis, dsk) = (
            id(guids::STREAMER_NET),
            id(guids::DECODER),
            id(guids::DISPLAY),
            id(guids::STREAMER_DISK),
        );
        // Channels follow the placement: NIC->GPU, NIC->disk, GPU->GPU.
        let (dev_dec, dev_dsk, dev_dis) = (
            rt.device_of(dec).unwrap(),
            rt.device_of(dsk).unwrap(),
            rt.device_of(dis).unwrap(),
        );
        let to_dec = rt.create_channel(ChannelConfig::figure3(dev_dec)).unwrap();
        rt.connect_offcode(to_dec, dec).unwrap();
        let to_disk = rt.create_channel(ChannelConfig::figure3(dev_dsk)).unwrap();
        rt.connect_offcode(to_disk, dsk).unwrap();
        let to_dis = rt.create_channel(ChannelConfig::figure3(dev_dis)).unwrap();
        rt.connect_offcode(to_dis, dis).unwrap();

        // Wire the graph via control calls (OOB channel in a real system).
        let wire = |rt: &mut Runtime, target, chan: ChannelId, peer: Guid| {
            let call = Call::new(Guid(0), "wire")
                .with_arg(Value::U64(u64::from(chan.0)))
                .with_arg(Value::U64(peer.0));
            rt.invoke(target, &call, SimTime::ZERO).unwrap();
        };
        wire(&mut rt, net, to_dec, guids::DECODER);
        wire(&mut rt, net, to_disk, guids::STREAMER_DISK);
        wire(&mut rt, dec, to_dis, guids::DISPLAY);

        // Push 10 packets into the NIC Streamer and pump to quiescence.
        let mut dispatched = 0;
        for i in 0..10u64 {
            let pkt = Call::new(guids::STREAMER_NET, "push")
                .with_arg(Value::Bytes(Bytes::from(vec![i as u8; 1024])));
            rt.invoke(net, &pkt, SimTime::from_millis(i)).unwrap();
            // Advance far enough for all channel deliveries.
            dispatched += rt.pump(SimTime::from_millis(i + 100)).len();
        }
        // One final pump: the last decoder->display forward was sent
        // *during* the previous pump and delivers slightly later.
        dispatched += rt.pump(SimTime::from_secs(1)).len();
        assert_eq!(dispatched, 30, "decoder + disk + display per packet");
        // Every device on the path did work; the host did none.
        let dev_of = |oc| rt.device_of(oc).unwrap();
        assert!(rt.device_work(dev_of(net)).get() > 0);
        assert!(rt.device_work(dev_of(dec)).get() > 0);
        assert!(rt.device_work(dev_of(dsk)).get() > 0);
        assert_eq!(rt.device_work(DeviceId::HOST).get(), 0);
    }

    #[test]
    fn wire_rejects_malformed_control_calls() {
        let mut rt = Runtime::new(full_machine(), RuntimeConfig::default());
        register_tivo_client(&mut rt).unwrap();
        rt.create_offcode(guids::GUI, SimTime::ZERO).unwrap();
        let net = rt.get_offcode(guids::STREAMER_NET).unwrap();
        let bad = Call::new(Guid(0), "wire").with_arg(Value::Str("nope".into()));
        assert!(matches!(
            rt.invoke(net, &bad, SimTime::ZERO),
            Err(RuntimeError::Rejected(_))
        ));
    }

    #[test]
    fn odfs_round_trip_through_xml() {
        for odf in tivo_client_odfs().into_iter().chain(tivo_server_odfs()) {
            let re = OdfDocument::parse(&odf.to_xml()).unwrap();
            assert_eq!(re, odf);
        }
    }
}
