//! The GHz/Gbps ratio model (paper Figure 1, after Foong et al.).
//!
//! Figure 1 plots how many gigahertz of host CPU one gigabit per second of
//! TCP traffic consumes, as a function of packet size, for transmit and
//! receive. The shape is pure per-packet-overhead amortization: small
//! packets mean many syscalls/interrupts/descriptor operations per byte,
//! so the ratio explodes; large packets approach the per-byte copy floor;
//! and receive sits above transmit because the kernel takes an interrupt
//! per packet and cannot avoid the final copy to the (cache-cold) user
//! buffer.

use hydra_hw::cpu::CpuSpec;
use hydra_media::cost::PacketCostModel;

/// Direction of the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpDirection {
    /// Host sends.
    Transmit,
    /// Host receives.
    Receive,
}

/// One point of the Figure-1 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GhzGbpsPoint {
    /// Packet payload size in bytes.
    pub packet_bytes: usize,
    /// Fraction of one CPU consumed at the achieved throughput.
    pub cpu_utilization: f64,
    /// Achieved throughput in Gbps (line rate unless CPU-bound).
    pub throughput_gbps: f64,
    /// The figure's y-axis: `utilization × CPU GHz / throughput Gbps`.
    pub ghz_per_gbps: f64,
}

/// The Figure-1 model: a host CPU spec, a line rate, and per-direction
/// packet cost models.
#[derive(Debug, Clone)]
pub struct GhzGbpsModel {
    cpu: CpuSpec,
    line_rate_bps: u64,
    transmit: PacketCostModel,
    receive: PacketCostModel,
}

impl Default for GhzGbpsModel {
    fn default() -> Self {
        Self::paper_setup()
    }
}

impl GhzGbpsModel {
    /// The paper's setup: P4-class host on gigabit Ethernet.
    pub fn paper_setup() -> Self {
        GhzGbpsModel {
            cpu: CpuSpec::pentium4(),
            line_rate_bps: 1_000_000_000,
            transmit: PacketCostModel::host_transmit(),
            receive: PacketCostModel::host_receive(),
        }
    }

    /// Evaluates one packet size in one direction.
    ///
    /// If processing all line-rate packets would need more than one CPU,
    /// throughput degrades to what one CPU can sustain (the regime where
    /// "host CPUs spend all of their cycles just processing network
    /// traffic").
    ///
    /// # Panics
    ///
    /// Panics if `packet_bytes` is zero.
    pub fn evaluate(&self, packet_bytes: usize, dir: TcpDirection) -> GhzGbpsPoint {
        assert!(packet_bytes > 0, "packet size must be positive");
        let model = match dir {
            TcpDirection::Transmit => &self.transmit,
            TcpDirection::Receive => &self.receive,
        };
        let cycles_per_packet = model.cycles(packet_bytes) as f64;
        let line_pps = self.line_rate_bps as f64 / 8.0 / packet_bytes as f64;
        let cycles_needed = line_pps * cycles_per_packet;
        let freq = self.cpu.freq_hz as f64;
        let (utilization, achieved_pps) = if cycles_needed <= freq {
            (cycles_needed / freq, line_pps)
        } else {
            (1.0, freq / cycles_per_packet)
        };
        let throughput_gbps = achieved_pps * packet_bytes as f64 * 8.0 / 1e9;
        let ghz = utilization * freq / 1e9;
        GhzGbpsPoint {
            packet_bytes,
            cpu_utilization: utilization,
            throughput_gbps,
            ghz_per_gbps: ghz / throughput_gbps,
        }
    }

    /// The standard Figure-1 sweep: packet sizes 64 B … 64 kB.
    pub fn sweep(&self, dir: TcpDirection) -> Vec<GhzGbpsPoint> {
        let mut sizes = Vec::new();
        let mut s = 64usize;
        while s <= 64 * 1024 {
            sizes.push(s);
            s *= 2;
        }
        sizes.into_iter().map(|s| self.evaluate(s, dir)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_decreases_with_packet_size() {
        let m = GhzGbpsModel::paper_setup();
        for dir in [TcpDirection::Transmit, TcpDirection::Receive] {
            let pts = m.sweep(dir);
            for w in pts.windows(2) {
                assert!(
                    w[1].ghz_per_gbps < w[0].ghz_per_gbps,
                    "{dir:?}: ratio not decreasing at {} bytes",
                    w[1].packet_bytes
                );
            }
        }
    }

    #[test]
    fn receive_costs_more_than_transmit() {
        let m = GhzGbpsModel::paper_setup();
        let tx = m.sweep(TcpDirection::Transmit);
        let rx = m.sweep(TcpDirection::Receive);
        for (t, r) in tx.iter().zip(&rx) {
            assert!(
                r.ghz_per_gbps > t.ghz_per_gbps,
                "receive should dominate at {} bytes",
                t.packet_bytes
            );
        }
    }

    #[test]
    fn small_packets_saturate_the_cpu() {
        let m = GhzGbpsModel::paper_setup();
        let p = m.evaluate(64, TcpDirection::Receive);
        assert_eq!(p.cpu_utilization, 1.0);
        assert!(p.throughput_gbps < 1.0, "CPU-bound below line rate");
    }

    #[test]
    fn large_packets_reach_line_rate_cheaply() {
        let m = GhzGbpsModel::paper_setup();
        let p = m.evaluate(64 * 1024, TcpDirection::Transmit);
        assert!((p.throughput_gbps - 1.0).abs() < 1e-9);
        assert!(p.cpu_utilization < 0.8);
    }

    #[test]
    fn paper_magnitudes_are_plausible() {
        // Foong et al. report roughly ~1 GHz/Gbps for ~1 kB receive and
        // several GHz/Gbps at tiny packets.
        let m = GhzGbpsModel::paper_setup();
        let kb = m.evaluate(1024, TcpDirection::Receive);
        assert!(
            (0.3..3.0).contains(&kb.ghz_per_gbps),
            "1 kB receive ratio {}",
            kb.ghz_per_gbps
        );
        let tiny = m.evaluate(64, TcpDirection::Receive);
        assert!(tiny.ghz_per_gbps > 5.0, "tiny ratio {}", tiny.ghz_per_gbps);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_packet_rejected() {
        GhzGbpsModel::paper_setup().evaluate(0, TcpDirection::Transmit);
    }
}
