//! The fault-injection demo: the observability pipeline under a NIC
//! crash.
//!
//! The scenario deploys the demo trio (streamer → decoder → display)
//! plus a stateful archiver on the smart disk, feeds every component a
//! known number of calls, then replays a committed [`FaultPlan`] that
//! fail-stops the NIC mid-run. The runtime's health monitor notices the
//! silence, declares the device Failed, and recovery re-lays-out the
//! application over the survivors: the streamer (NETWORK-only) falls
//! back to the host, the Gang constraint drags the decoder with it, the
//! Pull constraint drags the display, and the archiver stays put on the
//! disk. Every component is snapshot-able here, so all three moves are
//! live migrations and no call count is lost.
//!
//! [`run_fault_demo`] renders the outcome as canonical JSON; two runs of
//! the same plan produce byte-identical output (`repro -- faults` and
//! the CI `faults-gate` job diff exactly that).

use hydra_core::call::{Call, Value};
use hydra_core::device::{DeviceDescriptor, DeviceRegistry};
use hydra_core::error::RuntimeError;
use hydra_core::offcode::{Offcode, OffcodeCtx};
use hydra_core::runtime::{Runtime, RuntimeConfig};
use hydra_odf::odf::{class_ids, ConstraintKind, DeviceClassSpec, Guid, Import, OdfDocument};
use hydra_sim::fault::{FaultKind, FaultPlan};
use hydra_sim::time::{SimDuration, SimTime};

use bytes::Bytes;

/// A demo Offcode that counts its calls and can snapshot/restore the
/// count — the minimal "stateful component" a live migration must not
/// lose.
#[derive(Debug)]
struct StatefulDemoOffcode {
    guid: Guid,
    name: &'static str,
    count: u64,
}

impl Offcode for StatefulDemoOffcode {
    fn guid(&self) -> Guid {
        self.guid
    }
    fn bind_name(&self) -> &str {
        self.name
    }
    fn handle_call(&mut self, _ctx: &mut OffcodeCtx, call: &Call) -> Result<Value, RuntimeError> {
        match call.operation.as_str() {
            "get" => Ok(Value::U64(self.count)),
            _ => {
                self.count += 1;
                Ok(Value::U64(self.count))
            }
        }
    }
    fn snapshot(&self) -> Option<Bytes> {
        Some(Bytes::copy_from_slice(&self.count.to_le_bytes()))
    }
    fn restore(&mut self, state: Bytes) -> Result<(), RuntimeError> {
        let raw: [u8; 8] = state
            .as_ref()
            .try_into()
            .map_err(|_| RuntimeError::Rejected("bad snapshot length".into()))?;
        self.count = u64::from_le_bytes(raw);
        Ok(())
    }
}

fn class(id: u32) -> DeviceClassSpec {
    DeviceClassSpec {
        id,
        name: format!("class-{id}"),
        bus: None,
        mac: None,
        vendor: None,
    }
}

/// The fault demo's four ODFs: the demo trio plus `tivo.Archiver` on the
/// smart disk (a survivor that must stay put through recovery).
pub fn fault_demo_odfs() -> Vec<OdfDocument> {
    let streamer = OdfDocument::new("tivo.Streamer", Guid(1))
        .with_target(class(class_ids::NETWORK))
        .with_import(Import {
            file: String::new(),
            bind_name: "tivo.Decoder".into(),
            guid: Guid(2),
            constraint: ConstraintKind::Gang,
            priority: 0,
        });
    let decoder = OdfDocument::new("tivo.Decoder", Guid(2))
        .with_target(class(class_ids::GPU))
        .with_import(Import {
            file: String::new(),
            bind_name: "tivo.Display".into(),
            guid: Guid(3),
            constraint: ConstraintKind::Pull,
            priority: 0,
        });
    let display = OdfDocument::new("tivo.Display", Guid(3)).with_target(class(class_ids::GPU));
    let archiver =
        OdfDocument::new("tivo.Archiver", Guid(4)).with_target(class(class_ids::STORAGE));
    vec![streamer, decoder, display, archiver]
}

/// The committed fault schedule: the NIC (device 1) fail-stops two
/// milliseconds into the run. `fixtures/faults/nic_crash.faults` is this
/// plan's canonical rendering.
pub fn fault_demo_plan() -> FaultPlan {
    FaultPlan::new(42).with_event(
        SimTime::ZERO + SimDuration::from_millis(2),
        1,
        FaultKind::Crash,
    )
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the fault demo under `plan` and returns the runtime (recorder
/// populated, recovery complete) plus the canonical JSON report: the
/// schedule echo, per-pulse recovery reports, final placements, the
/// preserved call counts, the connection audit, and the `fault.*` /
/// `recover.*` counters. Byte-identical across runs of the same plan.
pub fn run_fault_demo(plan: &FaultPlan) -> (Runtime, String) {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic()); // dev1
    reg.install(DeviceDescriptor::smart_disk()); // dev2
    reg.install(DeviceDescriptor::gpu()); // dev3
    let mut rt = Runtime::new(reg, RuntimeConfig::default());

    for odf in fault_demo_odfs() {
        let guid = odf.guid;
        let name: &'static str = match guid {
            Guid(1) => "tivo.Streamer",
            Guid(2) => "tivo.Decoder",
            Guid(3) => "tivo.Display",
            _ => "tivo.Archiver",
        };
        rt.register_offcode(odf, move || {
            Box::new(StatefulDemoOffcode {
                guid,
                name,
                count: 0,
            })
        })
        .expect("fresh depot");
    }
    rt.create_offcode(Guid(1), SimTime::ZERO)
        .expect("demo trio deploys");
    rt.create_offcode(Guid(4), SimTime::ZERO)
        .expect("archiver deploys");

    // Give every component a distinct call count the migration must carry.
    for (guid, calls) in [(1u64, 3u64), (2, 5), (3, 7), (4, 11)] {
        let id = rt.get_offcode(Guid(guid)).expect("deployed");
        for _ in 0..calls {
            rt.invoke(id, &Call::new(Guid(guid), "frame"), SimTime::ZERO)
                .expect("call handled");
        }
    }

    rt.install_fault_plan(plan);

    // Drive health pulses on the heartbeat cadence past the failure
    // deadline, collecting every recovery report.
    let beat = SimDuration::from_millis(1);
    let mut reports = Vec::new();
    let mut report_times = Vec::new();
    for tick in 0..=10u64 {
        let now = SimTime::ZERO + beat * tick;
        for r in rt.pulse(now).expect("recovery succeeds") {
            reports.push(r);
            report_times.push(now);
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"schedule\": \"{}\",\n", esc(&plan.render())));
    json.push_str("  \"recoveries\": [\n");
    for (i, (r, at)) in reports.iter().zip(&report_times).enumerate() {
        let displaced: Vec<String> = r
            .displaced
            .iter()
            .map(|n| format!("\"{}\"", esc(n)))
            .collect();
        let migrated: Vec<String> = r
            .migrated
            .iter()
            .map(|(g, d)| format!("{{\"guid\": {}, \"to\": \"{d}\"}}", g.0))
            .collect();
        let redeployed: Vec<String> = r.redeployed.iter().map(|g| g.0.to_string()).collect();
        json.push_str(&format!(
            "    {{\"at_ns\": {}, \"device\": \"{}\", \"displaced\": [{}], \"migrated\": [{}], \"host_fallbacks\": {}, \"redeployed\": [{}], \"constraints_ok\": {}}}{}\n",
            at.as_nanos(),
            r.device,
            displaced.join(", "),
            migrated.join(", "),
            r.host_fallbacks,
            redeployed.join(", "),
            r.constraints_ok,
            if i + 1 < reports.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");

    json.push_str("  \"placements\": [\n");
    for (i, guid) in [1u64, 2, 3, 4].iter().enumerate() {
        let (device, count) = match rt.get_offcode(Guid(*guid)) {
            Some(id) => {
                let device = rt.device_of(id).expect("live instance");
                let end = SimTime::ZERO + beat * 11;
                let count = match rt.invoke(id, &Call::new(Guid(*guid), "get"), end) {
                    Ok(Value::U64(n)) => n,
                    other => panic!("unexpected get result: {other:?}"),
                };
                (device.to_string(), count)
            }
            None => ("lost".to_owned(), 0),
        };
        json.push_str(&format!(
            "    {{\"guid\": {guid}, \"device\": \"{device}\", \"calls\": {count}}}{}\n",
            if i < 3 { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");

    let audit = rt.audit_connections();
    let problems: Vec<String> = audit.iter().map(|p| format!("\"{}\"", esc(p))).collect();
    json.push_str(&format!("  \"audit\": [{}],\n", problems.join(", ")));

    let snap = rt.metrics_snapshot();
    json.push_str("  \"counters\": {\n");
    let interesting = [
        "fault.heartbeat_missed",
        "fault.device_suspect",
        "fault.device_failed",
        "deploy.migrations",
        "recover.migrations",
        "recover.host_fallback",
        "recover.redeployed",
        "deploy.host_fallback",
    ];
    for (i, name) in interesting.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {}{}\n",
            snap.counter_total(name),
            if i + 1 < interesting.len() { "," } else { "" },
        ));
    }
    json.push_str("  }\n}\n");
    (rt, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_core::device::DeviceId;
    use hydra_core::health::DeviceHealth;

    #[test]
    fn nic_crash_recovers_with_state_intact() {
        let plan = fault_demo_plan();
        let (rt, json) = run_fault_demo(&plan);
        assert_eq!(rt.device_health(DeviceId(1)), DeviceHealth::Failed);
        // The gang/pull cascade pulls all three pipeline components to
        // the host; the archiver survives in place on the disk.
        for guid in [1u64, 2, 3] {
            let id = rt.get_offcode(Guid(guid)).expect("survived");
            assert_eq!(rt.device_of(id), Some(DeviceId::HOST), "guid {guid}");
        }
        let arch = rt.get_offcode(Guid(4)).expect("archiver survived");
        assert_eq!(rt.device_of(arch), Some(DeviceId(2)));
        // Call counts preserved across the migration (+1: the report's
        // own "get" probe does not count).
        assert!(json.contains("\"guid\": 1, \"device\": \"host\", \"calls\": 3"));
        assert!(json.contains("\"guid\": 2, \"device\": \"host\", \"calls\": 5"));
        assert!(json.contains("\"guid\": 3, \"device\": \"host\", \"calls\": 7"));
        assert!(json.contains("\"guid\": 4, \"device\": \"dev2\", \"calls\": 11"));
        assert!(json.contains("\"audit\": []"));
        // 3 displaced => 3 recovery migrations.
        let snap = rt.metrics_snapshot();
        assert_eq!(snap.counter_total("recover.migrations"), 3);
        assert_eq!(snap.counter_total("fault.device_failed"), 1);
    }

    #[test]
    fn fault_demo_is_byte_identical_across_runs() {
        let plan = fault_demo_plan();
        let (rt_a, json_a) = run_fault_demo(&plan);
        let (rt_b, json_b) = run_fault_demo(&plan);
        assert_eq!(json_a, json_b);
        assert_eq!(
            rt_a.metrics_snapshot().to_json(),
            rt_b.metrics_snapshot().to_json()
        );
        assert_eq!(rt_a.trace_export(), rt_b.trace_export());
    }
}
