//! The shared telemetry-timeline scenario behind `repro -- stats`.
//!
//! Where [`demo`](crate::demo) exercises end-of-run aggregates, this
//! scenario exists to exercise the *windowed* telemetry stack: a
//! [`Sampler`] ticking every millisecond inside the DES engine while a
//! mixed workload keeps every device model busy — bursty varied-size
//! traffic on a Figure-3 bulk channel into the NIC, small control calls
//! on an OOB channel, block writes through the smart disk's NAS link,
//! GPU hardware decodes, and periodic host OS work. Each closed window
//! then carries per-device `device.busy_ns` / `link.busy_ns` deltas
//! (utilization) and per-channel `channel.queue_depth` levels, and the
//! channels accumulate live [`CostProfile`]s (size-bucketed latency
//! digests, EWMA, launch-overhead counters).
//!
//! [`run_stats_demo`] renders all of that as one canonical hand-rolled
//! JSON report. Everything is driven by sim time and deterministic
//! models, so two invocations — with or without a fault plan — are
//! byte-identical; `repro -- stats`, the root `stats_gate` test and the
//! CI stats-gate diff exactly that.

use bytes::Bytes;
use hydra_core::channel::{ChannelConfig, ChannelId, CostProfile, CHANNEL_QUEUE_DEPTH};
use hydra_core::device::{DeviceDescriptor, DeviceId, DeviceRegistry};
use hydra_core::runtime::{Runtime, RuntimeConfig};
use hydra_devices::disk::SmartDiskModel;
use hydra_devices::gpu::GpuModel;
use hydra_devices::host::HostModel;
use hydra_devices::nic::NicModel;
use hydra_devices::{DEVICE_BUSY_NS, LINK_BUSY_NS};
use hydra_hw::mem::Region;
use hydra_media::codec::{CodecConfig, EncodedFrame, Encoder, GopConfig};
use hydra_media::frame::SyntheticVideo;
use hydra_net::nfs::{NasServer, NasTiming};
use hydra_obs::{MetricsSnapshot, Sampler};
use hydra_sim::fault::{FaultKind, FaultPlan};
use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::Sim;

/// Telemetry window width: 1 ms.
pub fn stats_window() -> SimDuration {
    SimDuration::from_millis(1)
}

/// Scenario horizon: 10 ms of sim time, i.e. ten closed windows.
pub fn stats_horizon() -> SimTime {
    SimTime::from_millis(10)
}

/// The fault plan `repro -- stats` runs under when asked for the faulted
/// variant, and the one the gate tests replay: the NIC crashes at 4 ms,
/// the GPU stalls at 2 ms, and the disk wedges late.
pub fn stats_demo_plan() -> FaultPlan {
    FaultPlan::new(42)
        .with_event(
            SimTime::from_millis(2),
            3,
            FaultKind::Stall {
                duration: SimDuration::from_micros(400),
            },
        )
        .with_event(SimTime::from_millis(4), 1, FaultKind::Crash)
        .with_event(SimTime::from_millis(7), 2, FaultKind::Crash)
}

/// Everything the scenario mutates from inside sim events.
struct StatsModel {
    rt: Runtime,
    bulk: ChannelId,
    oob: ChannelId,
    bulk_ep: usize,
    oob_ep: usize,
    host: HostModel,
    nic: NicModel,
    disk: SmartDiskModel,
    gpu: GpuModel,
    nas: NasServer,
    frames: Vec<EncodedFrame>,
    copy_src: Region,
    copy_dst: Region,
    bursts: u64,
    blocks: u64,
}

fn build(plan: Option<&FaultPlan>) -> StatsModel {
    let mut reg = DeviceRegistry::new();
    reg.install(DeviceDescriptor::programmable_nic()); // dev1
    reg.install(DeviceDescriptor::smart_disk()); // dev2
    reg.install(DeviceDescriptor::gpu()); // dev3
    let mut rt = Runtime::new(reg, RuntimeConfig::default());

    let bulk = rt
        .create_channel(ChannelConfig::figure3(DeviceId(1)))
        .expect("bulk channel on the NIC");
    let oob = rt
        .create_channel(ChannelConfig::oob(DeviceId(2)))
        .expect("control channel on the disk");
    let rec = rt.recorder().clone();
    let exec = rt.executive_mut();
    let bulk_ep = exec
        .get_mut(bulk)
        .expect("bulk channel is live")
        .connect_endpoint()
        .expect("fresh channel has room");
    let oob_ep = exec
        .get_mut(oob)
        .expect("oob channel is live")
        .connect_endpoint()
        .expect("fresh channel has room");

    let mut host = HostModel::paper_host(7);
    host.set_recorder(rec.clone());
    let copy_src = host.space.alloc("stats-src", 64 * 1024);
    let copy_dst = host.space.alloc("stats-dst", 64 * 1024);
    let mut nic = NicModel::new_3c985b(11);
    nic.set_recorder(rec.clone(), 1);
    let mut disk = SmartDiskModel::new();
    disk.set_recorder(rec.clone(), 2);
    let mut gpu = GpuModel::new();
    gpu.set_recorder(rec, 3);
    let mut nas = NasServer::new(NasTiming::typical());
    disk.open(&mut nas, "/stats/telemetry.dat");
    if let Some(p) = plan {
        nic.install_faults(p.injector(1));
        disk.install_faults(p.injector(2));
        gpu.install_faults(p.injector(3));
    }

    let video = SyntheticVideo::new(64, 48);
    let raw: Vec<_> = (0..4).map(|i| video.frame(i)).collect();
    let frames = Encoder::new(CodecConfig {
        quantizer: 4,
        gop: GopConfig::ipp(),
    })
    .encode_sequence(&raw);

    StatsModel {
        rt,
        bulk,
        oob,
        bulk_ep,
        oob_ep,
        host,
        nic,
        disk,
        gpu,
        nas,
        frames,
        copy_src,
        copy_dst,
        bursts: 0,
        blocks: 0,
    }
}

/// Bulk traffic every 200 µs: drain what last burst left on the channel
/// (so window edges catch a non-zero queue depth), push the drained
/// bytes through the device datapath, then send the next burst with the
/// payload size cycling through three power-of-two latency buckets.
fn schedule_traffic(sim: &mut Sim<StatsModel>, until: SimTime) {
    let period = SimDuration::from_micros(200);
    sim.every(SimTime::ZERO + period, period, move |sim| {
        let now = sim.now();
        let m = sim.model_mut();

        let msgs = {
            let ch = m.rt.executive_mut().get_mut(m.bulk).expect("bulk channel");
            ch.recv_batch(now, m.bulk_ep, usize::MAX)
        };
        for msg in &msgs {
            if m.nic.rx_frame(now, msg.data.len()).is_none() {
                continue; // NIC down or frame lost: nothing reaches the backends.
            }
            if msg.data.len() >= 16 * 1024 {
                let frame = &m.frames[(m.bursts % m.frames.len() as u64) as usize];
                let _ = m.gpu.hw_decode_faulted(now, frame);
            } else if msg.data.len() >= 1024 {
                if m.disk
                    .write_block(now, &mut m.nas, m.blocks, msg.data.clone())
                    .is_ok()
                {
                    m.blocks += 1;
                }
            } else {
                m.host.syscall(now);
            }
        }

        m.bursts += 1;
        let len = match m.bursts % 3 {
            0 => 16 * 1024,
            1 => 64,
            _ => 1024,
        };
        let payload = Bytes::from(vec![0x5Au8; len]);
        let ch = m.rt.executive_mut().get_mut(m.bulk).expect("bulk channel");
        for _ in 0..2 {
            let _ = ch.send(now, payload.clone());
        }
        now.saturating_add(period) <= until
    });
}

/// Small control calls every 500 µs on the OOB channel, drained at their
/// delivery instant, plus the host-side submit/dispatch cost.
fn schedule_control(sim: &mut Sim<StatsModel>, until: SimTime) {
    let period = SimDuration::from_micros(500);
    sim.every(SimTime::ZERO + period, period, move |sim| {
        let now = sim.now();
        let m = sim.model_mut();
        m.host.syscall(now);
        let ch = m.rt.executive_mut().get_mut(m.oob).expect("oob channel");
        if let Ok(at) = ch.send(now, Bytes::from_static(&[0xC0; 32])) {
            let _ = ch.recv_batch(at, m.oob_ep, usize::MAX);
        }
        m.host.context_switch(now);
        now.saturating_add(period) <= until
    });
}

/// Background host load every 1 ms (offset 300 µs so it never lands on a
/// window edge): timer tick, an interrupt, and a 16 KiB kernel copy.
fn schedule_host_load(sim: &mut Sim<StatsModel>, until: SimTime) {
    let period = SimDuration::from_millis(1);
    sim.every(
        SimTime::ZERO + SimDuration::from_micros(300),
        period,
        move |sim| {
            let now = sim.now();
            let m = sim.model_mut();
            m.host.background_tick(now);
            m.host.interrupt(now);
            m.host.cpu_copy(now, m.copy_src, m.copy_dst, 16 * 1024);
            now.saturating_add(period) <= until
        },
    );
}

/// Drives the scenario to its horizon and returns the settled model.
fn run_scenario(plan: Option<&FaultPlan>) -> StatsModel {
    let until = stats_horizon();
    let mut sim = Sim::new(build(plan));
    let rec = sim.model().rt.recorder().clone();
    Sampler::new(stats_window(), until).install(&mut sim, &rec);
    schedule_traffic(&mut sim, until);
    schedule_control(&mut sim, until);
    schedule_host_load(&mut sim, until);
    sim.run();
    sim.into_model()
}

/// Runs the telemetry scenario (optionally under a [`FaultPlan`]) and
/// returns the populated metrics snapshot plus the canonical JSON stats
/// report. Byte-identical across identical invocations.
#[must_use]
pub fn run_stats_demo(plan: Option<&FaultPlan>) -> (MetricsSnapshot, String) {
    let model = run_scenario(plan);
    let snap = model.rt.metrics_snapshot();
    let exec = model.rt.executive();
    let channels: Vec<(ChannelId, &str, &CostProfile)> = [model.bulk, model.oob]
        .into_iter()
        .map(|id| {
            let ch = exec.get(id).expect("scenario channel is live");
            (id, ch.provider_name(), ch.cost_profile())
        })
        .collect();
    let json = render_stats(&snap, stats_window(), &channels);
    (snap, json)
}

/// Observed worst-case latency for one scenario channel, for the
/// bound-vs-observed differential harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsChannelObs {
    /// The channel's metric label (`chan#0` = bulk, `chan#1` = OOB).
    pub label: String,
    /// The worst p99 send latency across the channel's size buckets.
    pub p99_ns: u64,
}

/// Runs the telemetry scenario and returns the snapshot plus each
/// channel's observed worst p99 latency — the empirical side the static
/// certificate's per-ring latency bounds must bracket.
#[must_use]
pub fn run_stats_observed(plan: Option<&FaultPlan>) -> (MetricsSnapshot, Vec<StatsChannelObs>) {
    let model = run_scenario(plan);
    let snap = model.rt.metrics_snapshot();
    let exec = model.rt.executive();
    let channels = [model.bulk, model.oob]
        .into_iter()
        .map(|id| {
            let ch = exec.get(id).expect("scenario channel is live");
            let p99 = ch
                .cost_profile()
                .size_buckets()
                .map(|(_, h)| h.p99().unwrap_or(0))
                .max()
                .unwrap_or(0);
            StatsChannelObs {
                label: format!("chan#{}", id.0),
                p99_ns: p99,
            }
        })
        .collect();
    (snap, channels)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the canonical stats report: one object per window with
/// per-device utilization rows (busy-time deltas in permille of the
/// window) and per-channel queue-depth levels, followed by one cost
/// profile per channel with size-bucketed latency quantiles.
fn render_stats(
    snap: &MetricsSnapshot,
    window: SimDuration,
    channels: &[(ChannelId, &str, &CostProfile)],
) -> String {
    let mut out = String::from("{\n\"schema\": 1,\n");
    out.push_str(&format!("\"window_ns\": {},\n", window.as_nanos()));
    out.push_str("\"windows\": [\n");
    for (wi, w) in snap.windows.iter().enumerate() {
        if wi > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"index\": {}, \"start_ns\": {}, \"end_ns\": {}, \"utilization\": [",
            w.index, w.start_nanos, w.end_nanos
        ));
        let mut first = true;
        for t in &w.counters {
            if t.name != DEVICE_BUSY_NS && t.name != LINK_BUSY_NS {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"label\": \"{}\", \"busy_ns\": {}, \"permille\": {}}}",
                esc(t.name),
                esc(&t.label),
                t.delta,
                w.utilization_permille(t.name, &t.label).unwrap_or(0)
            ));
        }
        out.push_str("], \"queues\": [");
        let mut first = true;
        for l in &w.levels {
            if l.name != CHANNEL_QUEUE_DEPTH {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"label\": \"{}\", \"depth\": {}}}",
                esc(&l.label),
                l.value
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n],\n\"channels\": [\n");
    for (ci, (id, provider, p)) in channels.iter().enumerate() {
        if ci > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"id\": {}, \"provider\": \"{}\", \"messages\": {}, \"bytes\": {}, \
             \"doorbells\": {}, \"launch_overhead_ns\": {}, \"ewma_latency_ns\": {}, \
             \"throughput_bytes_per_sec\": {}, \"size_buckets\": [",
            id.0,
            esc(provider),
            p.messages(),
            p.bytes(),
            p.doorbells(),
            p.launch_overhead_ns(),
            p.ewma_latency_ns(),
            p.throughput_bytes_per_sec().unwrap_or(0),
        ));
        let mut first = true;
        for (bucket, h) in p.size_buckets() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"bucket_bytes\": {}, \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
                 \"p99_ns\": {}}}",
                bucket,
                h.count(),
                h.p50().unwrap_or(0),
                h.p95().unwrap_or(0),
                h.p99().unwrap_or(0),
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_demo_is_byte_identical_across_runs() {
        let (_, a) = run_stats_demo(None);
        let (_, b) = run_stats_demo(None);
        assert_eq!(a, b, "clean run must be deterministic");
        let plan = stats_demo_plan();
        let (_, fa) = run_stats_demo(Some(&plan));
        let (_, fb) = run_stats_demo(Some(&plan));
        assert_eq!(fa, fb, "faulted run must be deterministic");
        assert_ne!(a, fa, "the fault plan must actually perturb the timeline");
    }

    #[test]
    fn stats_demo_reports_every_telemetry_dimension() {
        let (snap, json) = run_stats_demo(None);
        assert_eq!(snap.windows.len(), 10, "1 ms windows over a 10 ms run");
        // Every device label shows up as a busy-time utilization row.
        for label in ["host", "device-1", "device-2", "device-3"] {
            assert!(
                snap.counter(DEVICE_BUSY_NS, label).unwrap_or(0) > 0,
                "{label} accumulated busy time"
            );
            assert!(json.contains(&format!("\"label\": \"{label}\"")));
        }
        // The disk's NAS wire occupancy rides along.
        assert!(snap.counter(LINK_BUSY_NS, "device-2").unwrap_or(0) > 0);
        // Some window caught the bulk channel with messages still queued.
        assert!(
            snap.windows
                .iter()
                .any(|w| w.level(CHANNEL_QUEUE_DEPTH, "chan#0").unwrap_or(0) > 0),
            "a window edge catches a non-empty bulk queue"
        );
        // And at least one window shows real (non-zero) utilization.
        assert!(
            snap.windows
                .iter()
                .any(|w| w.utilization_permille(DEVICE_BUSY_NS, "host").unwrap_or(0) > 0),
            "host utilization registers inside a window"
        );
        for marker in [
            "\"window_ns\": 1000000",
            "\"utilization\"",
            "\"queues\"",
            "\"bucket_bytes\"",
            "\"p50_ns\"",
            "\"p99_ns\"",
            "\"launch_overhead_ns\"",
            "\"throughput_bytes_per_sec\"",
        ] {
            assert!(json.contains(marker), "report carries {marker}");
        }
    }

    #[test]
    fn cost_profiles_separate_the_size_classes() {
        let (_, json) = run_stats_demo(None);
        // The traffic generator cycles 64 B / 1 KiB / 16 KiB payloads, so
        // the bulk channel's profile must carry all three buckets.
        for bucket in [
            "\"bucket_bytes\": 64",
            "\"bucket_bytes\": 1024",
            "\"bucket_bytes\": 16384",
        ] {
            assert!(json.contains(bucket), "bulk profile carries {bucket}");
        }
        // The OOB control channel's 32 B calls land in their own bucket.
        assert!(json.contains("\"bucket_bytes\": 32"));
    }

    #[test]
    fn faulted_timeline_loses_nic_utilization_after_the_crash() {
        let plan = stats_demo_plan();
        let (snap, _) = run_stats_demo(Some(&plan));
        let series = snap.time_series(DEVICE_BUSY_NS, "device-1");
        assert_eq!(series.points.len(), 10);
        // The NIC crashes at 4 ms: it burned cycles before, none after.
        let before: u64 = series.points[..4].iter().map(|&(_, v)| v).sum();
        let after: u64 = series.points[5..].iter().map(|&(_, v)| v).sum();
        assert!(before > 0, "NIC was busy before the crash");
        assert_eq!(after, 0, "a crashed NIC burns no firmware cycles");
    }
}
