//! Stream packetization: frames → wire chunks → frames.
//!
//! The paper's server "sends the video stream in arbitrary chunks of 1 kB
//! while maintaining the required bit rate". [`FrameWire`] serializes
//! [`EncodedFrame`]s; [`Chunker`] slices the byte stream into fixed-size
//! chunks with enough header to reassemble out-of-order, lossy delivery;
//! [`Reassembler`] rebuilds frames and discards ones with holes.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{EncodedFrame, FrameKind};

/// Errors from de-serializing frames or chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// Not enough bytes for the fixed header.
    Truncated,
    /// Unknown frame kind tag or bad magic.
    BadHeader,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StreamError::Truncated => "stream data truncated",
            StreamError::BadHeader => "bad stream header",
        };
        f.write_str(s)
    }
}

impl std::error::Error for StreamError {}

const FRAME_MAGIC: u32 = 0x4859_4452; // "HYDR"

/// Frame-level wire serialization.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameWire;

impl FrameWire {
    /// Serializes an encoded frame (header + payload).
    pub fn encode(frame: &EncodedFrame) -> Bytes {
        let mut b = BytesMut::with_capacity(frame.data.len() + 32);
        b.put_u32(FRAME_MAGIC);
        b.put_u8(match frame.kind {
            FrameKind::I => 0,
            FrameKind::P => 1,
            FrameKind::B => 2,
        });
        b.put_u64(frame.display_index);
        b.put_u16(frame.width);
        b.put_u16(frame.height);
        b.put_u16(frame.quantizer);
        b.put_u32(frame.coded_blocks);
        b.put_u32(frame.nonzero_coeffs);
        b.put_u32(frame.data.len() as u32);
        b.put_slice(&frame.data);
        b.freeze()
    }

    /// Deserializes one frame.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, unknown kind, or truncation.
    pub fn decode(mut raw: Bytes) -> Result<EncodedFrame, StreamError> {
        if raw.remaining() < 31 {
            return Err(StreamError::Truncated);
        }
        if raw.get_u32() != FRAME_MAGIC {
            return Err(StreamError::BadHeader);
        }
        let kind = match raw.get_u8() {
            0 => FrameKind::I,
            1 => FrameKind::P,
            2 => FrameKind::B,
            _ => return Err(StreamError::BadHeader),
        };
        let display_index = raw.get_u64();
        let width = raw.get_u16();
        let height = raw.get_u16();
        let quantizer = raw.get_u16();
        let coded_blocks = raw.get_u32();
        let nonzero_coeffs = raw.get_u32();
        let len = raw.get_u32() as usize;
        if raw.remaining() < len {
            return Err(StreamError::Truncated);
        }
        Ok(EncodedFrame {
            kind,
            display_index,
            width,
            height,
            quantizer,
            data: raw.split_to(len),
            coded_blocks,
            nonzero_coeffs,
        })
    }
}

/// One transmitted chunk of a serialized frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Which frame this chunk belongs to (chunker-assigned).
    pub frame_id: u32,
    /// Byte offset within the serialized frame.
    pub offset: u32,
    /// Total serialized frame length.
    pub total_len: u32,
    /// The chunk payload.
    pub data: Bytes,
}

impl Chunk {
    /// Serializes the chunk (12-byte header + payload).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.data.len() + 12);
        b.put_u32(self.frame_id);
        b.put_u32(self.offset);
        b.put_u32(self.total_len);
        b.put_slice(&self.data);
        b.freeze()
    }

    /// Deserializes a chunk.
    ///
    /// # Errors
    ///
    /// Fails if fewer than 12 header bytes are present.
    pub fn decode(mut raw: Bytes) -> Result<Chunk, StreamError> {
        if raw.remaining() < 12 {
            return Err(StreamError::Truncated);
        }
        Ok(Chunk {
            frame_id: raw.get_u32(),
            offset: raw.get_u32(),
            total_len: raw.get_u32(),
            data: raw,
        })
    }
}

/// Splits serialized frames into fixed-size chunks.
///
/// # Examples
///
/// ```
/// use hydra_media::codec::{CodecConfig, Encoder};
/// use hydra_media::frame::SyntheticVideo;
/// use hydra_media::stream::{Chunker, Reassembler};
///
/// let frames = Encoder::new(CodecConfig::default())
///     .encode_sequence(&[SyntheticVideo::new(32, 32).frame(0)]);
/// let mut chunker = Chunker::new(1024);
/// let chunks = chunker.chunk_frame(&frames[0]);
/// let mut r = Reassembler::new();
/// let mut out = Vec::new();
/// for c in chunks {
///     out.extend(r.push(c).unwrap());
/// }
/// assert_eq!(out, frames);
/// ```
#[derive(Debug, Clone)]
pub struct Chunker {
    chunk_bytes: usize,
    next_frame_id: u32,
}

impl Chunker {
    /// Creates a chunker with the given payload size (the paper uses 1 kB).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn new(chunk_bytes: usize) -> Self {
        assert!(chunk_bytes > 0, "Chunker: chunk size must be positive");
        Chunker {
            chunk_bytes,
            next_frame_id: 0,
        }
    }

    /// Serializes and slices one frame.
    pub fn chunk_frame(&mut self, frame: &EncodedFrame) -> Vec<Chunk> {
        let wire = FrameWire::encode(frame);
        let id = self.next_frame_id;
        self.next_frame_id += 1;
        let total = wire.len() as u32;
        let mut out = Vec::with_capacity(wire.len().div_ceil(self.chunk_bytes));
        let mut offset = 0usize;
        while offset < wire.len() {
            let end = (offset + self.chunk_bytes).min(wire.len());
            out.push(Chunk {
                frame_id: id,
                offset: offset as u32,
                total_len: total,
                data: wire.slice(offset..end),
            });
            offset = end;
        }
        out
    }
}

/// Rebuilds frames from chunks, tolerating reordering and detecting loss.
#[derive(Debug, Clone, Default)]
pub struct Reassembler {
    partial: HashMap<u32, PartialFrame>,
    completed: u64,
    abandoned: u64,
}

#[derive(Debug, Clone)]
struct PartialFrame {
    total_len: u32,
    received: u32,
    pieces: Vec<(u32, Bytes)>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames fully rebuilt.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Frames dropped due to missing chunks (via [`Reassembler::expire_before`]).
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Frames currently incomplete.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Accepts one chunk; returns a frame when it completes.
    ///
    /// # Errors
    ///
    /// Fails if the completed byte stream does not parse as a frame.
    pub fn push(&mut self, chunk: Chunk) -> Result<Option<EncodedFrame>, StreamError> {
        let entry = self
            .partial
            .entry(chunk.frame_id)
            .or_insert_with(|| PartialFrame {
                total_len: chunk.total_len,
                received: 0,
                pieces: Vec::new(),
            });
        // Duplicate offsets are idempotent.
        if entry.pieces.iter().any(|(off, _)| *off == chunk.offset) {
            return Ok(None);
        }
        entry.received += chunk.data.len() as u32;
        entry.pieces.push((chunk.offset, chunk.data));
        if entry.received < entry.total_len {
            return Ok(None);
        }
        let mut entry = self
            .partial
            .remove(&chunk.frame_id)
            .expect("entry just inserted");
        entry.pieces.sort_by_key(|(off, _)| *off);
        let mut wire = BytesMut::with_capacity(entry.total_len as usize);
        for (_, piece) in entry.pieces {
            wire.put_slice(&piece);
        }
        let frame = FrameWire::decode(wire.freeze())?;
        self.completed += 1;
        Ok(Some(frame))
    }

    /// Discards partial frames with id below `frame_id` (they can never
    /// complete once the sender has moved on). Returns how many were
    /// dropped.
    pub fn expire_before(&mut self, frame_id: u32) -> usize {
        let before = self.partial.len();
        self.partial.retain(|&id, _| id >= frame_id);
        let dropped = before - self.partial.len();
        self.abandoned += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecConfig, Encoder, GopConfig};
    use crate::frame::SyntheticVideo;

    fn sample_frames(n: u64) -> Vec<EncodedFrame> {
        let video = SyntheticVideo::new(48, 32);
        let frames: Vec<_> = (0..n).map(|i| video.frame(i)).collect();
        Encoder::new(CodecConfig {
            quantizer: 4,
            gop: GopConfig::ipp(),
        })
        .encode_sequence(&frames)
    }

    #[test]
    fn frame_wire_round_trip() {
        for f in sample_frames(3) {
            let decoded = FrameWire::decode(FrameWire::encode(&f)).unwrap();
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn frame_wire_rejects_bad_magic() {
        let mut raw = FrameWire::encode(&sample_frames(1)[0]).to_vec();
        raw[0] ^= 0xff;
        assert_eq!(
            FrameWire::decode(Bytes::from(raw)),
            Err(StreamError::BadHeader)
        );
    }

    #[test]
    fn frame_wire_rejects_truncation() {
        let raw = FrameWire::encode(&sample_frames(1)[0]);
        let cut = raw.slice(0..raw.len() - 1);
        assert_eq!(FrameWire::decode(cut), Err(StreamError::Truncated));
        assert_eq!(
            FrameWire::decode(Bytes::from_static(&[1, 2, 3])),
            Err(StreamError::Truncated)
        );
    }

    #[test]
    fn chunk_wire_round_trip() {
        let c = Chunk {
            frame_id: 7,
            offset: 1024,
            total_len: 5000,
            data: Bytes::from_static(b"chunk-data"),
        };
        assert_eq!(Chunk::decode(c.encode()).unwrap(), c);
    }

    #[test]
    fn chunker_respects_size_and_covers_frame() {
        let frames = sample_frames(1);
        let mut ch = Chunker::new(256);
        let chunks = ch.chunk_frame(&frames[0]);
        let wire_len = FrameWire::encode(&frames[0]).len();
        assert!(chunks.len() >= wire_len / 256);
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.data.len(), 256);
        }
        let total: usize = chunks.iter().map(|c| c.data.len()).sum();
        assert_eq!(total, wire_len);
    }

    #[test]
    fn reassembly_in_order() {
        let frames = sample_frames(4);
        let mut ch = Chunker::new(200);
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        for f in &frames {
            for c in ch.chunk_frame(f) {
                if let Some(done) = r.push(c).unwrap() {
                    out.push(done);
                }
            }
        }
        assert_eq!(out, frames);
        assert_eq!(r.completed(), 4);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_tolerates_reordering_and_duplicates() {
        let frames = sample_frames(1);
        let mut ch = Chunker::new(128);
        let mut chunks = ch.chunk_frame(&frames[0]);
        chunks.reverse();
        let dup = chunks[0].clone();
        chunks.push(dup);
        let mut r = Reassembler::new();
        let mut done = None;
        for c in chunks {
            if let Some(f) = r.push(c).unwrap() {
                assert!(done.is_none(), "frame completed twice");
                done = Some(f);
            }
        }
        assert_eq!(done.unwrap(), frames[0]);
    }

    #[test]
    fn lost_chunk_blocks_completion_until_expired() {
        let frames = sample_frames(1);
        let mut ch = Chunker::new(100);
        let mut chunks = ch.chunk_frame(&frames[0]);
        assert!(chunks.len() > 2);
        chunks.remove(1); // lose one chunk
        let mut r = Reassembler::new();
        for c in chunks {
            assert_eq!(r.push(c).unwrap(), None);
        }
        assert_eq!(r.pending(), 1);
        assert_eq!(r.expire_before(1), 1);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.abandoned(), 1);
    }

    #[test]
    fn interleaved_frames_reassemble_independently() {
        let frames = sample_frames(2);
        let mut ch = Chunker::new(150);
        let c0 = ch.chunk_frame(&frames[0]);
        let c1 = ch.chunk_frame(&frames[1]);
        let mut r = Reassembler::new();
        let mut done = Vec::new();
        // Interleave.
        let mut it0 = c0.into_iter();
        let mut it1 = c1.into_iter();
        loop {
            let mut progressed = false;
            if let Some(c) = it0.next() {
                done.extend(r.push(c).unwrap());
                progressed = true;
            }
            if let Some(c) = it1.next() {
                done.extend(r.push(c).unwrap());
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        done.sort_by_key(|f| f.display_index);
        assert_eq!(done, frames);
    }
}
