//! Raw video frames and synthetic content.
//!
//! Frames are 8-bit grayscale (one luma plane — chroma would only scale the
//! numbers). [`SyntheticVideo`] generates deterministic test content with
//! temporal coherence: a smooth gradient background with moving discs, so
//! P-frames genuinely compress and the codec's rate behaviour resembles
//! real MPEG on real content.

/// One uncompressed frame.
///
/// # Examples
///
/// ```
/// use hydra_media::frame::RawFrame;
///
/// let f = RawFrame::filled(16, 8, 128);
/// assert_eq!(f.get(3, 2), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl RawFrame {
    /// Creates a frame filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a multiple of 8 (the
    /// codec's block size).
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(
            width > 0 && height > 0 && width.is_multiple_of(8) && height.is_multiple_of(8),
            "frame dimensions must be positive multiples of 8"
        );
        RawFrame {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Creates a frame from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or the dimensions are
    /// invalid.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        let mut f = Self::filled(width, height, 0);
        f.pixels = pixels;
        f
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// The raw pixel plane, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Number of 8×8 blocks per row.
    pub fn blocks_x(&self) -> usize {
        self.width / 8
    }

    /// Number of 8×8 block rows.
    pub fn blocks_y(&self) -> usize {
        self.height / 8
    }

    /// Total 8×8 blocks.
    pub fn block_count(&self) -> usize {
        self.blocks_x() * self.blocks_y()
    }

    /// Copies the 8×8 block at block coordinates `(bx, by)` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    pub fn read_block(&self, bx: usize, by: usize, out: &mut [i32; 64]) {
        assert!(bx < self.blocks_x() && by < self.blocks_y(), "block OOB");
        for row in 0..8 {
            let base = (by * 8 + row) * self.width + bx * 8;
            for col in 0..8 {
                out[row * 8 + col] = i32::from(self.pixels[base + col]);
            }
        }
    }

    /// Writes an 8×8 block (clamping to `0..=255`) at `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    pub fn write_block(&mut self, bx: usize, by: usize, block: &[i32; 64]) {
        assert!(bx < self.blocks_x() && by < self.blocks_y(), "block OOB");
        for row in 0..8 {
            let base = (by * 8 + row) * self.width + bx * 8;
            for col in 0..8 {
                self.pixels[base + col] = block[row * 8 + col].clamp(0, 255) as u8;
            }
        }
    }
}

/// Peak signal-to-noise ratio between two frames, in dB.
///
/// Returns `f64::INFINITY` for identical frames.
///
/// # Panics
///
/// Panics if the frames' dimensions differ.
pub fn psnr(a: &RawFrame, b: &RawFrame) -> f64 {
    assert_eq!(
        (a.width, a.height),
        (b.width, b.height),
        "psnr: dimension mismatch"
    );
    let mse: f64 = a
        .pixels
        .iter()
        .zip(&b.pixels)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.pixels.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// A deterministic synthetic video source.
///
/// # Examples
///
/// ```
/// use hydra_media::frame::SyntheticVideo;
///
/// let video = SyntheticVideo::new(64, 32);
/// let f0 = video.frame(0);
/// let f1 = video.frame(1);
/// assert_ne!(f0, f1); // motion
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SyntheticVideo {
    width: usize,
    height: usize,
}

impl SyntheticVideo {
    /// Creates a source with the given frame geometry.
    pub fn new(width: usize, height: usize) -> Self {
        // Validate via RawFrame's constructor rules.
        let _ = RawFrame::filled(width, height, 0);
        SyntheticVideo { width, height }
    }

    /// Renders frame `index`: gradient background plus two moving discs.
    pub fn frame(&self, index: u64) -> RawFrame {
        let w = self.width as i64;
        let h = self.height as i64;
        let mut pixels = Vec::with_capacity(self.width * self.height);
        // Disc centres orbit the frame.
        let t = index as f64 * 0.12;
        let cx1 = (w as f64 / 2.0 + (w as f64 / 3.0) * t.cos()) as i64;
        let cy1 = (h as f64 / 2.0 + (h as f64 / 3.0) * t.sin()) as i64;
        let cx2 = (w as f64 / 2.0 + (w as f64 / 4.0) * (1.7 * t).sin()) as i64;
        let cy2 = (h as f64 / 2.0 + (h as f64 / 4.0) * (1.3 * t).cos()) as i64;
        let r1 = (w.min(h) / 6).max(2);
        let r2 = (w.min(h) / 8).max(2);
        for y in 0..h {
            for x in 0..w {
                // Smooth background gradient, slowly drifting.
                let bg = (x * 192) / w + (y * 40) / h + (index % 16) as i64;
                let mut v = bg.clamp(0, 255);
                let d1 = (x - cx1).pow(2) + (y - cy1).pow(2);
                if d1 <= r1 * r1 {
                    v = 230;
                }
                let d2 = (x - cx2).pow(2) + (y - cy2).pow(2);
                if d2 <= r2 * r2 {
                    v = 30;
                }
                pixels.push(v as u8);
            }
        }
        RawFrame::from_pixels(self.width, self.height, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut f = RawFrame::filled(16, 8, 0);
        f.set(15, 7, 200);
        assert_eq!(f.get(15, 7), 200);
        assert_eq!(f.get(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn odd_dimensions_rejected() {
        RawFrame::filled(10, 8, 0);
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn wrong_pixel_count_rejected() {
        RawFrame::from_pixels(8, 8, vec![0; 63]);
    }

    #[test]
    fn block_io_round_trip() {
        let video = SyntheticVideo::new(32, 16);
        let f = video.frame(3);
        let mut copy = RawFrame::filled(32, 16, 0);
        let mut block = [0i32; 64];
        for by in 0..f.blocks_y() {
            for bx in 0..f.blocks_x() {
                f.read_block(bx, by, &mut block);
                copy.write_block(bx, by, &block);
            }
        }
        assert_eq!(f, copy);
        assert_eq!(f.block_count(), 8);
    }

    #[test]
    fn write_block_clamps() {
        let mut f = RawFrame::filled(8, 8, 0);
        let mut block = [300i32; 64];
        block[0] = -5;
        f.write_block(0, 0, &block);
        assert_eq!(f.get(0, 0), 0);
        assert_eq!(f.get(1, 0), 255);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let f = SyntheticVideo::new(16, 16).frame(0);
        assert_eq!(psnr(&f, &f), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let f = SyntheticVideo::new(16, 16).frame(0);
        let mut slightly = f.clone();
        slightly.set(0, 0, f.get(0, 0).wrapping_add(10));
        let mut very = f.clone();
        for x in 0..16 {
            for y in 0..16 {
                very.set(x, y, f.get(x, y).wrapping_add(60));
            }
        }
        assert!(psnr(&f, &slightly) > psnr(&f, &very));
    }

    #[test]
    fn synthetic_video_is_deterministic_and_moving() {
        let v = SyntheticVideo::new(32, 32);
        assert_eq!(v.frame(5), v.frame(5));
        assert_ne!(v.frame(5), v.frame(6));
    }

    #[test]
    fn consecutive_frames_are_similar() {
        // Temporal coherence: P-frame compression relies on this.
        let v = SyntheticVideo::new(64, 64);
        let a = v.frame(10);
        let b = v.frame(11);
        let far = v.frame(40);
        assert!(psnr(&a, &b) > psnr(&a, &far));
    }
}
