//! The 8×8 integer block transform and quantization.
//!
//! Real MPEG uses the floating-point DCT; like H.264's integer transform we
//! substitute an exactly invertible integer transform — a 2-D Walsh–
//! Hadamard transform (WHT) — so that at quantizer step 1 the codec is
//! mathematically lossless, a property the round-trip tests rely on. The
//! WHT shares the DCT's essential behaviour on smooth content: energy
//! compacts into the low-order coefficients, which the zigzag scan then
//! groups for run-length coding.

/// Forward 1-D WHT on 8 elements: the classic in-place butterfly network.
/// Unnormalized — applying it twice yields the input scaled by 8, which is
/// what makes the forward/inverse pair exact in integer arithmetic.
fn wht8(v: &mut [i32; 8]) {
    let mut stride = 1;
    while stride < 8 {
        let mut base = 0;
        while base < 8 {
            for off in 0..stride {
                let a = v[base + off];
                let b = v[base + stride + off];
                v[base + off] = a + b;
                v[base + stride + off] = a - b;
            }
            base += 2 * stride;
        }
        stride *= 2;
    }
}

/// Inverse 1-D WHT: the Hadamard matrix is its own inverse up to the gain
/// of 8, which [`inverse`] divides out after both dimensions.
fn iwht8(v: &mut [i32; 8]) {
    wht8(v);
}

/// Forward 2-D transform of an 8×8 block, in place.
///
/// Output coefficients carry a gain of 64 relative to the input.
pub fn forward(block: &mut [i32; 64]) {
    let mut tmp = [0i32; 8];
    for row in 0..8 {
        tmp.copy_from_slice(&block[row * 8..row * 8 + 8]);
        wht8(&mut tmp);
        block[row * 8..row * 8 + 8].copy_from_slice(&tmp);
    }
    for col in 0..8 {
        for (i, t) in tmp.iter_mut().enumerate() {
            *t = block[i * 8 + col];
        }
        wht8(&mut tmp);
        for (i, t) in tmp.iter().enumerate() {
            block[i * 8 + col] = *t;
        }
    }
}

/// Inverse 2-D transform, in place, undoing [`forward`] exactly
/// (including the gain of 64).
pub fn inverse(block: &mut [i32; 64]) {
    let mut tmp = [0i32; 8];
    for row in 0..8 {
        tmp.copy_from_slice(&block[row * 8..row * 8 + 8]);
        iwht8(&mut tmp);
        block[row * 8..row * 8 + 8].copy_from_slice(&tmp);
    }
    for col in 0..8 {
        for (i, t) in tmp.iter_mut().enumerate() {
            *t = block[i * 8 + col];
        }
        iwht8(&mut tmp);
        for (i, t) in tmp.iter().enumerate() {
            block[i * 8 + col] = *t;
        }
    }
    for c in block.iter_mut() {
        // The 2-D forward+inverse pair carries a gain of 64. For exact
        // forward outputs (q = 1) the division is exact; for dequantized
        // coefficients round to nearest to avoid truncation bias.
        *c = (*c + 32).div_euclid(64);
    }
}

/// The zigzag scan order for an 8×8 block (row, col diagonal traversal),
/// grouping low-frequency coefficients first.
pub const ZIGZAG: [usize; 64] = build_zigzag();

const fn build_zigzag() -> [usize; 64] {
    let mut order = [0usize; 64];
    let mut idx = 0;
    let mut d = 0;
    while d < 15 {
        // Traverse each anti-diagonal, alternating direction.
        if d % 2 == 0 {
            // Up-right.
            let mut row = if d < 8 { d } else { 7 };
            loop {
                let col = d - row;
                if col > 7 {
                    break;
                }
                order[idx] = row * 8 + col;
                idx += 1;
                if row == 0 {
                    break;
                }
                row -= 1;
            }
        } else {
            // Down-left.
            let mut col = if d < 8 { d } else { 7 };
            loop {
                let row = d - col;
                if row > 7 {
                    break;
                }
                order[idx] = row * 8 + col;
                idx += 1;
                if col == 0 {
                    break;
                }
                col -= 1;
            }
        }
        d += 1;
    }
    order[63] = 63;
    order
}

/// Quantizes transform coefficients in place: symmetric division by `q`
/// with rounding toward nearest.
///
/// # Panics
///
/// Panics if `q` is zero.
pub fn quantize(block: &mut [i32; 64], q: u16) {
    assert!(q > 0, "quantizer step must be positive");
    let q = i32::from(q);
    for c in block.iter_mut() {
        let sign = if *c < 0 { -1 } else { 1 };
        *c = sign * ((c.abs() + q / 2) / q);
    }
}

/// Reverses [`quantize`]: multiplies by `q`.
pub fn dequantize(block: &mut [i32; 64], q: u16) {
    let q = i32::from(q);
    for c in block.iter_mut() {
        *c *= q;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_pair_is_identity() {
        let mut block = [0i32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as i32 * 7) % 256 - 100;
        }
        let original = block;
        forward(&mut block);
        inverse(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn dc_of_constant_block_dominates() {
        let mut block = [100i32; 64];
        forward(&mut block);
        assert_eq!(block[0], 100 * 64);
        assert!(block[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn smooth_block_compacts_energy() {
        let mut block = [0i32; 64];
        for row in 0..8 {
            for col in 0..8 {
                block[row * 8 + col] = (row * 4 + col * 8) as i32;
            }
        }
        forward(&mut block);
        // Count significant coefficients: a smooth gradient needs few.
        let nonzero = block.iter().filter(|&&c| c.abs() > 32).count();
        assert!(
            nonzero <= 8,
            "gradient produced {nonzero} large coefficients"
        );
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // First few entries follow the classic pattern.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn quantize_dequantize_is_lossless_at_q1() {
        let mut block = [0i32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = i as i32 * 13 - 400;
        }
        let original = block;
        quantize(&mut block, 1);
        dequantize(&mut block, 1);
        assert_eq!(block, original);
    }

    #[test]
    fn quantize_error_bounded_by_half_step() {
        let mut block = [0i32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as i32 * 37) % 1000 - 500;
        }
        let original = block;
        quantize(&mut block, 16);
        dequantize(&mut block, 16);
        for (a, b) in original.iter().zip(&block) {
            assert!((a - b).abs() <= 8, "error {} exceeds q/2", (a - b).abs());
        }
    }

    #[test]
    fn quantize_is_symmetric_in_sign() {
        let mut pos = [7i32; 64];
        let mut neg = [-7i32; 64];
        quantize(&mut pos, 5);
        quantize(&mut neg, 5);
        for (p, n) in pos.iter().zip(&neg) {
            assert_eq!(*p, -n);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantizer_panics() {
        quantize(&mut [0i32; 64], 0);
    }
}
