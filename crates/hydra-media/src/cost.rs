//! Decode/encode cost models.
//!
//! The simulator needs to know *how many cycles* decoding a frame costs on
//! a given processor. [`DecodeCostModel`] charges per frame, per block,
//! per coded block and per non-zero coefficient, with a multiplier per
//! frame kind (B frames do bidirectional prediction). The GPU's dedicated
//! MPEG hardware is the same model scaled down by a large constant — the
//! "specialized capabilities that exist only at a peripheral device" the
//! paper's §6.2 invokes for placing the Decoder Offcode on the GPU.

use crate::codec::{EncodedFrame, FrameKind};

/// Cycle-cost model for decoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeCostModel {
    /// Fixed cycles per frame (header parsing, buffer management).
    pub per_frame: u64,
    /// Cycles per block in the frame (prediction, reconstruction writes).
    pub per_block: u64,
    /// Extra cycles per coded (non-skipped) block (inverse transform).
    pub per_coded_block: u64,
    /// Cycles per non-zero coefficient (entropy decode).
    pub per_coeff: u64,
    /// Multiplier applied to B frames (two references to fetch and blend).
    pub b_factor_percent: u64,
}

impl DecodeCostModel {
    /// Software decoding on a host CPU.
    pub fn software() -> Self {
        DecodeCostModel {
            per_frame: 20_000,
            per_block: 450,
            per_coded_block: 1_400,
            per_coeff: 60,
            b_factor_percent: 130,
        }
    }

    /// Hardware-assisted decoding (a GPU's MPEG engine): ~25× cheaper.
    pub fn gpu_hardware() -> Self {
        DecodeCostModel {
            per_frame: 2_000,
            per_block: 18,
            per_coded_block: 55,
            per_coeff: 2,
            b_factor_percent: 110,
        }
    }

    /// Cycles to decode one frame under this model.
    pub fn cycles(&self, frame: &EncodedFrame) -> u64 {
        let base = self.per_frame
            + self.per_block * u64::from(frame.total_blocks())
            + self.per_coded_block * u64::from(frame.coded_blocks)
            + self.per_coeff * u64::from(frame.nonzero_coeffs);
        match frame.kind {
            FrameKind::B => base * self.b_factor_percent / 100,
            _ => base,
        }
    }
}

/// Cycle-cost model for network protocol processing (per packet + per
/// byte): the basis of the paper's Figure 1 GHz/Gbps argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketCostModel {
    /// Cycles per packet regardless of size (syscall, interrupt, protocol
    /// headers, socket bookkeeping).
    pub per_packet: u64,
    /// Cycles per payload byte (copies and checksums).
    pub per_byte: u64,
}

impl PacketCostModel {
    /// Host-side transmit path (one copy into kernel buffers + checksum).
    pub fn host_transmit() -> Self {
        PacketCostModel {
            per_packet: 9_000,
            per_byte: 2,
        }
    }

    /// Host-side receive path: more expensive than transmit — the kernel
    /// takes an interrupt, cannot steer data, and copies to user space
    /// (Foong et al.'s observation that receive dominates).
    pub fn host_receive() -> Self {
        PacketCostModel {
            per_packet: 14_000,
            per_byte: 4,
        }
    }

    /// Cycles to process one packet of `bytes` payload.
    pub fn cycles(&self, bytes: usize) -> u64 {
        self.per_packet + self.per_byte * bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecConfig, Encoder, GopConfig};
    use crate::frame::SyntheticVideo;

    fn frames() -> Vec<EncodedFrame> {
        let video = SyntheticVideo::new(48, 32);
        let raw: Vec<_> = (0..7).map(|i| video.frame(i)).collect();
        Encoder::new(CodecConfig {
            quantizer: 4,
            gop: GopConfig::ibbp(),
        })
        .encode_sequence(&raw)
    }

    #[test]
    fn i_frames_cost_more_than_p_frames() {
        let fs = frames();
        let model = DecodeCostModel::software();
        let i_cost = model.cycles(&fs[0]);
        let p = fs.iter().find(|f| f.kind == FrameKind::P).unwrap();
        assert!(model.cycles(p) < i_cost);
    }

    #[test]
    fn gpu_hardware_is_order_of_magnitude_cheaper() {
        let fs = frames();
        let sw = DecodeCostModel::software();
        let hw = DecodeCostModel::gpu_hardware();
        let total_sw: u64 = fs.iter().map(|f| sw.cycles(f)).sum();
        let total_hw: u64 = fs.iter().map(|f| hw.cycles(f)).sum();
        assert!(total_sw > 10 * total_hw, "sw {total_sw} hw {total_hw}");
    }

    #[test]
    fn b_factor_applies() {
        let fs = frames();
        let b = fs.iter().find(|f| f.kind == FrameKind::B).unwrap();
        let mut flat = DecodeCostModel::software();
        flat.b_factor_percent = 100;
        let mut boosted = flat;
        boosted.b_factor_percent = 200;
        assert_eq!(boosted.cycles(b), 2 * flat.cycles(b));
    }

    #[test]
    fn packet_cost_amortizes_with_size() {
        let m = PacketCostModel::host_receive();
        let small = m.cycles(64) as f64 / 64.0;
        let large = m.cycles(64 * 1024) as f64 / (64.0 * 1024.0);
        assert!(
            small > 10.0 * large,
            "per-byte cost should collapse for large packets"
        );
    }

    #[test]
    fn receive_costs_more_than_transmit() {
        for size in [64usize, 1024, 16 * 1024] {
            assert!(
                PacketCostModel::host_receive().cycles(size)
                    > PacketCostModel::host_transmit().cycles(size)
            );
        }
    }
}
