//! The I/P/B frame codec.
//!
//! A miniature MPEG: the encoder produces a group-of-pictures stream with
//! intra (I) frames, forward-predicted (P) frames coded as residuals
//! against the previous anchor, and bidirectional (B) frames coded against
//! the average of the surrounding anchors. Frames are emitted in *decode
//! order* (anchors before the B frames that reference them), exactly like
//! a real transport stream, and the [`Decoder`] reorders back to display
//! order.
//!
//! With quantizer step 1 the codec is lossless end to end (the integer
//! transform is exact), which gives the test suite a strong round-trip
//! invariant; larger quantizers trade PSNR for bitrate like the real thing.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::entropy::{decode_block, encode_block, EntropyError};
use crate::frame::RawFrame;
use crate::transform::{dequantize, forward, inverse, quantize};

/// Frame type within the GOP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Intra-coded: self-contained.
    I,
    /// Predicted from the previous anchor (I or P).
    P,
    /// Bidirectionally predicted from the surrounding anchors.
    B,
}

/// One compressed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Frame type.
    pub kind: FrameKind,
    /// Position in display order.
    pub display_index: u64,
    /// Frame width in pixels.
    pub width: u16,
    /// Frame height in pixels.
    pub height: u16,
    /// Quantizer step used.
    pub quantizer: u16,
    /// Entropy-coded block data.
    pub data: Bytes,
    /// Blocks actually coded (not skipped).
    pub coded_blocks: u32,
    /// Non-zero coefficients across coded blocks (decode-cost driver).
    pub nonzero_coeffs: u32,
}

impl EncodedFrame {
    /// Compressed size in bytes (payload only).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total 8×8 blocks in the frame.
    pub fn total_blocks(&self) -> u32 {
        (u32::from(self.width) / 8) * (u32::from(self.height) / 8)
    }
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Bitstream corruption.
    Entropy(EntropyError),
    /// A P or B frame arrived without the anchors it references.
    MissingReference,
    /// Frame geometry changed mid-stream.
    GeometryMismatch,
    /// Extra bytes after the last block.
    TrailingData,
}

impl From<EntropyError> for CodecError {
    fn from(e: EntropyError) -> Self {
        CodecError::Entropy(e)
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Entropy(e) => write!(f, "bitstream error: {e}"),
            CodecError::MissingReference => f.write_str("reference frame missing"),
            CodecError::GeometryMismatch => f.write_str("frame geometry changed mid-stream"),
            CodecError::TrailingData => f.write_str("trailing bytes after last block"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Group-of-pictures structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GopConfig {
    /// Distance between anchors (1 = every frame is an anchor).
    /// With `anchor_every = 3`, display order is `I B B P B B P…`.
    pub anchor_every: usize,
    /// Anchors per I frame (how many anchors before a new I).
    pub anchors_per_i: usize,
}

impl GopConfig {
    /// An IPPP… stream: no B frames, I frame every 12.
    pub fn ipp() -> Self {
        GopConfig {
            anchor_every: 1,
            anchors_per_i: 12,
        }
    }

    /// The classic IBBP pattern with an I frame every 4 anchors
    /// (display GOP of 12).
    pub fn ibbp() -> Self {
        GopConfig {
            anchor_every: 3,
            anchors_per_i: 4,
        }
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Quantizer step; 1 is lossless.
    pub quantizer: u16,
    /// GOP structure.
    pub gop: GopConfig,
}

impl Default for CodecConfig {
    fn default() -> Self {
        CodecConfig {
            quantizer: 4,
            gop: GopConfig::ibbp(),
        }
    }
}

fn encode_intra_frame(frame: &RawFrame, q: u16, display_index: u64) -> (EncodedFrame, RawFrame) {
    let mut buf = BytesMut::new();
    let mut recon = RawFrame::filled(frame.width(), frame.height(), 0);
    let mut block = [0i32; 64];
    let mut nonzero = 0u32;
    for by in 0..frame.blocks_y() {
        for bx in 0..frame.blocks_x() {
            frame.read_block(bx, by, &mut block);
            forward(&mut block);
            quantize(&mut block, q);
            nonzero += encode_block(&mut buf, &block);
            dequantize(&mut block, q);
            inverse(&mut block);
            recon.write_block(bx, by, &block);
        }
    }
    let coded = frame.block_count() as u32;
    (
        EncodedFrame {
            kind: FrameKind::I,
            display_index,
            width: frame.width() as u16,
            height: frame.height() as u16,
            quantizer: q,
            data: buf.freeze(),
            coded_blocks: coded,
            nonzero_coeffs: nonzero,
        },
        recon,
    )
}

/// Encodes a predicted frame against `predictor` (P: previous anchor;
/// B: anchor average). Returns the frame and its reconstruction.
fn encode_predicted_frame(
    kind: FrameKind,
    frame: &RawFrame,
    predictor: &RawFrame,
    q: u16,
    display_index: u64,
) -> (EncodedFrame, RawFrame) {
    let mut buf = BytesMut::new();
    let mut recon = RawFrame::filled(frame.width(), frame.height(), 0);
    let mut cur = [0i32; 64];
    let mut pred = [0i32; 64];
    let mut nonzero = 0u32;
    let mut coded = 0u32;
    for by in 0..frame.blocks_y() {
        for bx in 0..frame.blocks_x() {
            frame.read_block(bx, by, &mut cur);
            predictor.read_block(bx, by, &mut pred);
            let mut residual = [0i32; 64];
            let mut all_zero = true;
            for i in 0..64 {
                residual[i] = cur[i] - pred[i];
                all_zero &= residual[i] == 0;
            }
            if all_zero {
                buf.put_u8(0); // skip flag
                recon.write_block(bx, by, &pred);
                continue;
            }
            buf.put_u8(1);
            forward(&mut residual);
            quantize(&mut residual, q);
            nonzero += encode_block(&mut buf, &residual);
            coded += 1;
            dequantize(&mut residual, q);
            inverse(&mut residual);
            let mut rec = [0i32; 64];
            for i in 0..64 {
                rec[i] = pred[i] + residual[i];
            }
            recon.write_block(bx, by, &rec);
        }
    }
    (
        EncodedFrame {
            kind,
            display_index,
            width: frame.width() as u16,
            height: frame.height() as u16,
            quantizer: q,
            data: buf.freeze(),
            coded_blocks: coded,
            nonzero_coeffs: nonzero,
        },
        recon,
    )
}

fn average_frames(a: &RawFrame, b: &RawFrame) -> RawFrame {
    let pixels = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| (u16::from(x) + u16::from(y)).div_ceil(2) as u8)
        .collect();
    RawFrame::from_pixels(a.width(), a.height(), pixels)
}

/// The encoder: turns a display-order frame sequence into a decode-order
/// [`EncodedFrame`] stream.
///
/// # Examples
///
/// ```
/// use hydra_media::codec::{CodecConfig, Decoder, Encoder, GopConfig};
/// use hydra_media::frame::SyntheticVideo;
///
/// let video = SyntheticVideo::new(32, 32);
/// let frames: Vec<_> = (0..6).map(|i| video.frame(i)).collect();
/// let cfg = CodecConfig { quantizer: 1, gop: GopConfig::ibbp() };
/// let stream = Encoder::new(cfg).encode_sequence(&frames);
///
/// let mut decoder = Decoder::new();
/// let mut out = Vec::new();
/// for f in &stream {
///     out.extend(decoder.push(f).unwrap());
/// }
/// out.extend(decoder.flush());
/// assert_eq!(out.len(), 6);
/// assert_eq!(out[0].1, frames[0]); // quantizer 1 => lossless
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    config: CodecConfig,
}

impl Encoder {
    /// Creates an encoder.
    pub fn new(config: CodecConfig) -> Self {
        Encoder { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CodecConfig {
        &self.config
    }

    /// Encodes a display-order sequence into decode order.
    ///
    /// The trailing partial GOP is closed by promoting the final frame to
    /// an anchor so that every B frame has both references.
    ///
    /// # Panics
    ///
    /// Panics if frames differ in geometry.
    pub fn encode_sequence(&self, frames: &[RawFrame]) -> Vec<EncodedFrame> {
        let q = self.config.quantizer;
        let step = self.config.gop.anchor_every.max(1);
        let mut out = Vec::new();
        let mut prev_anchor: Option<(usize, RawFrame)> = None; // (display idx, recon)
        let mut anchors_since_i = 0usize;

        let mut anchor_positions: Vec<usize> = (0..frames.len()).step_by(step).collect();
        if *anchor_positions.last().unwrap_or(&0) != frames.len().saturating_sub(1)
            && !frames.is_empty()
        {
            anchor_positions.push(frames.len() - 1);
        }

        for &pos in &anchor_positions {
            let frame = &frames[pos];
            if let Some((_, first)) = &prev_anchor {
                assert_eq!(
                    (first.width(), first.height()),
                    (frame.width(), frame.height()),
                    "all frames must share geometry"
                );
            }
            let is_i =
                prev_anchor.is_none() || anchors_since_i >= self.config.gop.anchors_per_i.max(1);
            let (encoded, recon) = if is_i {
                anchors_since_i = 1;
                encode_intra_frame(frame, q, pos as u64)
            } else {
                anchors_since_i += 1;
                let (_, prev) = prev_anchor.as_ref().expect("P requires an anchor");
                encode_predicted_frame(FrameKind::P, frame, prev, q, pos as u64)
            };
            out.push(encoded);
            // B frames between the previous anchor and this one, in display
            // order, follow the new anchor in decode order.
            if let Some((prev_pos, prev_recon)) = &prev_anchor {
                let avg = average_frames(prev_recon, &recon);
                for (b_pos, frame) in frames.iter().enumerate().take(pos).skip(prev_pos + 1) {
                    let (b, _) = encode_predicted_frame(FrameKind::B, frame, &avg, q, b_pos as u64);
                    out.push(b);
                }
            }
            prev_anchor = Some((pos, recon));
        }
        out
    }
}

/// The decoder: consumes decode-order frames, emits display-order frames.
#[derive(Debug, Clone, Default)]
pub struct Decoder {
    past_anchor: Option<RawFrame>,
    future_anchor: Option<(u64, RawFrame)>,
}

impl Decoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    fn decode_intra(f: &EncodedFrame) -> Result<RawFrame, CodecError> {
        let mut data = f.data.clone();
        let mut frame = RawFrame::filled(f.width as usize, f.height as usize, 0);
        let mut block = [0i32; 64];
        for by in 0..frame.blocks_y() {
            for bx in 0..frame.blocks_x() {
                decode_block(&mut data, &mut block)?;
                dequantize(&mut block, f.quantizer);
                inverse(&mut block);
                frame.write_block(bx, by, &block);
            }
        }
        if data.has_remaining() {
            return Err(CodecError::TrailingData);
        }
        Ok(frame)
    }

    fn decode_predicted(f: &EncodedFrame, predictor: &RawFrame) -> Result<RawFrame, CodecError> {
        if (predictor.width(), predictor.height()) != (f.width as usize, f.height as usize) {
            return Err(CodecError::GeometryMismatch);
        }
        let mut data = f.data.clone();
        let mut frame = RawFrame::filled(f.width as usize, f.height as usize, 0);
        let mut pred = [0i32; 64];
        let mut block = [0i32; 64];
        for by in 0..frame.blocks_y() {
            for bx in 0..frame.blocks_x() {
                predictor.read_block(bx, by, &mut pred);
                if !data.has_remaining() {
                    return Err(CodecError::Entropy(EntropyError::Truncated));
                }
                let flag = data.get_u8();
                if flag == 0 {
                    frame.write_block(bx, by, &pred);
                    continue;
                }
                decode_block(&mut data, &mut block)?;
                dequantize(&mut block, f.quantizer);
                inverse(&mut block);
                let mut rec = [0i32; 64];
                for i in 0..64 {
                    rec[i] = pred[i] + block[i];
                }
                frame.write_block(bx, by, &rec);
            }
        }
        if data.has_remaining() {
            return Err(CodecError::TrailingData);
        }
        Ok(frame)
    }

    /// Pushes one decode-order frame; returns frames that became
    /// displayable, as `(display_index, frame)` pairs in display order.
    ///
    /// # Errors
    ///
    /// Fails on bitstream corruption or missing references. The decoder
    /// state is unchanged on error, so a corrupted frame can be skipped.
    pub fn push(&mut self, f: &EncodedFrame) -> Result<Vec<(u64, RawFrame)>, CodecError> {
        match f.kind {
            FrameKind::I => {
                let recon = Self::decode_intra(f)?;
                Ok(self.install_anchor(f.display_index, recon))
            }
            FrameKind::P => {
                let Some((_, reference)) = &self.future_anchor else {
                    return Err(CodecError::MissingReference);
                };
                let recon = Self::decode_predicted(f, reference)?;
                Ok(self.install_anchor(f.display_index, recon))
            }
            FrameKind::B => {
                let (Some(past), Some((_, future))) = (&self.past_anchor, &self.future_anchor)
                else {
                    return Err(CodecError::MissingReference);
                };
                let avg = average_frames(past, future);
                let recon = Self::decode_predicted(f, &avg)?;
                Ok(vec![(f.display_index, recon)])
            }
        }
    }

    fn install_anchor(&mut self, index: u64, recon: RawFrame) -> Vec<(u64, RawFrame)> {
        let mut out = Vec::new();
        if let Some((idx, old)) = self.future_anchor.take() {
            out.push((idx, old.clone()));
            self.past_anchor = Some(old);
        }
        self.future_anchor = Some((index, recon));
        out
    }

    /// Signals end of stream, releasing the held anchor.
    pub fn flush(&mut self) -> Vec<(u64, RawFrame)> {
        self.future_anchor
            .take()
            .map(|(i, f)| vec![(i, f)])
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{psnr, SyntheticVideo};

    fn encode_decode(cfg: CodecConfig, n: u64) -> (Vec<RawFrame>, Vec<RawFrame>) {
        let video = SyntheticVideo::new(48, 32);
        let frames: Vec<_> = (0..n).map(|i| video.frame(i)).collect();
        let stream = Encoder::new(cfg).encode_sequence(&frames);
        let mut dec = Decoder::new();
        let mut out: Vec<(u64, RawFrame)> = Vec::new();
        for f in &stream {
            out.extend(dec.push(f).unwrap());
        }
        out.extend(dec.flush());
        out.sort_by_key(|(i, _)| *i);
        // Display order must be gapless 0..n.
        let indices: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, (0..n).collect::<Vec<_>>());
        (frames, out.into_iter().map(|(_, f)| f).collect())
    }

    #[test]
    fn lossless_at_q1_with_ipp() {
        let cfg = CodecConfig {
            quantizer: 1,
            gop: GopConfig::ipp(),
        };
        let (orig, decoded) = encode_decode(cfg, 10);
        assert_eq!(orig, decoded);
    }

    #[test]
    fn lossless_at_q1_with_ibbp() {
        let cfg = CodecConfig {
            quantizer: 1,
            gop: GopConfig::ibbp(),
        };
        let (orig, decoded) = encode_decode(cfg, 13);
        assert_eq!(orig, decoded);
    }

    #[test]
    fn lossy_quality_still_reasonable() {
        let cfg = CodecConfig {
            quantizer: 8,
            gop: GopConfig::ibbp(),
        };
        let (orig, decoded) = encode_decode(cfg, 9);
        for (a, b) in orig.iter().zip(&decoded) {
            let p = psnr(a, b);
            assert!(p > 30.0, "psnr {p} too low");
        }
    }

    #[test]
    fn higher_quantizer_means_smaller_stream() {
        let video = SyntheticVideo::new(48, 32);
        let frames: Vec<_> = (0..9).map(|i| video.frame(i)).collect();
        let size = |q: u16| -> usize {
            Encoder::new(CodecConfig {
                quantizer: q,
                gop: GopConfig::ipp(),
            })
            .encode_sequence(&frames)
            .iter()
            .map(|f| f.size_bytes())
            .sum()
        };
        assert!(size(16) < size(4));
        assert!(size(4) < size(1));
    }

    #[test]
    fn p_frames_smaller_than_i_frames() {
        let video = SyntheticVideo::new(48, 32);
        let frames: Vec<_> = (0..6).map(|i| video.frame(i)).collect();
        let stream = Encoder::new(CodecConfig {
            quantizer: 4,
            gop: GopConfig::ipp(),
        })
        .encode_sequence(&frames);
        assert_eq!(stream[0].kind, FrameKind::I);
        let i_size = stream[0].size_bytes();
        for p in &stream[1..] {
            assert_eq!(p.kind, FrameKind::P);
            assert!(p.size_bytes() < i_size, "P not smaller than I");
        }
    }

    #[test]
    fn gop_pattern_matches_config() {
        let video = SyntheticVideo::new(32, 32);
        let frames: Vec<_> = (0..13).map(|i| video.frame(i)).collect();
        let stream = Encoder::new(CodecConfig {
            quantizer: 4,
            gop: GopConfig {
                anchor_every: 3,
                anchors_per_i: 2,
            },
        })
        .encode_sequence(&frames);
        let kinds: Vec<FrameKind> = stream.iter().map(|f| f.kind).collect();
        // Decode order: I0, P3, B1, B2, I6, B4, B5, P9, B7, B8, I12, B10, B11
        assert_eq!(kinds[0], FrameKind::I);
        assert_eq!(kinds[1], FrameKind::P);
        assert_eq!(kinds[2], FrameKind::B);
        assert_eq!(kinds[4], FrameKind::I); // anchors_per_i = 2
    }

    #[test]
    fn decoder_rejects_p_without_reference() {
        let video = SyntheticVideo::new(32, 32);
        let frames: Vec<_> = (0..4).map(|i| video.frame(i)).collect();
        let stream = Encoder::new(CodecConfig {
            quantizer: 4,
            gop: GopConfig::ipp(),
        })
        .encode_sequence(&frames);
        let mut dec = Decoder::new();
        // Skip the I frame; feed the first P directly.
        assert_eq!(dec.push(&stream[1]), Err(CodecError::MissingReference));
    }

    #[test]
    fn decoder_rejects_truncated_data() {
        let video = SyntheticVideo::new(32, 32);
        let stream = Encoder::new(CodecConfig {
            quantizer: 4,
            gop: GopConfig::ipp(),
        })
        .encode_sequence(&[video.frame(0)]);
        let mut broken = stream[0].clone();
        broken.data = broken.data.slice(0..broken.data.len() / 2);
        let mut dec = Decoder::new();
        assert!(matches!(dec.push(&broken), Err(CodecError::Entropy(_))));
    }

    #[test]
    fn decoder_rejects_trailing_garbage() {
        let video = SyntheticVideo::new(32, 32);
        let stream = Encoder::new(CodecConfig {
            quantizer: 4,
            gop: GopConfig::ipp(),
        })
        .encode_sequence(&[video.frame(0)]);
        let mut broken = stream[0].clone();
        let mut data = broken.data.to_vec();
        data.push(0);
        broken.data = Bytes::from(data);
        let mut dec = Decoder::new();
        assert_eq!(dec.push(&broken), Err(CodecError::TrailingData));
    }

    #[test]
    fn static_scene_p_frames_are_all_skip() {
        let frame = SyntheticVideo::new(32, 32).frame(0);
        let frames = vec![frame.clone(), frame.clone(), frame];
        let stream = Encoder::new(CodecConfig {
            quantizer: 1,
            gop: GopConfig::ipp(),
        })
        .encode_sequence(&frames);
        for p in &stream[1..] {
            assert_eq!(p.coded_blocks, 0);
            assert_eq!(p.nonzero_coeffs, 0);
            // Just skip flags: one byte per block.
            assert_eq!(p.size_bytes(), p.total_blocks() as usize);
        }
    }

    #[test]
    fn empty_sequence_is_empty_stream() {
        let stream = Encoder::new(CodecConfig::default()).encode_sequence(&[]);
        assert!(stream.is_empty());
    }

    #[test]
    fn single_frame_stream() {
        let video = SyntheticVideo::new(32, 32);
        let frames = vec![video.frame(0)];
        let stream = Encoder::new(CodecConfig::default()).encode_sequence(&frames);
        assert_eq!(stream.len(), 1);
        assert_eq!(stream[0].kind, FrameKind::I);
    }
}
