//! Entropy coding: zigzag scan + (run, level) RLE + signed varints.
//!
//! Quantized transform blocks are mostly zeros; we scan them in zigzag
//! order, emit `(zero-run, level)` pairs as varints, and terminate with an
//! end-of-block marker — the same scheme (minus Huffman tables) real MPEG
//! uses.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::transform::ZIGZAG;

/// Errors produced when decoding a corrupt bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntropyError {
    /// Input ended inside a symbol.
    Truncated,
    /// A run/index exceeded the block size.
    RunOverflow,
    /// A varint was longer than the maximum width.
    Malformed,
}

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EntropyError::Truncated => "bitstream truncated",
            EntropyError::RunOverflow => "zero run exceeds block size",
            EntropyError::Malformed => "malformed varint",
        };
        f.write_str(s)
    }
}

impl std::error::Error for EntropyError {}

/// Writes an unsigned LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint.
///
/// # Errors
///
/// Fails on truncation or a varint wider than 64 bits.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, EntropyError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(EntropyError::Truncated);
        }
        if shift >= 64 {
            return Err(EntropyError::Malformed);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag-maps a signed value to unsigned (0, -1, 1, -2, 2 → 0, 1, 2, 3, 4).
pub fn zz_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zz_encode`].
pub fn zz_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a quantized 8×8 block into `buf`. Returns the number of
/// non-zero coefficients (which the decode-cost model charges for).
pub fn encode_block(buf: &mut BytesMut, block: &[i32; 64]) -> u32 {
    let mut run = 0u32;
    let mut nonzero = 0u32;
    for &idx in &ZIGZAG {
        let c = block[idx];
        if c == 0 {
            run += 1;
        } else {
            put_varint(buf, u64::from(run));
            put_varint(buf, zz_encode(i64::from(c)));
            run = 0;
            nonzero += 1;
        }
    }
    // End of block: a run that reaches past the last coefficient.
    put_varint(buf, 64);
    nonzero
}

/// Decodes one 8×8 block from `buf` into `block`.
///
/// # Errors
///
/// Fails on truncated input or runs past the end of the block.
pub fn decode_block(buf: &mut Bytes, block: &mut [i32; 64]) -> Result<(), EntropyError> {
    block.fill(0);
    let mut pos = 0usize;
    loop {
        let run = get_varint(buf)?;
        if run >= 64 {
            if run == 64 {
                return Ok(());
            }
            return Err(EntropyError::RunOverflow);
        }
        pos += run as usize;
        if pos >= 64 {
            return Err(EntropyError::RunOverflow);
        }
        let level = zz_decode(get_varint(buf)?);
        block[ZIGZAG[pos]] = level as i32;
        pos += 1;
        if pos == 64 {
            // Block exactly full; expect the terminator.
            let term = get_varint(buf)?;
            if term != 64 {
                return Err(EntropyError::RunOverflow);
            }
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, 16_384, u64::MAX];
        for &v in &values {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn varint_truncation_detected() {
        let mut bytes = Bytes::from_static(&[0x80, 0x80]);
        assert_eq!(get_varint(&mut bytes), Err(EntropyError::Truncated));
    }

    #[test]
    fn varint_overwide_detected() {
        let mut bytes = Bytes::from(vec![0x80u8; 11]);
        assert_eq!(get_varint(&mut bytes), Err(EntropyError::Malformed));
    }

    #[test]
    fn zigzag_mapping_round_trip() {
        for v in [-1_000_000i64, -2, -1, 0, 1, 2, 1_000_000] {
            assert_eq!(zz_decode(zz_encode(v)), v);
        }
        assert_eq!(zz_encode(0), 0);
        assert_eq!(zz_encode(-1), 1);
        assert_eq!(zz_encode(1), 2);
    }

    #[test]
    fn block_round_trip_sparse() {
        let mut block = [0i32; 64];
        block[0] = 500;
        block[9] = -3;
        block[63] = 7;
        let mut buf = BytesMut::new();
        let nz = encode_block(&mut buf, &block);
        assert_eq!(nz, 3);
        let mut decoded = [99i32; 64];
        decode_block(&mut buf.freeze(), &mut decoded).unwrap();
        assert_eq!(decoded, block);
    }

    #[test]
    fn block_round_trip_dense() {
        let mut block = [0i32; 64];
        for (i, c) in block.iter_mut().enumerate() {
            *c = i as i32 - 32;
        }
        let mut buf = BytesMut::new();
        encode_block(&mut buf, &block);
        let mut decoded = [0i32; 64];
        decode_block(&mut buf.freeze(), &mut decoded).unwrap();
        assert_eq!(decoded, block);
    }

    #[test]
    fn all_zero_block_is_tiny() {
        let block = [0i32; 64];
        let mut buf = BytesMut::new();
        let nz = encode_block(&mut buf, &block);
        assert_eq!(nz, 0);
        assert_eq!(buf.len(), 1); // just the EOB marker
        let mut decoded = [5i32; 64];
        decode_block(&mut buf.freeze(), &mut decoded).unwrap();
        assert_eq!(decoded, [0i32; 64]);
    }

    #[test]
    fn sparse_blocks_compress_better_than_dense() {
        let sparse = {
            let mut b = [0i32; 64];
            b[0] = 100;
            b
        };
        let dense = [17i32; 64];
        let mut sbuf = BytesMut::new();
        let mut dbuf = BytesMut::new();
        encode_block(&mut sbuf, &sparse);
        encode_block(&mut dbuf, &dense);
        assert!(sbuf.len() < dbuf.len() / 4);
    }

    #[test]
    fn decoder_rejects_corrupt_run() {
        // run=70 is past the block but not the EOB value.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 70);
        assert_eq!(
            decode_block(&mut buf.freeze(), &mut [0i32; 64]),
            Err(EntropyError::RunOverflow)
        );
    }

    #[test]
    fn decoder_rejects_truncated_level() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 0); // run
                                 // level missing
        assert_eq!(
            decode_block(&mut buf.freeze(), &mut [0i32; 64]),
            Err(EntropyError::Truncated)
        );
    }

    #[test]
    fn multiple_blocks_stream() {
        let b1 = {
            let mut b = [0i32; 64];
            b[5] = 9;
            b
        };
        let b2 = {
            let mut b = [0i32; 64];
            b[50] = -4;
            b
        };
        let mut buf = BytesMut::new();
        encode_block(&mut buf, &b1);
        encode_block(&mut buf, &b2);
        let mut bytes = buf.freeze();
        let mut out = [0i32; 64];
        decode_block(&mut bytes, &mut out).unwrap();
        assert_eq!(out, b1);
        decode_block(&mut bytes, &mut out).unwrap();
        assert_eq!(out, b2);
        assert!(!bytes.has_remaining());
    }
}
