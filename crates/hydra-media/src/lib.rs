//! # hydra-media — toy MPEG codec
//!
//! A miniature but genuine MPEG-style video codec: 8×8 integer block
//! transform with quantization ([`transform`]), zigzag + RLE + varint
//! entropy coding ([`entropy`]), an I/P/B group-of-pictures encoder and
//! reordering decoder ([`codec`]), frame packetization for lossy transport
//! ([`stream`]), synthetic deterministic video content ([`frame`]), and
//! cycle-cost models for software vs. GPU-hardware decoding ([`cost`]).
//!
//! The paper's TiVoPC decodes an MPEG stream; its Decoder Offcode prefers
//! the GPU because "the GPU may have specialized MPEG support on board".
//! This crate gives the reproduction a real codec pipeline to offload,
//! with a measurable decode cost on every processor class.
//!
//! The codec is exactly lossless at quantizer step 1 (the integer
//! transform inverts exactly), a property the round-trip tests exploit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod cost;
pub mod entropy;
pub mod frame;
pub mod stream;
pub mod transform;

pub use codec::{CodecConfig, CodecError, Decoder, EncodedFrame, Encoder, FrameKind, GopConfig};
pub use cost::{DecodeCostModel, PacketCostModel};
pub use frame::{psnr, RawFrame, SyntheticVideo};
pub use stream::{Chunk, Chunker, FrameWire, Reassembler, StreamError};
