//! Branch-and-bound integer programming on top of the simplex.
//!
//! Solves the 0/1 (or general-integer) [`Problem`] exactly: solve the LP
//! relaxation, branch on the most fractional integer variable, prune by
//! bound against the incumbent. Layout graphs from §5 translate into a few
//! dozen binaries, well within reach of exact search.

use crate::model::{Direction, Outcome, Problem, Solution, VarId};
use crate::simplex::solve_lp;

const INT_TOL: f64 = 1e-6;

/// Statistics from one branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// LP relaxations solved (nodes visited).
    pub nodes: u64,
    /// Nodes pruned by bound.
    pub pruned: u64,
    /// True when the answer was proven without a search: an infeasibility
    /// pre-check (see `hydra-verify`) established the only feasible
    /// placement before any LP relaxation ran, so `nodes == 0`.
    pub presolved: bool,
    /// Decision variables (placement nodes) re-solved by an incremental
    /// repair instead of a from-scratch search; zero on a full solve.
    pub repaired_nodes: u64,
    /// Warm-start hints accepted as the initial incumbent by
    /// [`solve_ilp_warm`]; zero when no (feasible) hint was supplied.
    pub warm_start_hits: u64,
}

/// Exact ILP solution plus search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpResult {
    /// The outcome.
    pub outcome: Outcome,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Solves `problem` to proven integer optimality.
///
/// # Examples
///
/// ```
/// use hydra_ilp::model::{Direction, Problem, Sense};
/// use hydra_ilp::branch::solve_ilp;
///
/// // Knapsack: max 10a + 6b + 4c  s.t.  5a + 4b + 3c <= 9, binary.
/// let mut p = Problem::new(Direction::Maximize);
/// let a = p.add_binary("a");
/// let b = p.add_binary("b");
/// let c = p.add_binary("c");
/// p.set_objective(vec![(a, 10.0), (b, 6.0), (c, 4.0)]);
/// p.add_constraint("w", vec![(a, 5.0), (b, 4.0), (c, 3.0)], Sense::Le, 9.0);
/// let r = solve_ilp(&p);
/// let sol = r.outcome.solution().unwrap();
/// assert_eq!(sol.objective, 16.0); // a + b
/// ```
pub fn solve_ilp(problem: &Problem) -> IlpResult {
    solve_ilp_warm(problem, None)
}

/// [`solve_ilp`] with an optional warm-start hint.
///
/// When `hint` is an integer-feasible point of `problem` it is installed
/// as the initial incumbent before the search begins, so branch-and-bound
/// starts with a proven lower (maximize) / upper (minimize) bound and can
/// prune every subtree that cannot beat it — the classic warm start an
/// incremental re-solve gets from the previous solution. An infeasible or
/// fractional hint is simply ignored. The result is always proven
/// optimal; only the amount of search changes.
pub fn solve_ilp_warm(problem: &Problem, hint: Option<&[f64]>) -> IlpResult {
    let mut stats = SearchStats::default();
    let maximizing = problem.direction() == Direction::Maximize;
    let mut incumbent: Option<Solution> = None;
    if let Some(values) = hint {
        let integral = values.len() == problem.num_vars()
            && problem
                .variables()
                .iter()
                .zip(values)
                .all(|(v, &x)| !v.integer || (x - x.round()).abs() <= INT_TOL);
        if integral && problem.check_feasible(values, INT_TOL).is_ok() {
            let mut values = values.to_vec();
            for (j, v) in problem.variables().iter().enumerate() {
                if v.integer {
                    values[j] = values[j].round();
                }
            }
            let objective = problem.objective_value(&values);
            incumbent = Some(Solution { values, objective });
            stats.warm_start_hits = 1;
        }
    }

    // DFS over subproblems expressed as bound tightenings.
    let mut stack: Vec<Problem> = vec![problem.clone()];
    let mut any_feasible_relaxation = false;
    let mut unbounded = false;

    while let Some(node) = stack.pop() {
        stats.nodes += 1;
        let relaxed = match solve_lp(&node) {
            Outcome::Infeasible => continue,
            Outcome::Unbounded => {
                // The relaxation being unbounded does not prove the ILP is,
                // but for the problem class here (bounded binaries) it only
                // happens when continuous vars are genuinely unbounded.
                unbounded = true;
                break;
            }
            Outcome::Optimal(s) => s,
        };
        any_feasible_relaxation = true;

        // Bound: can this node beat the incumbent?
        if let Some(best) = &incumbent {
            let no_better = if maximizing {
                relaxed.objective <= best.objective + INT_TOL
            } else {
                relaxed.objective >= best.objective - INT_TOL
            };
            if no_better {
                stats.pruned += 1;
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        for (j, v) in node.variables().iter().enumerate() {
            if !v.integer {
                continue;
            }
            let x = relaxed.values[j];
            let frac = (x - x.round()).abs();
            if frac > INT_TOL {
                let dist_to_half = (x - x.floor() - 0.5).abs();
                if branch_var.is_none_or(|(_, d)| dist_to_half < d) {
                    branch_var = Some((j, dist_to_half));
                }
            }
        }

        match branch_var {
            None => {
                // Integral: candidate incumbent.
                let mut values = relaxed.values.clone();
                for (j, v) in node.variables().iter().enumerate() {
                    if v.integer {
                        values[j] = values[j].round();
                    }
                }
                let objective = problem.objective_value(&values);
                let better = match &incumbent {
                    None => true,
                    Some(best) => {
                        if maximizing {
                            objective > best.objective + INT_TOL
                        } else {
                            objective < best.objective - INT_TOL
                        }
                    }
                };
                if better {
                    incumbent = Some(Solution { values, objective });
                }
            }
            Some((j, _)) => {
                let x = relaxed.values[j];
                let var = VarId(j);
                let mut down = node.clone();
                down.tighten_bounds(var, 0.0, x.floor());
                let mut up = node;
                up.tighten_bounds(var, x.ceil(), f64::INFINITY);
                // Explore the side nearer the relaxation first.
                if x - x.floor() > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }

    let outcome = if unbounded {
        Outcome::Unbounded
    } else {
        // A feasible relaxation does not guarantee an integer point, so an
        // empty incumbent is a legitimate "integer infeasible" outcome.
        let _ = any_feasible_relaxation;
        match incumbent {
            Some(s) => Outcome::Optimal(s),
            None => Outcome::Infeasible,
        }
    };
    IlpResult { outcome, stats }
}

/// Exhaustively enumerates all assignments of the problem's binary
/// variables (continuous variables are not supported) — a reference
/// oracle for testing the branch-and-bound solver on small instances.
///
/// # Panics
///
/// Panics if the problem has a non-binary variable or more than 24
/// binaries.
pub fn solve_by_enumeration(problem: &Problem) -> Outcome {
    let n = problem.num_vars();
    assert!(n <= 24, "enumeration limited to 24 binaries");
    for v in problem.variables() {
        assert!(
            v.integer && v.lower >= 0.0 && v.upper <= 1.0,
            "enumeration requires binary variables"
        );
    }
    let maximizing = problem.direction() == Direction::Maximize;
    let mut best: Option<Solution> = None;
    for mask in 0u32..(1 << n) {
        let values: Vec<f64> = (0..n)
            .map(|j| if mask >> j & 1 == 1 { 1.0 } else { 0.0 })
            .collect();
        if problem.check_feasible(&values, 1e-9).is_err() {
            continue;
        }
        let objective = problem.objective_value(&values);
        let better = match &best {
            None => true,
            Some(b) => {
                if maximizing {
                    objective > b.objective
                } else {
                    objective < b.objective
                }
            }
        };
        if better {
            best = Some(Solution { values, objective });
        }
    }
    match best {
        Some(s) => Outcome::Optimal(s),
        None => Outcome::Infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn knapsack_exact() {
        let mut p = Problem::new(Direction::Maximize);
        let items: Vec<_> = [(10.0, 5.0), (6.0, 4.0), (4.0, 3.0), (7.0, 5.0)]
            .iter()
            .enumerate()
            .map(|(i, _)| p.add_binary(&format!("x{i}")))
            .collect();
        p.set_objective(vec![
            (items[0], 10.0),
            (items[1], 6.0),
            (items[2], 4.0),
            (items[3], 7.0),
        ]);
        p.add_constraint(
            "w",
            vec![
                (items[0], 5.0),
                (items[1], 4.0),
                (items[2], 3.0),
                (items[3], 5.0),
            ],
            Sense::Le,
            10.0,
        );
        let r = solve_ilp(&p);
        let sol = r.outcome.solution().unwrap();
        assert_eq!(sol.objective, 17.0); // items 0 and 3
        assert!(r.stats.nodes >= 1);
        assert!(p.check_feasible(&sol.values, 1e-9).is_ok());
    }

    #[test]
    fn lp_rounding_is_not_enough() {
        // Fractional LP optimum; ILP must branch.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.set_objective(vec![(x, 1.0), (y, 1.0)]);
        p.add_constraint("c", vec![(x, 2.0), (y, 2.0)], Sense::Le, 3.0);
        let r = solve_ilp(&p);
        let sol = r.outcome.solution().unwrap();
        assert_eq!(sol.objective, 1.0);
        assert!(r.stats.nodes > 1, "should have branched");
    }

    #[test]
    fn infeasible_ilp() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.set_objective(vec![(x, 1.0)]);
        p.add_constraint("a", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        assert_eq!(solve_ilp(&p).outcome, Outcome::Infeasible);
    }

    #[test]
    fn integer_feasible_but_lp_fractional_equality() {
        // x + y = 1 with max 2x + y: answer x=1.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.set_objective(vec![(x, 2.0), (y, 1.0)]);
        p.add_constraint("pick", vec![(x, 1.0), (y, 1.0)], Sense::Eq, 1.0);
        let sol = solve_ilp(&p).outcome.solution().unwrap().clone();
        assert_eq!(sol.objective, 2.0);
        assert!(sol.is_set(x));
        assert!(!sol.is_set(y));
    }

    #[test]
    fn minimization_ilp() {
        // Set cover: min x1+x2+x3, x1+x2>=1, x2+x3>=1, x1+x3>=1 -> 2.
        let mut p = Problem::new(Direction::Minimize);
        let x1 = p.add_binary("x1");
        let x2 = p.add_binary("x2");
        let x3 = p.add_binary("x3");
        p.set_objective(vec![(x1, 1.0), (x2, 1.0), (x3, 1.0)]);
        p.add_constraint("a", vec![(x1, 1.0), (x2, 1.0)], Sense::Ge, 1.0);
        p.add_constraint("b", vec![(x2, 1.0), (x3, 1.0)], Sense::Ge, 1.0);
        p.add_constraint("c", vec![(x1, 1.0), (x3, 1.0)], Sense::Ge, 1.0);
        let sol = solve_ilp(&p).outcome.solution().unwrap().clone();
        assert_eq!(sol.objective, 2.0);
    }

    #[test]
    fn matches_enumeration_on_random_instances() {
        use hydra_sim_free_rng::Lcg;
        // Small deterministic LCG to avoid a dependency here.
        mod hydra_sim_free_rng {
            pub struct Lcg(pub u64);
            impl Lcg {
                pub fn next(&mut self) -> u64 {
                    self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
                    self.0 >> 33
                }
                pub fn f(&mut self) -> f64 {
                    (self.next() % 1000) as f64 / 100.0
                }
            }
        }
        let mut rng = Lcg(42);
        for trial in 0..30 {
            let n = 4 + (trial % 5); // 4..8 binaries
            let mut p = Problem::new(if trial % 2 == 0 {
                Direction::Maximize
            } else {
                Direction::Minimize
            });
            let vars: Vec<_> = (0..n).map(|i| p.add_binary(&format!("x{i}"))).collect();
            p.set_objective(vars.iter().map(|&v| (v, rng.f() - 2.0)).collect());
            let ncons = 2 + (trial % 3);
            for c in 0..ncons {
                let terms: Vec<_> = vars.iter().map(|&v| (v, rng.f() - 3.0)).collect();
                let sense = match rng.next() % 3 {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Le, // keep Eq rarer: random Eq is usually infeasible
                };
                let rhs = rng.f();
                p.add_constraint(&format!("c{c}"), terms, sense, rhs);
            }
            // For minimization an all-zero point often trivially satisfies
            // Le constraints; that's fine — we just compare the answers.
            let exact = solve_ilp(&p).outcome;
            let brute = solve_by_enumeration(&p);
            match (&exact, &brute) {
                (Outcome::Optimal(a), Outcome::Optimal(b)) => {
                    assert!(
                        (a.objective - b.objective).abs() < 1e-6,
                        "trial {trial}: bnb {} vs brute {}",
                        a.objective,
                        b.objective
                    );
                    assert!(p.check_feasible(&a.values, 1e-6).is_ok());
                }
                (Outcome::Infeasible, Outcome::Infeasible) => {}
                other => panic!("trial {trial}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn warm_start_accepts_feasible_hint_and_stays_optimal() {
        // Same knapsack as `knapsack_exact`; hint the true optimum.
        let mut p = Problem::new(Direction::Maximize);
        let vars: Vec<_> = (0..4).map(|i| p.add_binary(&format!("x{i}"))).collect();
        p.set_objective(vec![
            (vars[0], 10.0),
            (vars[1], 6.0),
            (vars[2], 4.0),
            (vars[3], 7.0),
        ]);
        p.add_constraint(
            "w",
            vec![
                (vars[0], 5.0),
                (vars[1], 4.0),
                (vars[2], 3.0),
                (vars[3], 5.0),
            ],
            Sense::Le,
            10.0,
        );
        let cold = solve_ilp(&p);
        let warm = solve_ilp_warm(&p, Some(&[1.0, 0.0, 0.0, 1.0]));
        assert_eq!(warm.outcome.solution().unwrap().objective, 17.0);
        assert_eq!(warm.stats.warm_start_hits, 1);
        assert!(
            warm.stats.nodes <= cold.stats.nodes,
            "a hinted optimum never searches more: warm {} vs cold {}",
            warm.stats.nodes,
            cold.stats.nodes
        );
        // A suboptimal-but-feasible hint still yields the proven optimum.
        let warm2 = solve_ilp_warm(&p, Some(&[0.0, 1.0, 1.0, 0.0]));
        assert_eq!(warm2.outcome.solution().unwrap().objective, 17.0);
        assert_eq!(warm2.stats.warm_start_hits, 1);
    }

    #[test]
    fn warm_start_ignores_infeasible_or_fractional_hints() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_binary("x");
        let y = p.add_binary("y");
        p.set_objective(vec![(x, 1.0), (y, 1.0)]);
        p.add_constraint("c", vec![(x, 2.0), (y, 2.0)], Sense::Le, 3.0);
        // Violates the constraint.
        let r = solve_ilp_warm(&p, Some(&[1.0, 1.0]));
        assert_eq!(r.stats.warm_start_hits, 0);
        assert_eq!(r.outcome.solution().unwrap().objective, 1.0);
        // Fractional on a binary.
        let r = solve_ilp_warm(&p, Some(&[0.5, 0.0]));
        assert_eq!(r.stats.warm_start_hits, 0);
        // Wrong arity.
        let r = solve_ilp_warm(&p, Some(&[1.0]));
        assert_eq!(r.stats.warm_start_hits, 0);
        assert_eq!(r.outcome.solution().unwrap().objective, 1.0);
    }

    #[test]
    fn enumeration_rejects_continuous_vars() {
        let mut p = Problem::new(Direction::Maximize);
        p.add_var("x", 0.0, 2.0, false);
        let result = std::panic::catch_unwind(|| solve_by_enumeration(&p));
        assert!(result.is_err());
    }
}
