//! # hydra-ilp — linear and 0/1 integer programming
//!
//! Paper §5 formulates offloading-layout optimization as a 0/1 integer
//! linear program and notes that "any ILP solver can then be used". This
//! crate is that solver: a problem model with binaries, bounds and
//! Le/Ge/Eq constraints ([`model`]), a dense two-phase primal simplex with
//! Bland's anti-cycling rule for the LP relaxation ([`simplex`]), and an
//! exact branch-and-bound search with most-fractional branching and
//! bound pruning ([`branch`]), plus a brute-force enumeration oracle used
//! by the property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod model;
pub mod simplex;

pub use branch::{solve_by_enumeration, solve_ilp, solve_ilp_warm, IlpResult, SearchStats};
pub use model::{Constraint, Direction, Outcome, Problem, Sense, Solution, VarId, Variable};
pub use simplex::solve_lp;
