//! Linear/integer program modelling.
//!
//! Paper §5 expresses the offloading layout problem as a 0/1 integer
//! linear program: placement variables `X[n][k]`, compatibility masks,
//! uniqueness/Pull/Gang constraints, and an objective (maximized
//! offloading or bus usage). [`Problem`] is the model those equations are
//! built into; `hydra-ilp`'s solvers consume it.

use std::fmt;

/// Index of a decision variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "=",
        })
    }
}

/// One decision variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Diagnostic name.
    pub name: String,
    /// Lower bound (≥ 0 for the solvers in this crate).
    pub lower: f64,
    /// Upper bound (`f64::INFINITY` for unbounded).
    pub upper: f64,
    /// Whether the variable must take an integer value.
    pub integer: bool,
}

/// One linear constraint: `Σ coeff·var  sense  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Diagnostic name.
    pub name: String,
    /// Sparse coefficient list.
    pub terms: Vec<(VarId, f64)>,
    /// Sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// Optimization direction (the objective terms are always stored for
/// maximization internally; minimization negates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// A linear (or mixed 0/1 integer) program.
///
/// # Examples
///
/// ```
/// use hydra_ilp::model::{Direction, Problem, Sense};
///
/// // maximize x + y  s.t.  x + 2y <= 4, x <= 3, x,y >= 0
/// let mut p = Problem::new(Direction::Maximize);
/// let x = p.add_var("x", 0.0, f64::INFINITY, false);
/// let y = p.add_var("y", 0.0, f64::INFINITY, false);
/// p.set_objective(vec![(x, 1.0), (y, 1.0)]);
/// p.add_constraint("cap", vec![(x, 1.0), (y, 2.0)], Sense::Le, 4.0);
/// p.add_constraint("xcap", vec![(x, 1.0)], Sense::Le, 3.0);
/// assert_eq!(p.num_vars(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    direction: Direction,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: Vec<(VarId, f64)>,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new(direction: Direction) -> Self {
        Problem {
            direction,
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
        }
    }

    /// The optimization direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Adds a variable.
    ///
    /// # Panics
    ///
    /// Panics if `lower` is negative (the simplex here assumes `x ≥ 0`),
    /// `lower > upper`, or a bound is NaN.
    pub fn add_var(&mut self, name: &str, lower: f64, upper: f64, integer: bool) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN variable bound");
        assert!(lower >= 0.0, "variables must be non-negative");
        assert!(lower <= upper, "lower bound exceeds upper bound");
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.to_owned(),
            lower,
            upper,
            integer,
        });
        id
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: &str) -> VarId {
        self.add_var(name, 0.0, 1.0, true)
    }

    /// Sets the objective terms (replacing any previous objective).
    pub fn set_objective(&mut self, terms: Vec<(VarId, f64)>) {
        for (v, _) in &terms {
            assert!(v.0 < self.variables.len(), "objective var out of range");
        }
        self.objective = terms;
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not exist or a coefficient
    /// is NaN.
    pub fn add_constraint(&mut self, name: &str, terms: Vec<(VarId, f64)>, sense: Sense, rhs: f64) {
        assert!(!rhs.is_nan(), "NaN rhs");
        for (v, c) in &terms {
            assert!(v.0 < self.variables.len(), "constraint var out of range");
            assert!(!c.is_nan(), "NaN coefficient");
        }
        self.constraints.push(Constraint {
            name: name.to_owned(),
            terms,
            sense,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective terms.
    pub fn objective(&self) -> &[(VarId, f64)] {
        &self.objective
    }

    /// The objective value of an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.iter().map(|(v, c)| c * values[v.0]).sum()
    }

    /// Checks whether `values` satisfies every constraint and bound within
    /// `tol`, returning the first violated constraint's name.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Result<(), String> {
        if values.len() != self.variables.len() {
            return Err("wrong assignment length".into());
        }
        for (v, x) in self.variables.iter().zip(values) {
            if *x < v.lower - tol || *x > v.upper + tol {
                return Err(format!("bound violated for {}", v.name));
            }
            if v.integer && (x - x.round()).abs() > tol {
                return Err(format!("integrality violated for {}", v.name));
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, k)| k * values[v.0]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Err(format!(
                    "constraint '{}' violated: {} {} {}",
                    c.name, lhs, c.sense, c.rhs
                ));
            }
        }
        Ok(())
    }

    /// Restricts a variable's bounds (used by branch and bound).
    ///
    /// # Panics
    ///
    /// Panics if the variable does not exist.
    pub(crate) fn tighten_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        let v = &mut self.variables[var.0];
        v.lower = v.lower.max(lower);
        v.upper = v.upper.min(upper);
    }
}

/// A solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// An optimal assignment was found.
    Optimal(Solution),
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

impl Outcome {
    /// The solution, if optimal.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Outcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// An optimal assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value per variable, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Objective value (in the problem's own direction).
    pub objective: f64,
}

impl Solution {
    /// The value of one variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Whether a binary variable is set (value > 0.5).
    pub fn is_set(&self, var: VarId) -> bool {
        self.values[var.0] > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_binary("x");
        let y = p.add_var("y", 0.0, 10.0, false);
        p.set_objective(vec![(x, 2.0), (y, 1.0)]);
        p.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Sense::Le, 5.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert!(p.variables()[0].integer);
        assert_eq!(p.objective_value(&[1.0, 3.0]), 5.0);
    }

    #[test]
    fn feasibility_checker() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_binary("x");
        p.add_constraint("c", vec![(x, 1.0)], Sense::Le, 0.0);
        assert!(p.check_feasible(&[0.0], 1e-9).is_ok());
        assert!(p.check_feasible(&[1.0], 1e-9).is_err());
        assert!(p.check_feasible(&[0.5], 1e-9).is_err()); // integrality
        assert!(p.check_feasible(&[], 1e-9).is_err());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lower_bound_rejected() {
        Problem::new(Direction::Maximize).add_var("x", -1.0, 1.0, false);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_var_rejected() {
        let mut p = Problem::new(Direction::Maximize);
        let _x = p.add_binary("x");
        let mut other = Problem::new(Direction::Maximize);
        let y = other.add_binary("y");
        let _ = y;
        // Fabricate an out-of-range VarId via a second problem with more vars.
        let mut big = Problem::new(Direction::Maximize);
        big.add_binary("a");
        let b = big.add_binary("b");
        p.add_constraint("c", vec![(b, 1.0)], Sense::Le, 1.0);
    }
}
