//! A dense two-phase primal simplex solver.
//!
//! Solves the LP relaxation of a [`Problem`]: maximize (or minimize) a
//! linear objective over non-negative variables with linear constraints
//! and finite bounds. Bounds are folded into explicit constraints — layout
//! ILPs are small (tens of variables), so the dense tableau with Bland's
//! anti-cycling rule is simple, exact enough at `f64`, and fast.

use crate::model::{Direction, Outcome, Problem, Sense, Solution};

/// One normalized constraint row: sparse terms, sense, right-hand side.
type Row = (Vec<(usize, f64)>, Sense, f64);

const EPS: f64 = 1e-9;
const MAX_ITER: usize = 50_000;

/// Solves the LP relaxation of `problem` (integrality is ignored).
///
/// # Examples
///
/// ```
/// use hydra_ilp::model::{Direction, Problem, Sense};
/// use hydra_ilp::simplex::solve_lp;
///
/// let mut p = Problem::new(Direction::Maximize);
/// let x = p.add_var("x", 0.0, f64::INFINITY, false);
/// let y = p.add_var("y", 0.0, f64::INFINITY, false);
/// p.set_objective(vec![(x, 3.0), (y, 2.0)]);
/// p.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
/// p.add_constraint("c2", vec![(x, 1.0)], Sense::Le, 2.0);
/// let sol = solve_lp(&p).solution().unwrap().clone();
/// assert!((sol.objective - 10.0).abs() < 1e-6); // x=2, y=2
/// ```
pub fn solve_lp(problem: &Problem) -> Outcome {
    // Gather constraints: user constraints plus bound constraints.
    let n = problem.num_vars();
    let mut rows: Vec<Row> = Vec::new();
    for c in problem.constraints() {
        let terms = c.terms.iter().map(|(v, k)| (v.index(), *k)).collect();
        rows.push((terms, c.sense, c.rhs));
    }
    for (j, v) in problem.variables().iter().enumerate() {
        if v.upper.is_finite() {
            rows.push((vec![(j, 1.0)], Sense::Le, v.upper));
        }
        if v.lower > 0.0 {
            rows.push((vec![(j, 1.0)], Sense::Ge, v.lower));
        }
    }

    // Objective as a dense vector, negated for minimization.
    let mut c = vec![0.0f64; n];
    for (v, k) in problem.objective() {
        c[v.index()] += *k;
    }
    let sign = match problem.direction() {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };
    for cj in &mut c {
        *cj *= sign;
    }

    match simplex_maximize(n, &rows, &c) {
        RawOutcome::Optimal { values, objective } => Outcome::Optimal(Solution {
            values,
            objective: objective * sign,
        }),
        RawOutcome::Infeasible => Outcome::Infeasible,
        RawOutcome::Unbounded => Outcome::Unbounded,
    }
}

enum RawOutcome {
    Optimal { values: Vec<f64>, objective: f64 },
    Infeasible,
    Unbounded,
}

/// Core tableau simplex: maximize c'x s.t. rows, x >= 0.
fn simplex_maximize(n: usize, rows: &[Row], c: &[f64]) -> RawOutcome {
    let m = rows.len();
    // Normalize rows to rhs >= 0 up front so the slack/artificial column
    // counts match what the fill loop will actually allocate.
    let rows: Vec<Row> = rows
        .iter()
        .map(|(terms, sense, rhs)| {
            if *rhs < 0.0 {
                let s = match sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
                (terms.iter().map(|(j, k)| (*j, -k)).collect(), s, -rhs)
            } else {
                (terms.clone(), *sense, *rhs)
            }
        })
        .collect();
    // Column layout: [0, n) structural; then one slack/surplus per
    // inequality; then one artificial per Ge/Eq row; last column rhs.
    let mut n_slack = 0;
    let mut n_art = 0;
    for (_, sense, _) in &rows {
        match sense {
            Sense::Le | Sense::Ge => n_slack += 1,
            Sense::Eq => {}
        }
        match sense {
            Sense::Ge | Sense::Eq => n_art += 1,
            Sense::Le => {}
        }
    }
    let ncols = n + n_slack + n_art;
    let rhs_col = ncols;
    let mut t = vec![vec![0.0f64; ncols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = n + n_slack;
    let mut artificial_cols: Vec<usize> = Vec::new();

    for (i, (terms, sense, rhs)) in rows.iter().enumerate() {
        let (sense, rhs) = (*sense, *rhs);
        for (j, k) in terms {
            t[i][*j] += *k;
        }
        t[i][rhs_col] = rhs;
        match sense {
            Sense::Le => {
                t[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Sense::Ge => {
                t[i][slack_idx] = -1.0;
                slack_idx += 1;
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
            Sense::Eq => {
                t[i][art_idx] = 1.0;
                basis[i] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    // Phase 1: maximize -(sum of artificials).
    if !artificial_cols.is_empty() {
        let mut c1 = vec![0.0f64; ncols];
        for &a in &artificial_cols {
            c1[a] = -1.0;
        }
        let mut zrow = build_zrow(&t, &basis, &c1, ncols);
        if !pivot_to_optimality(&mut t, &mut basis, &mut zrow, ncols) {
            // Phase 1 cannot be unbounded (objective bounded by 0); treat
            // as numerical failure -> infeasible.
            return RawOutcome::Infeasible;
        }
        if zrow[rhs_col] < -EPS {
            return RawOutcome::Infeasible;
        }
        // Drive artificials out of the basis.
        for i in 0..m {
            if artificial_cols.contains(&basis[i]) {
                let mut pivoted = false;
                for j in 0..n + n_slack {
                    if t[i][j].abs() > EPS {
                        pivot(&mut t, &mut basis, &mut zrow, i, j, ncols);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: zero it (keep artificial basic at 0).
                    t[i][..=ncols].fill(0.0);
                }
            }
        }
        // Forbid artificials from re-entering: clear their columns.
        for &a in &artificial_cols {
            for row in &mut t {
                row[a] = 0.0;
            }
        }
    }

    // Phase 2: original objective.
    let mut c2 = vec![0.0f64; ncols];
    c2[..n].copy_from_slice(&c[..n]);
    let mut zrow = build_zrow(&t, &basis, &c2, ncols);
    if !pivot_to_optimality(&mut t, &mut basis, &mut zrow, ncols) {
        return RawOutcome::Unbounded;
    }

    let mut values = vec![0.0f64; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            values[b] = t[i][rhs_col];
        }
    }
    let objective = values.iter().zip(c.iter()).map(|(x, k)| x * k).sum::<f64>();
    RawOutcome::Optimal { values, objective }
}

/// Builds the reduced-cost row ζ_j = c_B·B⁻¹A_j − c_j and the objective
/// value in the rhs slot.
fn build_zrow(t: &[Vec<f64>], basis: &[usize], c: &[f64], ncols: usize) -> Vec<f64> {
    let mut z = vec![0.0f64; ncols + 1];
    for (zj, cj) in z.iter_mut().zip(c.iter()) {
        *zj = -cj;
    }
    for (i, &b) in basis.iter().enumerate() {
        let cb = if b < ncols { c[b] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..=ncols {
                z[j] += cb * t[i][j];
            }
        }
    }
    z
}

/// Pivots until all reduced costs are ≥ −EPS. Returns false if unbounded
/// (or iteration limit hit).
fn pivot_to_optimality(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    zrow: &mut [f64],
    ncols: usize,
) -> bool {
    let rhs_col = ncols;
    for _ in 0..MAX_ITER {
        // Bland's rule: entering = smallest index with negative reduced cost.
        let Some(enter) = (0..ncols).find(|&j| zrow[j] < -EPS) else {
            return true;
        };
        // Ratio test with Bland tie-break on smallest basis index.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for (i, row) in t.iter().enumerate() {
            if row[enter] > EPS {
                let ratio = row[rhs_col] / row[enter];
                let better = ratio < best - EPS
                    || (ratio < best + EPS && leave.is_none_or(|l| basis[i] < basis[l]));
                if better {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return false; // unbounded
        };
        pivot(t, basis, zrow, leave, enter, ncols);
    }
    false
}

fn pivot(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    zrow: &mut [f64],
    row: usize,
    col: usize,
    ncols: usize,
) {
    let p = t[row][col];
    debug_assert!(p.abs() > EPS, "pivot on ~zero element");
    for v in t[row].iter_mut().take(ncols + 1) {
        *v /= p;
    }
    let pivot_row = t[row].clone();
    for (i, r) in t.iter_mut().enumerate() {
        if i != row && r[col].abs() > EPS {
            let f = r[col];
            for (v, pv) in r.iter_mut().zip(pivot_row.iter()).take(ncols + 1) {
                *v -= f * pv;
            }
        }
    }
    if zrow[col].abs() > EPS {
        let f = zrow[col];
        for (zj, tj) in zrow.iter_mut().zip(t[row].iter()).take(ncols + 1) {
            *zj -= f * tj;
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Direction, Problem, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (answer 36)
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, false);
        let y = p.add_var("y", 0.0, f64::INFINITY, false);
        p.set_objective(vec![(x, 3.0), (y, 5.0)]);
        p.add_constraint("a", vec![(x, 1.0)], Sense::Le, 4.0);
        p.add_constraint("b", vec![(y, 2.0)], Sense::Le, 12.0);
        p.add_constraint("c", vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert!(p.check_feasible(&sol.values, 1e-6).is_ok());
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2  (answer: x=10,y=0 -> 20)
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, false);
        let y = p.add_var("y", 0.0, f64::INFINITY, false);
        p.set_objective(vec![(x, 2.0), (y, 3.0)]);
        p.add_constraint("cover", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 10.0);
        p.add_constraint("xmin", vec![(x, 1.0)], Sense::Ge, 2.0);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert_close(sol.objective, 20.0);
        assert_close(sol.value(x), 10.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x - y = 1 -> x=3, y=2
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, false);
        let y = p.add_var("y", 0.0, f64::INFINITY, false);
        p.set_objective(vec![(x, 1.0), (y, 1.0)]);
        p.add_constraint("s", vec![(x, 1.0), (y, 1.0)], Sense::Eq, 5.0);
        p.add_constraint("d", vec![(x, 1.0), (y, -1.0)], Sense::Eq, 1.0);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, false);
        p.set_objective(vec![(x, 1.0)]);
        p.add_constraint("lo", vec![(x, 1.0)], Sense::Ge, 5.0);
        p.add_constraint("hi", vec![(x, 1.0)], Sense::Le, 3.0);
        assert_eq!(solve_lp(&p), Outcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, false);
        let y = p.add_var("y", 0.0, f64::INFINITY, false);
        p.set_objective(vec![(x, 1.0)]);
        p.add_constraint("c", vec![(x, 1.0), (y, -1.0)], Sense::Le, 1.0);
        assert_eq!(solve_lp(&p), Outcome::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 0.0, 2.5, false);
        p.set_objective(vec![(x, 1.0)]);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert_close(sol.objective, 2.5);
    }

    #[test]
    fn lower_bounds_respected() {
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 1.5, 10.0, false);
        p.set_objective(vec![(x, 1.0)]);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert_close(sol.objective, 1.5);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -2 with max x, x <= 10 -> x=10 needs y >= 12; feasible.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 0.0, 10.0, false);
        let y = p.add_var("y", 0.0, f64::INFINITY, false);
        p.set_objective(vec![(x, 1.0)]);
        p.add_constraint("c", vec![(x, 1.0), (y, -1.0)], Sense::Le, -2.0);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert_close(sol.objective, 10.0);
        assert!(sol.value(y) >= 12.0 - 1e-6);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 0.0, 1.0, false);
        p.add_constraint("c", vec![(x, 1.0)], Sense::Ge, 0.5);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert!(p.check_feasible(&sol.values, 1e-6).is_ok());
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic cycling-prone setup; Bland's rule must terminate.
        let mut p = Problem::new(Direction::Maximize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY, false);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY, false);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY, false);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, false);
        p.set_objective(vec![(x1, 0.75), (x2, -150.0), (x3, 0.02), (x4, -6.0)]);
        p.add_constraint(
            "r1",
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            "r2",
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint("r3", vec![(x3, 1.0)], Sense::Le, 1.0);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert_close(sol.objective, 0.05);
    }

    #[test]
    fn redundant_equality_rows_handled() {
        // x + y = 4 stated twice.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, false);
        let y = p.add_var("y", 0.0, f64::INFINITY, false);
        p.set_objective(vec![(x, 1.0)]);
        p.add_constraint("a", vec![(x, 1.0), (y, 1.0)], Sense::Eq, 4.0);
        p.add_constraint("b", vec![(x, 1.0), (y, 1.0)], Sense::Eq, 4.0);
        let sol = solve_lp(&p).solution().unwrap().clone();
        assert_close(sol.objective, 4.0);
    }
}
