//! Regression pin for the engine's FIFO tie-break contract.
//!
//! Events scheduled for the same instant must execute in insertion order,
//! on every scheduler implementation. PR 1–5 determinism artifacts
//! (metrics snapshots, Chrome traces, fault replays) all depend on this;
//! a future scheduler swap that silently reorders equal-time events would
//! corrupt every committed byte-identical baseline.

use hydra_sim::engine::{SchedEntry, Scheduler};
use hydra_sim::time::{SimDuration, SimTime};
use hydra_sim::{BinaryHeapScheduler, CalendarQueue, SchedulerKind, Sim, SlabKey};

fn kinds() -> [SchedulerKind; 2] {
    [SchedulerKind::BinaryHeap, SchedulerKind::Calendar]
}

#[test]
fn equal_time_events_execute_in_insertion_order() {
    for kind in kinds() {
        let mut sim = Sim::with_scheduler(Vec::new(), kind);
        let t = SimTime::from_millis(7);
        for i in 0..100u32 {
            sim.schedule_at(t, move |s| s.model_mut().push(i));
        }
        sim.run();
        assert_eq!(
            sim.model(),
            &(0..100).collect::<Vec<_>>(),
            "{kind:?}: FIFO order at equal timestamps"
        );
    }
}

#[test]
fn interleaved_times_keep_fifo_within_each_instant() {
    for kind in kinds() {
        let mut sim = Sim::with_scheduler(Vec::new(), kind);
        // Schedule bursts at three instants in shuffled submission order;
        // within an instant, submission order must be preserved.
        let instants = [3u64, 1, 2, 1, 3, 2, 1, 3, 2];
        for (i, ms) in instants.into_iter().enumerate() {
            sim.schedule_at(SimTime::from_millis(ms), move |s| {
                s.model_mut().push((ms, i));
            });
        }
        sim.run();
        assert_eq!(
            sim.model(),
            &[
                (1u64, 1usize),
                (1, 3),
                (1, 6),
                (2, 2),
                (2, 5),
                (2, 8),
                (3, 0),
                (3, 4),
                (3, 7),
            ],
            "{kind:?}: time-major, submission-minor order"
        );
    }
}

#[test]
fn events_scheduled_during_execution_at_same_instant_run_after_earlier_submissions() {
    for kind in kinds() {
        let mut sim = Sim::with_scheduler(Vec::new(), kind);
        let t = SimTime::from_millis(1);
        sim.schedule_at(t, move |s| {
            s.model_mut().push("first");
            // Scheduled *during* execution at the same instant: must run
            // after everything already queued for this instant.
            sim_push_later(s, t);
        });
        sim.schedule_at(t, |s| s.model_mut().push("second"));
        sim.run();
        assert_eq!(sim.model(), &["first", "second", "nested"]);
        assert_eq!(sim.now(), t);
    }
}

fn sim_push_later(sim: &mut Sim<Vec<&'static str>>, t: SimTime) {
    sim.schedule_at(t, |s| s.model_mut().push("nested"));
}

#[test]
fn raw_scheduler_contract_is_total_order_by_at_then_seq() {
    // Drive both Scheduler impls directly with a deterministic mixed
    // workload and assert the popped (at, seq) stream is sorted.
    let mut heap = BinaryHeapScheduler::new();
    let mut cal = CalendarQueue::new();
    let key = SlabKey { slot: 0, gen: 0 };
    let mut seq = 0u64;
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = || {
        // xorshift — deterministic, no external RNG needed here.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut popped_heap = Vec::new();
    let mut popped_cal = Vec::new();
    for round in 0..200 {
        // Push a burst, some sharing timestamps.
        let base = next() % 1_000_000;
        for i in 0u64..=(round % 7) {
            let at = SimTime::from_nanos(base + (i / 3) * 64);
            let entry = SchedEntry { at, seq, key };
            seq += 1;
            heap.push(entry);
            cal.push(entry);
        }
        // Pop a few.
        for _ in 0..(round % 5) {
            if let Some(e) = heap.pop() {
                popped_heap.push((e.at, e.seq));
            }
            if let Some(e) = cal.pop() {
                popped_cal.push((e.at, e.seq));
            }
        }
    }
    while let Some(e) = heap.pop() {
        popped_heap.push((e.at, e.seq));
    }
    while let Some(e) = cal.pop() {
        popped_cal.push((e.at, e.seq));
    }
    assert_eq!(popped_heap, popped_cal, "identical pop streams");
    assert_eq!(heap.len(), 0);
    assert_eq!(cal.len(), 0);
}

#[test]
fn periodic_ticks_interleave_deterministically_across_schedulers() {
    let run = |kind| {
        let mut sim = Sim::with_scheduler(Vec::new(), kind);
        for id in 0..4u32 {
            sim.every(SimTime::ZERO, SimDuration::from_millis(2), move |s| {
                s.model_mut().push(id);
                s.model().len() < 40
            });
        }
        sim.run();
        sim.into_model()
    };
    let heap = run(SchedulerKind::BinaryHeap);
    let cal = run(SchedulerKind::Calendar);
    assert_eq!(heap, cal, "tick interleaving identical across schedulers");
}
