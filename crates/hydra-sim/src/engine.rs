//! The discrete-event engine.
//!
//! [`Sim`] owns a user model `M` and a time-ordered event queue. Events are
//! boxed closures that receive `&mut Sim<M>` and may mutate the model,
//! schedule further events, or cancel pending ones. Ties in time are broken
//! by insertion order, which makes whole-system runs bit-for-bit
//! deterministic for a given seed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

type EventFn<M> = Box<dyn FnOnce(&mut Sim<M>)>;

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    action: EventFn<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with FIFO order among events scheduled for the same instant.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulator that owns the user model `M`.
///
/// # Examples
///
/// ```
/// use hydra_sim::{Sim, time::SimDuration};
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule_in(SimDuration::from_millis(1), |sim| {
///     *sim.model_mut() += 1;
/// });
/// sim.run();
/// assert_eq!(*sim.model(), 1);
/// assert_eq!(sim.now().as_millis(), 1);
/// ```
pub struct Sim<M> {
    model: M,
    now: SimTime,
    queue: BinaryHeap<Scheduled<M>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    executed: u64,
}

impl<M: fmt::Debug> fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .field("model", &self.model)
            .finish_non_exhaustive()
    }
}

impl<M> Sim<M> {
    /// Creates a simulator at time zero around the given model.
    pub fn new(model: M) -> Self {
        Sim {
            model,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            executed: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulator, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled ones not yet
    /// reaped).
    pub fn events_pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedules `action` to run at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Sim<M>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "schedule_at: instant {at} is before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Schedules `action` to run after the relative delay `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim<M>) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, action)
    }

    /// Schedules `action` to run "now", after all already-queued events at
    /// the current instant.
    pub fn schedule_now(&mut self, action: impl FnOnce(&mut Sim<M>) + 'static) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet run
    /// or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Executes the next pending event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(self);
            return true;
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the event queue drains or the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at `deadline` are executed; afterwards the
    /// clock rests at `deadline` (or earlier, if the queue drained first).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            // Peek for the next live event.
            let next_at = loop {
                match self.queue.peek() {
                    None => break None,
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        let ev = self.queue.pop().expect("peeked event vanished");
                        self.cancelled.remove(&ev.seq);
                    }
                    Some(ev) => break Some(ev.at),
                }
            };
            match next_at {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => {
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Runs for a relative span of simulated time (see [`Sim::run_until`]).
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now.saturating_add(span);
        self.run_until(deadline);
    }

    /// Schedules a periodic action starting at `start` with the given
    /// period. The action returns `true` to keep the cycle alive and
    /// `false` to stop.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the simulation would never advance).
    pub fn every(
        &mut self,
        start: SimTime,
        period: SimDuration,
        action: impl FnMut(&mut Sim<M>) -> bool + 'static,
    ) -> EventId {
        assert!(!period.is_zero(), "every: period must be non-zero");
        fn tick<M>(
            sim: &mut Sim<M>,
            period: SimDuration,
            action: impl FnMut(&mut Sim<M>) -> bool + 'static,
        ) {
            let mut action = action;
            if action(sim) {
                sim.schedule_in(period, move |sim| tick(sim, period, action));
            }
        }
        self.schedule_at(start, move |sim| tick(sim, period, action))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime::from_millis(3), |s| s.model_mut().push(3));
        sim.schedule_at(SimTime::from_millis(1), |s| s.model_mut().push(1));
        sim.schedule_at(SimTime::from_millis(2), |s| s.model_mut().push(2));
        sim.run();
        assert_eq!(sim.model(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Sim::new(Vec::new());
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            sim.schedule_at(t, move |s| s.model_mut().push(i));
        }
        sim.run();
        assert_eq!(sim.model(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u64);
        sim.schedule_in(SimDuration::from_millis(1), |s| {
            *s.model_mut() += 1;
            s.schedule_in(SimDuration::from_millis(1), |s| {
                *s.model_mut() += 10;
            });
        });
        sim.run();
        assert_eq!(*sim.model(), 11);
        assert_eq!(sim.now(), SimTime::from_millis(2));
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new(0u64);
        let id = sim.schedule_in(SimDuration::from_millis(1), |s| *s.model_mut() += 1);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        sim.run();
        assert_eq!(*sim.model(), 0);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Sim<()> = Sim::new(());
        assert!(!sim.cancel(EventId(12345)));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(Vec::new());
        for ms in [1u64, 2, 3, 4, 5] {
            sim.schedule_at(SimTime::from_millis(ms), move |s| s.model_mut().push(ms));
        }
        sim.run_until(SimTime::from_millis(3));
        assert_eq!(sim.model(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.model(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim: Sim<()> = Sim::new(());
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(sim.now(), SimTime::from_secs(9));
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut sim = Sim::new(0u64);
        let id = sim.schedule_at(SimTime::from_millis(1), |s| *s.model_mut() += 1);
        sim.schedule_at(SimTime::from_millis(2), |s| *s.model_mut() += 10);
        sim.cancel(id);
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(*sim.model(), 10);
    }

    #[test]
    fn periodic_until_false() {
        let mut sim = Sim::new(0u64);
        sim.every(SimTime::from_millis(5), SimDuration::from_millis(5), |s| {
            *s.model_mut() += 1;
            *s.model() < 4
        });
        sim.run();
        assert_eq!(*sim.model(), 4);
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_at(SimTime::from_millis(5), |_| {});
        sim.run();
        sim.schedule_at(SimTime::from_millis(1), |_| {});
    }
}
