//! The discrete-event engine.
//!
//! [`Sim`] owns a user model `M` and a time-ordered event queue. Events are
//! boxed closures that receive `&mut Sim<M>` and may mutate the model,
//! schedule further events, or cancel pending ones. Ties in time are broken
//! by insertion order, which makes whole-system runs bit-for-bit
//! deterministic for a given seed.
//!
//! # Engine internals
//!
//! The hot loop is split in two:
//!
//! * event **closures** live in a generation-stamped [`Slab`], so the
//!   steady state recycles the same slots instead of allocating queue
//!   nodes, and cancellation is an O(1) slab removal (no `HashSet` on the
//!   pop path);
//! * event **ordering** is delegated to a [`Scheduler`], keyed by small
//!   `Copy` [`SchedEntry`] records. Two implementations exist: the
//!   original [`BinaryHeapScheduler`] (kept as the reference oracle — see
//!   `tests/engine_equivalence.rs` at the workspace root) and the default
//!   [`CalendarQueue`], a bucketed calendar scheduler with an automatic
//!   resize policy that makes push/pop O(1) for the large pending-event
//!   populations the fleet-scale workloads produce.
//!
//! ## The FIFO tie-break contract
//!
//! Events scheduled for the same instant execute in **insertion order**
//! (ascending [`SchedEntry::seq`]). Every [`Scheduler`] implementation
//! must honor this; `scheduler_fifo_contract` in this module's tests and
//! `crates/hydra-sim/tests/tie_break.rs` pin it so a future scheduler
//! swap cannot silently reorder replays.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::slab::{Slab, SlabKey};
use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
///
/// Internally a packed [`SlabKey`]: the id addresses one specific
/// occupancy of an event slot, so ids stay unique even though slots are
/// recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

type EventFn<M> = Box<dyn FnOnce(&mut Sim<M>)>;

/// The ordering key of one scheduled event. The closure itself lives in
/// the engine's slab; schedulers only shuffle these small `Copy` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEntry {
    /// Absolute due instant.
    pub at: SimTime,
    /// Global insertion sequence — the FIFO tie-break at equal `at`.
    pub seq: u64,
    /// Slab key of the event's closure.
    pub key: SlabKey,
}

impl SchedEntry {
    fn order_key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A pending-event priority queue ordered by `(at, seq)` ascending.
///
/// The engine guarantees `push` is only called with `at` no earlier than
/// the most recently popped entry's time (events cannot be scheduled in
/// the past). Implementations must pop in strict `(at, seq)` order —
/// equal-time events FIFO by sequence — and may keep internal cursor
/// state between calls (`peek` therefore takes `&mut self`).
pub trait Scheduler: fmt::Debug {
    /// Enqueues an entry.
    fn push(&mut self, entry: SchedEntry);

    /// Removes and returns the earliest entry.
    fn pop(&mut self) -> Option<SchedEntry>;

    /// The earliest entry without removing it.
    fn peek(&mut self) -> Option<SchedEntry>;

    /// Number of queued entries (including entries whose event was
    /// cancelled but not yet reaped).
    fn len(&self) -> usize;

    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Self-profile counters accumulated since construction. The default
    /// is all-zero for schedulers that keep none.
    fn stats(&self) -> SchedStats {
        SchedStats::default()
    }
}

/// A scheduler's self-profile: occupancy high-water and, for the
/// calendar queue, how the resize policy behaved. Deterministic for a
/// deterministic schedule — the engine benchmark surfaces these as
/// `wall_sched_*` report fields so CI's byte-diff stays indifferent to
/// cross-version policy tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Times the structure doubled its bucket count.
    pub grows: u64,
    /// Times the structure halved its bucket count.
    pub shrinks: u64,
    /// Largest number of simultaneously queued entries.
    pub max_pending: u64,
    /// Current bucket count (0 for the binary heap).
    pub buckets: u64,
    /// Current bucket width in nanoseconds (0 for the binary heap).
    pub bucket_width_ns: u64,
}

/// Which [`Scheduler`] a [`Sim`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// The original binary-heap scheduler — the reference oracle.
    BinaryHeap,
    /// The bucketed calendar queue (default).
    #[default]
    Calendar,
}

// ---------------------------------------------------------------------
// Reference scheduler: the original BinaryHeap implementation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry(SchedEntry);

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, with FIFO order among events scheduled for the same
        // instant.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// The original `BinaryHeap`-backed scheduler: O(log n) push/pop.
///
/// Kept as the **reference oracle** for the calendar queue — the
/// differential tests drive both with identical schedules and assert
/// identical pop order.
#[derive(Debug, Default)]
pub struct BinaryHeapScheduler {
    heap: BinaryHeap<HeapEntry>,
    max_pending: u64,
}

impl BinaryHeapScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for BinaryHeapScheduler {
    fn push(&mut self, entry: SchedEntry) {
        self.heap.push(HeapEntry(entry));
        self.max_pending = self.max_pending.max(self.heap.len() as u64);
    }

    fn pop(&mut self) -> Option<SchedEntry> {
        self.heap.pop().map(|e| e.0)
    }

    fn peek(&mut self) -> Option<SchedEntry> {
        self.heap.peek().map(|e| e.0)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn stats(&self) -> SchedStats {
        SchedStats {
            max_pending: self.max_pending,
            ..SchedStats::default()
        }
    }
}

// ---------------------------------------------------------------------
// Calendar queue scheduler.
// ---------------------------------------------------------------------

/// A bucketed calendar-queue scheduler (Brown 1988): the time axis is
/// divided into fixed-width buckets addressed modulo the bucket count,
/// like the days of a wall calendar. Push hashes an event to its bucket
/// and insertion-sorts it there; pop scans forward from the current
/// bucket, taking only events that fall inside the bucket's *current
/// year* window. With the resize policy keeping roughly one event per
/// bucket, both operations are O(1) — against the reference heap's
/// O(log n) — which is what the `BENCH_engine.json` churn workload
/// measures.
///
/// **Resize policy:** the queue doubles its bucket count when the
/// population exceeds twice the bucket count and halves it when the
/// population falls below a quarter (never under [`MIN_BUCKETS`]). At
/// each resize the bucket width is re-derived from the average gap of
/// the (up to) 64 events nearest the head, rounded down to a power of
/// two so bucket indexing stays a shift-and-mask; sampling the head
/// keeps a handful of far-future outliers from inflating the width. All
/// of it is pure integer arithmetic on deterministic inputs, so replays
/// stay byte-identical.
///
/// **Tie-break:** each bucket is kept sorted descending by `(at, seq)`
/// (minimum at the back, so pop is `Vec::pop`); equal-time events in one
/// bucket therefore leave in insertion (`seq`) order, and equal-time
/// events always share a bucket. This preserves the engine's FIFO
/// contract exactly.
#[derive(Debug)]
pub struct CalendarQueue {
    /// Each bucket sorted descending by `(at, seq)`: minimum at the back.
    buckets: Vec<Vec<SchedEntry>>,
    /// `log2` of the bucket width in nanoseconds.
    width_shift: u32,
    /// Live entry count.
    len: usize,
    /// Index of the bucket the scan cursor is on.
    cur: usize,
    /// Absolute nanosecond start of `cur`'s active (current-year) window.
    day_start: u64,
    /// Resize-policy self-profile (grows/shrinks/occupancy high-water).
    stats: SchedStats,
}

/// Smallest bucket count the resize policy will shrink to.
pub const MIN_BUCKETS: usize = 8;

/// Largest bucket width the resize policy will derive (2^40 ns ≈ 18 min
/// of simulated time per bucket).
const MAX_WIDTH_SHIFT: u32 = 40;

/// How many head-of-queue events the resize policy samples when
/// re-deriving the bucket width (Brown 1988 samples the head so that
/// far-future outliers cannot distort the width).
const HEAD_SAMPLE: usize = 64;

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty calendar queue with the default geometry (the resize
    /// policy adapts it to the workload).
    pub fn new() -> Self {
        CalendarQueue {
            buckets: vec![Vec::new(); MIN_BUCKETS],
            width_shift: 10, // 1.024 µs buckets until the first resize
            len: 0,
            cur: 0,
            day_start: 0,
            stats: SchedStats::default(),
        }
    }

    /// Current bucket count (exposed for the resize-policy tests).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in nanoseconds (exposed for the
    /// resize-policy tests).
    pub fn bucket_width_ns(&self) -> u64 {
        1u64 << self.width_shift
    }

    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    fn bucket_of(&self, ns: u64) -> usize {
        ((ns >> self.width_shift) as usize) & self.mask()
    }

    /// Points the scan cursor at the bucket containing `ns`.
    fn set_position(&mut self, ns: u64) {
        self.day_start = ns & !(self.bucket_width_ns() - 1);
        self.cur = self.bucket_of(ns);
    }

    fn insert_raw(&mut self, entry: SchedEntry) {
        let ns = entry.at.as_nanos();
        if self.len == 0 || ns < self.day_start {
            // First event, or an event behind the cursor (possible after
            // a peek advanced it): rewind so the scan cannot miss it.
            self.set_position(ns);
        }
        let b = self.bucket_of(ns);
        let bucket = &mut self.buckets[b];
        let key = entry.order_key();
        let i = bucket.partition_point(|e| e.order_key() > key);
        bucket.insert(i, entry);
        self.len += 1;
    }

    /// Rebuilds the calendar with `count` buckets and a width derived
    /// from the average gap of the events **nearest the head**.
    ///
    /// Sampling the head (as Brown 1988 does) instead of using the full
    /// `(max − min) / len` span matters: a few far-future outliers —
    /// parked timeouts, watchdogs — would otherwise inflate the width
    /// until every near-term event collapsed into a single bucket,
    /// turning push into an O(n) insertion sort.
    fn resize(&mut self, count: usize) {
        let mut all: Vec<SchedEntry> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        if all.is_empty() {
            return;
        }
        let sample = all.len().min(HEAD_SAMPLE);
        if sample < all.len() {
            // Deterministic partition: no RNG in std's selection.
            all.select_nth_unstable_by_key(sample - 1, |e| e.at);
        }
        let head_min = all[..sample]
            .iter()
            .map(|e| e.at.as_nanos())
            .min()
            .expect("sample is non-empty");
        let head_max = all[..sample]
            .iter()
            .map(|e| e.at.as_nanos())
            .max()
            .expect("sample is non-empty");
        let gap = ((head_max - head_min) / sample as u64).max(1);
        self.width_shift = gap.ilog2().min(MAX_WIDTH_SHIFT);
        self.buckets = vec![Vec::new(); count];
        self.len = 0;
        self.set_position(head_min);
        for entry in all {
            self.insert_raw(entry);
        }
    }

    /// The scan shared by pop and peek: find the earliest entry, leaving
    /// the cursor on its bucket. Returns the bucket index holding it.
    fn scan(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let width = self.bucket_width_ns();
        let mask = self.mask();
        let mut cur = self.cur;
        let mut day_start = self.day_start;
        for _ in 0..self.buckets.len() {
            let day_end = day_start.saturating_add(width);
            if let Some(e) = self.buckets[cur].last() {
                if e.at.as_nanos() < day_end {
                    self.cur = cur;
                    self.day_start = day_start;
                    return Some(cur);
                }
            }
            cur = (cur + 1) & mask;
            day_start = day_start.saturating_add(width);
        }
        // A full revolution without a hit: every event is at least one
        // calendar year away. Jump straight to the global minimum.
        let (bucket, at) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.last().map(|e| (i, e)))
            .min_by_key(|(_, e)| e.order_key())
            .map(|(i, e)| (i, e.at.as_nanos()))
            .expect("len > 0 but no bucket has entries");
        self.set_position(at);
        debug_assert_eq!(self.cur, bucket);
        Some(bucket)
    }
}

impl Scheduler for CalendarQueue {
    fn push(&mut self, entry: SchedEntry) {
        self.insert_raw(entry);
        self.stats.max_pending = self.stats.max_pending.max(self.len as u64);
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
            self.stats.grows += 1;
        }
    }

    fn pop(&mut self) -> Option<SchedEntry> {
        let bucket = self.scan()?;
        let entry = self.buckets[bucket].pop().expect("scan found an entry");
        self.len -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.len * 4 < self.buckets.len() {
            self.resize(self.buckets.len() / 2);
            self.stats.shrinks += 1;
        }
        Some(entry)
    }

    fn peek(&mut self) -> Option<SchedEntry> {
        let bucket = self.scan()?;
        self.buckets[bucket].last().copied()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> SchedStats {
        SchedStats {
            buckets: self.buckets.len() as u64,
            bucket_width_ns: self.bucket_width_ns(),
            ..self.stats
        }
    }
}

/// Static-dispatch wrapper so the hot loop pays no virtual call.
#[derive(Debug)]
enum AnyScheduler {
    Heap(BinaryHeapScheduler),
    Calendar(CalendarQueue),
}

impl AnyScheduler {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::BinaryHeap => AnyScheduler::Heap(BinaryHeapScheduler::new()),
            SchedulerKind::Calendar => AnyScheduler::Calendar(CalendarQueue::new()),
        }
    }

    fn kind(&self) -> SchedulerKind {
        match self {
            AnyScheduler::Heap(_) => SchedulerKind::BinaryHeap,
            AnyScheduler::Calendar(_) => SchedulerKind::Calendar,
        }
    }
}

impl Scheduler for AnyScheduler {
    fn push(&mut self, entry: SchedEntry) {
        match self {
            AnyScheduler::Heap(s) => s.push(entry),
            AnyScheduler::Calendar(s) => s.push(entry),
        }
    }

    fn pop(&mut self) -> Option<SchedEntry> {
        match self {
            AnyScheduler::Heap(s) => s.pop(),
            AnyScheduler::Calendar(s) => s.pop(),
        }
    }

    fn peek(&mut self) -> Option<SchedEntry> {
        match self {
            AnyScheduler::Heap(s) => s.peek(),
            AnyScheduler::Calendar(s) => s.peek(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyScheduler::Heap(s) => s.len(),
            AnyScheduler::Calendar(s) => s.len(),
        }
    }

    fn stats(&self) -> SchedStats {
        match self {
            AnyScheduler::Heap(s) => s.stats(),
            AnyScheduler::Calendar(s) => s.stats(),
        }
    }
}

/// A discrete-event simulator that owns the user model `M`.
///
/// # Examples
///
/// ```
/// use hydra_sim::{Sim, time::SimDuration};
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule_in(SimDuration::from_millis(1), |sim| {
///     *sim.model_mut() += 1;
/// });
/// sim.run();
/// assert_eq!(*sim.model(), 1);
/// assert_eq!(sim.now().as_millis(), 1);
/// ```
pub struct Sim<M> {
    model: M,
    now: SimTime,
    sched: AnyScheduler,
    events: Slab<EventFn<M>>,
    next_seq: u64,
    executed: u64,
}

impl<M: fmt::Debug> fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.events.len())
            .field("executed", &self.executed)
            .field("scheduler", &self.sched.kind())
            .field("model", &self.model)
            .finish_non_exhaustive()
    }
}

impl<M> Sim<M> {
    /// Creates a simulator at time zero around the given model, on the
    /// default [`CalendarQueue`] scheduler.
    pub fn new(model: M) -> Self {
        Self::with_scheduler(model, SchedulerKind::default())
    }

    /// Creates a simulator on an explicit scheduler — the differential
    /// tests run the same workload on both kinds and demand identical
    /// behavior.
    pub fn with_scheduler(model: M, kind: SchedulerKind) -> Self {
        Sim {
            model,
            now: SimTime::ZERO,
            sched: AnyScheduler::new(kind),
            events: Slab::new(),
            next_seq: 0,
            executed: 0,
        }
    }

    /// Which scheduler this simulator runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.sched.kind()
    }

    /// The scheduler's self-profile (resize counts, occupancy
    /// high-water, current geometry) — see [`SchedStats`].
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulator, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (cancelled events are reaped
    /// immediately and never counted).
    pub fn events_pending(&self) -> usize {
        self.events.len()
    }

    /// Schedules `action` to run at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut Sim<M>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "schedule_at: instant {at} is before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.events.insert(Box::new(action));
        self.sched.push(SchedEntry { at, seq, key });
        EventId(key.pack())
    }

    /// Schedules `action` to run after the relative delay `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Sim<M>) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, action)
    }

    /// Schedules `action` to run "now", after all already-queued events at
    /// the current instant.
    pub fn schedule_now(&mut self, action: impl FnOnce(&mut Sim<M>) + 'static) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet run
    /// or been cancelled. O(1): the closure leaves the slab immediately;
    /// the scheduler's stale key is skipped when it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.events.remove(SlabKey::unpack(id.0)).is_some()
    }

    /// Executes the next pending event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(entry) = self.sched.pop() else {
                return false;
            };
            let Some(action) = self.events.remove(entry.key) else {
                continue; // cancelled; its slot may already be reused
            };
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.executed += 1;
            action(self);
            return true;
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the event queue drains or the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at `deadline` are executed; afterwards the
    /// clock rests at `deadline` (or earlier, if the queue drained first).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            // Peek for the next live event, reaping cancelled heads.
            let next_at = loop {
                match self.sched.peek() {
                    None => break None,
                    Some(entry) if !self.events.contains(entry.key) => {
                        self.sched.pop();
                    }
                    Some(entry) => break Some(entry.at),
                }
            };
            match next_at {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => {
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Runs for a relative span of simulated time (see [`Sim::run_until`]).
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now.saturating_add(span);
        self.run_until(deadline);
    }

    /// Schedules a periodic action starting at `start` with the given
    /// period. The action returns `true` to keep the cycle alive and
    /// `false` to stop.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the simulation would never advance).
    pub fn every(
        &mut self,
        start: SimTime,
        period: SimDuration,
        action: impl FnMut(&mut Sim<M>) -> bool + 'static,
    ) -> EventId {
        assert!(!period.is_zero(), "every: period must be non-zero");
        fn tick<M>(
            sim: &mut Sim<M>,
            period: SimDuration,
            action: impl FnMut(&mut Sim<M>) -> bool + 'static,
        ) {
            let mut action = action;
            if action(sim) {
                sim.schedule_in(period, move |sim| tick(sim, period, action));
            }
        }
        self.schedule_at(start, move |sim| tick(sim, period, action))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every unit test below runs on both schedulers: the contract is the
    /// engine's, not one implementation's.
    fn both(f: impl Fn(SchedulerKind)) {
        f(SchedulerKind::BinaryHeap);
        f(SchedulerKind::Calendar);
    }

    #[test]
    fn events_run_in_time_order() {
        both(|kind| {
            let mut sim = Sim::with_scheduler(Vec::new(), kind);
            sim.schedule_at(SimTime::from_millis(3), |s| s.model_mut().push(3));
            sim.schedule_at(SimTime::from_millis(1), |s| s.model_mut().push(1));
            sim.schedule_at(SimTime::from_millis(2), |s| s.model_mut().push(2));
            sim.run();
            assert_eq!(sim.model(), &[1, 2, 3]);
            assert_eq!(sim.now(), SimTime::from_millis(3));
        });
    }

    #[test]
    fn ties_break_fifo() {
        both(|kind| {
            let mut sim = Sim::with_scheduler(Vec::new(), kind);
            let t = SimTime::from_millis(1);
            for i in 0..10 {
                sim.schedule_at(t, move |s| s.model_mut().push(i));
            }
            sim.run();
            assert_eq!(sim.model(), &(0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn scheduler_fifo_contract() {
        // The raw Scheduler contract, independent of Sim: equal-time
        // entries pop in push (seq) order, on both implementations.
        let mut heap = BinaryHeapScheduler::new();
        let mut cal = CalendarQueue::new();
        let t = SimTime::from_micros(7);
        for seq in 0..32u64 {
            let entry = SchedEntry {
                at: t,
                seq,
                key: SlabKey {
                    slot: seq as u32,
                    gen: 0,
                },
            };
            heap.push(entry);
            cal.push(entry);
        }
        for seq in 0..32u64 {
            assert_eq!(heap.pop().unwrap().seq, seq, "heap FIFO at equal time");
            assert_eq!(cal.pop().unwrap().seq, seq, "calendar FIFO at equal time");
        }
    }

    #[test]
    fn events_can_schedule_events() {
        both(|kind| {
            let mut sim = Sim::with_scheduler(0u64, kind);
            sim.schedule_in(SimDuration::from_millis(1), |s| {
                *s.model_mut() += 1;
                s.schedule_in(SimDuration::from_millis(1), |s| {
                    *s.model_mut() += 10;
                });
            });
            sim.run();
            assert_eq!(*sim.model(), 11);
            assert_eq!(sim.now(), SimTime::from_millis(2));
            assert_eq!(sim.events_executed(), 2);
        });
    }

    #[test]
    fn cancel_prevents_execution() {
        both(|kind| {
            let mut sim = Sim::with_scheduler(0u64, kind);
            let id = sim.schedule_in(SimDuration::from_millis(1), |s| *s.model_mut() += 1);
            assert!(sim.cancel(id));
            assert!(!sim.cancel(id), "double cancel reports false");
            sim.run();
            assert_eq!(*sim.model(), 0);
            assert_eq!(sim.events_executed(), 0);
        });
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Sim<()> = Sim::new(());
        assert!(!sim.cancel(EventId(12345)));
    }

    #[test]
    fn cancel_after_execution_is_false_even_when_slot_is_reused() {
        both(|kind| {
            let mut sim = Sim::with_scheduler(0u64, kind);
            let id = sim.schedule_at(SimTime::from_millis(1), |s| *s.model_mut() += 1);
            sim.run();
            // The slot is free again; a new event may take it.
            let id2 = sim.schedule_at(SimTime::from_millis(2), |s| *s.model_mut() += 10);
            assert!(!sim.cancel(id), "stale id must not cancel the new event");
            assert!(sim.cancel(id2));
            sim.run();
            assert_eq!(*sim.model(), 1);
        });
    }

    #[test]
    fn run_until_stops_at_deadline() {
        both(|kind| {
            let mut sim = Sim::with_scheduler(Vec::new(), kind);
            for ms in [1u64, 2, 3, 4, 5] {
                sim.schedule_at(SimTime::from_millis(ms), move |s| s.model_mut().push(ms));
            }
            sim.run_until(SimTime::from_millis(3));
            assert_eq!(sim.model(), &[1, 2, 3]);
            assert_eq!(sim.now(), SimTime::from_millis(3));
            assert_eq!(sim.events_pending(), 2);
            sim.run();
            assert_eq!(sim.model(), &[1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        both(|kind| {
            let mut sim: Sim<()> = Sim::with_scheduler((), kind);
            sim.run_until(SimTime::from_secs(9));
            assert_eq!(sim.now(), SimTime::from_secs(9));
        });
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        both(|kind| {
            let mut sim = Sim::with_scheduler(0u64, kind);
            let id = sim.schedule_at(SimTime::from_millis(1), |s| *s.model_mut() += 1);
            sim.schedule_at(SimTime::from_millis(2), |s| *s.model_mut() += 10);
            sim.cancel(id);
            sim.run_until(SimTime::from_millis(5));
            assert_eq!(*sim.model(), 10);
        });
    }

    #[test]
    fn schedule_behind_a_peeked_cursor_still_pops_first() {
        // run_until peeks (advancing the calendar cursor to a far-future
        // bucket); a later schedule at an earlier instant must still pop
        // before it.
        both(|kind| {
            let mut sim = Sim::with_scheduler(Vec::new(), kind);
            sim.schedule_at(SimTime::from_millis(100), |s| s.model_mut().push(100u64));
            sim.run_until(SimTime::from_millis(1)); // peeks, pops nothing
            sim.schedule_at(SimTime::from_millis(50), |s| s.model_mut().push(50));
            sim.run();
            assert_eq!(sim.model(), &[50, 100]);
        });
    }

    #[test]
    fn periodic_until_false() {
        both(|kind| {
            let mut sim = Sim::with_scheduler(0u64, kind);
            sim.every(SimTime::from_millis(5), SimDuration::from_millis(5), |s| {
                *s.model_mut() += 1;
                *s.model() < 4
            });
            sim.run();
            assert_eq!(*sim.model(), 4);
            assert_eq!(sim.now(), SimTime::from_millis(20));
        });
    }

    #[test]
    fn calendar_resize_policy_tracks_population() {
        let mut cal = CalendarQueue::new();
        let key = SlabKey { slot: 0, gen: 0 };
        for seq in 0..1024u64 {
            cal.push(SchedEntry {
                at: SimTime::from_nanos(seq * 800),
                seq,
                key,
            });
        }
        assert!(
            cal.bucket_count() >= 512,
            "grown to ~one event per bucket, got {}",
            cal.bucket_count()
        );
        for _ in 0..1020 {
            cal.pop();
        }
        assert!(
            cal.bucket_count() <= MIN_BUCKETS * 2,
            "shrunk back down, got {}",
            cal.bucket_count()
        );
        assert_eq!(cal.len(), 4);
    }

    #[test]
    fn calendar_handles_sparse_far_future_events() {
        // Events a calendar "year" apart force the direct-search jump.
        let mut cal = CalendarQueue::new();
        let key = SlabKey { slot: 0, gen: 0 };
        let times: Vec<u64> = (0..6).map(|i| i * i * 1_000_000_000 + 13).collect();
        for (seq, &ns) in times.iter().enumerate() {
            cal.push(SchedEntry {
                at: SimTime::from_nanos(ns),
                seq: seq as u64,
                key,
            });
        }
        let mut popped = Vec::new();
        while let Some(e) = cal.pop() {
            popped.push(e.at.as_nanos());
        }
        assert_eq!(popped, times);
    }

    #[test]
    fn sched_stats_track_growth_and_occupancy() {
        let mut sim: Sim<()> = Sim::with_scheduler((), SchedulerKind::Calendar);
        for i in 0..100u64 {
            sim.schedule_at(SimTime::from_micros(i), |_| {});
        }
        let stats = sim.sched_stats();
        assert_eq!(stats.max_pending, 100);
        assert!(stats.grows >= 1, "100 pending forces at least one double");
        assert!(stats.buckets > MIN_BUCKETS as u64);
        assert!(stats.bucket_width_ns > 0);
        sim.run();
        let drained = sim.sched_stats();
        assert!(drained.shrinks >= 1, "draining shrinks the calendar");
        assert_eq!(drained.max_pending, 100, "high-water survives the drain");

        // The heap oracle keeps occupancy only.
        let mut heap: Sim<()> = Sim::with_scheduler((), SchedulerKind::BinaryHeap);
        for i in 0..10u64 {
            heap.schedule_at(SimTime::from_micros(i), |_| {});
        }
        let hs = heap.sched_stats();
        assert_eq!(hs.max_pending, 10);
        assert_eq!(
            (hs.grows, hs.shrinks, hs.buckets, hs.bucket_width_ns),
            (0, 0, 0, 0)
        );
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_at(SimTime::from_millis(5), |_| {});
        sim.run();
        sim.schedule_at(SimTime::from_millis(1), |_| {});
    }
}
