//! # hydra-sim — discrete-event simulation kernel
//!
//! The foundation of the HYDRA reproduction: a deterministic discrete-event
//! simulator with nanosecond-resolution virtual time, a seedable PCG random
//! number generator with stream splitting, and the measurement primitives
//! (samples, histograms, time-weighted gauges) that the paper's experiment
//! harness needs.
//!
//! The original HYDRA system ran on real hardware — programmable NICs, a
//! GPU, Linux kernel modules. This reproduction replaces the testbed with a
//! simulated machine; every hardware and network model in the workspace is
//! driven by the [`Sim`] engine defined here.
//!
//! ## Example
//!
//! ```
//! use hydra_sim::{Sim, time::{SimDuration, SimTime}};
//!
//! // A model can be any type; events are closures over `&mut Sim<M>`.
//! #[derive(Debug, Default)]
//! struct World { packets: u32 }
//!
//! let mut sim = Sim::new(World::default());
//! sim.every(SimTime::ZERO, SimDuration::from_millis(5), |sim| {
//!     sim.model_mut().packets += 1;
//!     sim.model().packets < 10
//! });
//! sim.run();
//! assert_eq!(sim.model().packets, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{
    BinaryHeapScheduler, CalendarQueue, EventId, SchedEntry, SchedStats, Scheduler, SchedulerKind,
    Sim,
};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultParseError, FaultPlan};
pub use rng::DetRng;
pub use slab::{Slab, SlabKey};
pub use stats::{Histogram, Samples, Summary, TimeWeighted};
pub use time::{SimDuration, SimTime};
