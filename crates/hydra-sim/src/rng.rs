//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of the simulation (scheduler noise, switch
//! queueing, workload arrival jitter) draws from a [`DetRng`], a PCG-XSH-RR
//! generator implemented here so that traces are reproducible regardless of
//! external crate versions. Child streams can be split off deterministically
//! with [`DetRng::split`] so independent subsystems do not perturb each
//! other's sequences when the model topology changes.

/// A deterministic PCG-XSH-RR 64/32 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use hydra_sim::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl DetRng {
    /// Creates a generator from a seed, using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e39cb94b95bdb)
    }

    /// Creates a generator from a seed and an explicit stream selector.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = DetRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Splits off an independent child generator identified by `tag`.
    ///
    /// The child sequence depends only on this generator's seed/stream and
    /// on `tag`, not on how many numbers the parent has produced, so model
    /// components can be wired up in any order without changing each
    /// other's randomness.
    pub fn split(&self, tag: u64) -> DetRng {
        // Mix the parent identity with the tag through splitmix64.
        let mut z = self
            .inc
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(tag)
            .wrapping_add(0x2545f4914f6cdd1d);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        DetRng::with_stream(z, z.rotate_left(17) ^ tag)
    }

    /// Produces the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Produces the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = u128::from(x).wrapping_mul(u128::from(bound));
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo must not exceed hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Normally distributed value (Box–Muller transform).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (std::f64::consts::TAU * u2).cos()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_is_independent_of_parent_position() {
        let parent = DetRng::new(99);
        let mut advanced = parent.clone();
        for _ in 0..10 {
            advanced.next_u64();
        }
        let mut c1 = parent.split(5);
        let mut c2 = advanced.split(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_tags_differ() {
        let parent = DetRng::new(99);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::new(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = DetRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.range_u64(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = DetRng::new(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exp_mean_is_plausible() {
        let mut rng = DetRng::new(8);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exp(3.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        DetRng::new(1).next_below(0);
    }
}
