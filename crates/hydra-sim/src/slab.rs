//! A generation-stamped slab allocator.
//!
//! [`Slab`] hands out dense `u32` slots from a free list, so a workload
//! that continuously inserts and removes values (the steady state of the
//! event loop) reuses the same few cache lines instead of hitting the
//! global allocator on every operation. Each slot carries a **generation
//! counter** bumped on every reuse: a [`SlabKey`] addresses one specific
//! occupancy of a slot, so a stale key (the value was removed, the slot
//! recycled) misses instead of aliasing the new occupant. That property is
//! what lets the event engine cancel events in O(1) without a `HashSet`
//! on the hot path.

use std::fmt;

/// A key addressing one specific occupancy of a slab slot.
///
/// Packs into a `u64` (generation in the high 32 bits) via
/// [`SlabKey::pack`] for APIs that want an opaque integer handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlabKey {
    /// Dense slot index.
    pub slot: u32,
    /// Generation of the slot at insertion time.
    pub gen: u32,
}

impl SlabKey {
    /// Packs the key into an opaque `u64` (generation high, slot low).
    pub const fn pack(self) -> u64 {
        ((self.gen as u64) << 32) | self.slot as u64
    }

    /// Inverse of [`SlabKey::pack`].
    pub const fn unpack(raw: u64) -> Self {
        SlabKey {
            slot: (raw & 0xffff_ffff) as u32,
            gen: (raw >> 32) as u32,
        }
    }
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A dense slab with stable `u32` slots and a free list.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("live", &self.live)
            .field("capacity", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub const fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty slab with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a value, reusing a free slot when one exists.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.gen = s.gen.wrapping_add(1);
            s.value = Some(value);
            SlabKey { slot, gen: s.gen }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slab overflow");
            self.slots.push(Slot {
                gen: 0,
                value: Some(value),
            });
            SlabKey { slot, gen: 0 }
        }
    }

    fn slot_if_current(&self, key: SlabKey) -> Option<&Slot<T>> {
        self.slots
            .get(key.slot as usize)
            .filter(|s| s.gen == key.gen && s.value.is_some())
    }

    /// Shared access to the value at `key`, if its occupancy is current.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        self.slot_if_current(key).and_then(|s| s.value.as_ref())
    }

    /// Exclusive access to the value at `key`, if its occupancy is
    /// current.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.slots.get_mut(key.slot as usize) {
            Some(s) if s.gen == key.gen => s.value.as_mut(),
            _ => None,
        }
    }

    /// True when `key` addresses a live value.
    pub fn contains(&self, key: SlabKey) -> bool {
        self.slot_if_current(key).is_some()
    }

    /// Removes and returns the value at `key`; `None` for stale keys.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let s = self.slots.get_mut(key.slot as usize)?;
        if s.gen != key.gen || s.value.is_none() {
            return None;
        }
        let value = s.value.take();
        self.free.push(key.slot);
        self.live -= 1;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double remove misses");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn recycled_slot_bumps_generation() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        slab.remove(a);
        let b = slab.insert(2u32);
        assert_eq!(b.slot, a.slot, "slot is reused");
        assert_ne!(b.gen, a.gen, "generation advanced");
        assert_eq!(slab.get(a), None, "stale key misses the new occupant");
        assert_eq!(slab.get(b), Some(&2));
    }

    #[test]
    fn steady_state_reuses_capacity() {
        let mut slab = Slab::new();
        for round in 0..100u32 {
            let keys: Vec<SlabKey> = (0..8).map(|i| slab.insert(round * 8 + i)).collect();
            for k in keys {
                assert!(slab.remove(k).is_some());
            }
        }
        assert!(slab.capacity() <= 8, "churn stays within 8 slots");
        assert!(slab.is_empty());
    }

    #[test]
    fn key_packs_and_unpacks() {
        let key = SlabKey {
            slot: 0xdead,
            gen: 0xbeef,
        };
        assert_eq!(SlabKey::unpack(key.pack()), key);
    }
}
