//! Simulation time.
//!
//! All HYDRA experiments run on a single virtual clock with nanosecond
//! resolution. [`SimTime`] is an absolute instant, [`SimDuration`] a span
//! between instants. Both are thin newtypes over `u64` nanoseconds so that
//! hardware models can do exact integer arithmetic (no floating-point drift
//! across a ten-minute simulated run).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use hydra_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use hydra_sim::time::SimDuration;
///
/// let d = SimDuration::from_micros(3) * 4;
/// assert_eq!(d.as_nanos(), 12_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the instant as raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Renders the instant as fractional microseconds (`"12.345"`) using
    /// pure integer arithmetic — the unit the Chrome trace-event format's
    /// `ts` field expects, rendered deterministically (no floating point).
    pub fn as_micros_display(self) -> String {
        format!("{}.{:03}", self.0 / 1_000, self.0 % 1_000)
    }

    /// Returns the instant as (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`]: returns zero when
    /// `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond and saturating on overflow or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Returns the span as raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the span as (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t0 = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
        assert_eq!(t1.duration_since(t0), d);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_nanos(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn from_secs_f64_handles_edges() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
