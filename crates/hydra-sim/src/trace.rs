//! Lightweight event tracing.
//!
//! Models record [`TraceRecord`]s into a [`Tracer`] for debugging and for
//! determinism tests (two runs with the same seed must produce identical
//! traces). Tracing is off by default and costs one branch when disabled.

use std::fmt;

use crate::time::SimTime;

/// Category of a trace record, used for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// CPU execution and scheduling.
    Cpu,
    /// Cache and memory-subsystem activity.
    Memory,
    /// Bus and DMA transactions.
    Bus,
    /// Network packets.
    Net,
    /// HYDRA runtime operations (deployment, channels).
    Runtime,
    /// Application-level milestones.
    App,
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceCategory::Cpu => "cpu",
            TraceCategory::Memory => "mem",
            TraceCategory::Bus => "bus",
            TraceCategory::Net => "net",
            TraceCategory::Runtime => "rt",
            TraceCategory::App => "app",
        };
        f.write_str(s)
    }
}

/// One trace record: a timestamped, categorized message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the record was emitted.
    pub at: SimTime,
    /// What subsystem emitted it.
    pub category: TraceCategory,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.at, self.category, self.message)
    }
}

/// A bounded in-memory trace buffer.
///
/// # Examples
///
/// ```
/// use hydra_sim::trace::{TraceCategory, Tracer};
/// use hydra_sim::time::SimTime;
///
/// let mut t = Tracer::enabled(16);
/// t.emit(SimTime::ZERO, TraceCategory::App, "hello".into());
/// assert_eq!(t.records().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl Tracer {
    /// Creates a disabled tracer; [`Tracer::emit`] becomes a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Creates an enabled tracer retaining at most `capacity` records
    /// (oldest records are dropped first and counted).
    pub fn enabled(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            capacity: capacity.max(1),
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether records are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits a record if enabled.
    pub fn emit(&mut self, at: SimTime, category: TraceCategory, message: String) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.remove(0);
            self.dropped += 1;
        }
        self.records.push(TraceRecord {
            at,
            category,
            message,
        });
    }

    /// All retained records in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records of one category.
    pub fn by_category(&self, category: TraceCategory) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.category == category)
            .collect()
    }

    /// Number of records dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all retained records (the drop counter is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_retains_nothing() {
        let mut t = Tracer::disabled();
        t.emit(SimTime::ZERO, TraceCategory::Cpu, "x".into());
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut t = Tracer::enabled(2);
        for i in 0..4 {
            t.emit(SimTime::from_nanos(i), TraceCategory::App, format!("{i}"));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].message, "2");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn category_filter() {
        let mut t = Tracer::enabled(8);
        t.emit(SimTime::ZERO, TraceCategory::Cpu, "a".into());
        t.emit(SimTime::ZERO, TraceCategory::Net, "b".into());
        t.emit(SimTime::ZERO, TraceCategory::Cpu, "c".into());
        let cpu = t.by_category(TraceCategory::Cpu);
        assert_eq!(cpu.len(), 2);
        assert_eq!(cpu[1].message, "c");
    }

    #[test]
    fn display_formats() {
        let r = TraceRecord {
            at: SimTime::from_millis(1),
            category: TraceCategory::Bus,
            message: "dma".into(),
        };
        assert_eq!(r.to_string(), "[1.000ms bus] dma");
    }
}
