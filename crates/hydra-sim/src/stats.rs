//! Measurement primitives for experiments.
//!
//! The paper's tables report medians, averages and standard deviations of
//! sampled quantities (jitter, CPU utilization, L2 miss rates); its figures
//! are histograms and CDFs. This module provides the accumulators that the
//! experiment harness feeds: [`Samples`] for exact order statistics,
//! [`Histogram`] for binned distributions, and [`TimeWeighted`] for
//! utilization-style gauges integrated over simulated time.

use crate::time::{SimDuration, SimTime};

/// An exact sample set with summary statistics.
///
/// Stores every observation, so medians and percentiles are exact — the
/// experiment runs in this reproduction collect at most a few hundred
/// thousand samples.
///
/// # Examples
///
/// ```
/// use hydra_sim::stats::Samples;
///
/// let mut s = Samples::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// let sum = s.summary();
/// assert_eq!(sum.mean, 2.5);
/// assert_eq!(sum.median, 2.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
}

/// Summary statistics of a sample set: the columns of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of the two middle elements for even counts).
    pub median: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN observation is always an upstream
    /// bug and would silently poison every downstream statistic.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "Samples::record: NaN observation");
        self.values.push(value);
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Exact percentile in `[0, 100]` by linear interpolation.
    ///
    /// # Relation to `hydra_obs::Histogram::quantile`
    ///
    /// The workspace has two percentile estimators with deliberately
    /// different semantics:
    ///
    /// * **This one** keeps every observation and interpolates between
    ///   the two neighbouring order statistics at fractional rank
    ///   `p/100 · (n−1)` (the "linear between closest ranks" / R-7
    ///   definition). Exact, but O(n) memory and floating-point — for
    ///   the experiment harness, whose reports are rendered with
    ///   explicit rounding.
    /// * **`hydra_obs`'s** works on power-of-two bucket counts with a
    ///   ceiling *nearest rank* `⌈p·n/100⌉` and integer interpolation
    ///   between bucket bounds. Approximate (bucket-bound resolution),
    ///   but O(1) recording, fixed memory, and bit-for-bit deterministic
    ///   — for the telemetry plane, whose outputs are byte-diffed.
    ///
    /// Both always land in the same power-of-two bucket; the root
    /// `telemetry_timeline` tests cross-check that invariant.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.values.is_empty(), "percentile of empty sample set");
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN by invariant"));
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Computes the summary statistics.
    ///
    /// Returns the all-zero summary for an empty set.
    pub fn summary(&self) -> Summary {
        if self.values.is_empty() {
            return Summary::default();
        }
        let n = self.values.len();
        let mean = self.values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN by invariant"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            f64::midpoint(sorted[n / 2 - 1], sorted[n / 2])
        };
        Summary {
            count: n,
            mean,
            median,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
        }
    }

    /// Bins the observations into a [`Histogram`] spanning `[lo, hi)` with
    /// `bins` equal-width bins. Out-of-range observations land in the
    /// under-/overflow counters.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        for &v in &self.values {
            h.record(v);
        }
        h
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

/// A fixed-range, equal-width histogram with exact under/overflow counts.
///
/// # Examples
///
/// ```
/// use hydra_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(0.5);
/// h.record(9.5);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(9), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: bins must be positive");
        assert!(lo < hi, "Histogram: lo must be below hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let mut idx = ((value - self.lo) / width) as usize;
            // Guard against floating-point edge landing exactly on hi.
            if idx >= self.counts.len() {
                idx = self.counts.len() - 1;
            }
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The inclusive lower edge of bin `idx`.
    pub fn bin_lo(&self, idx: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * idx as f64
    }

    /// Iterates over `(bin_lo, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| (self.bin_lo(i), self.counts[i]))
    }

    /// The empirical CDF evaluated at each bin's *upper* edge, as fractions
    /// in `[0, 1]` of the total count (underflow included from the start).
    pub fn cdf(&self) -> Vec<f64> {
        let total = self.total.max(1) as f64;
        let mut acc = self.underflow;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

/// A gauge integrated over simulation time, e.g. "fraction of time the CPU
/// was busy".
///
/// Feed it level changes with [`TimeWeighted::set`]; query the
/// time-weighted mean over any window that ends at the current instant.
///
/// # Examples
///
/// ```
/// use hydra_sim::stats::TimeWeighted;
/// use hydra_sim::time::SimTime;
///
/// let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
/// g.set(SimTime::from_millis(2), 1.0); // busy from 2ms
/// let mean = g.mean_until(SimTime::from_millis(4));
/// assert!((mean - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    started: SimTime,
    last_change: SimTime,
    level: f64,
    weighted_sum: f64,
}

impl TimeWeighted {
    /// Creates a gauge with an initial level at `start`.
    pub fn new(start: SimTime, level: f64) -> Self {
        TimeWeighted {
            started: start,
            last_change: start,
            level,
            weighted_sum: 0.0,
        }
    }

    /// Sets a new level at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous change.
    pub fn set(&mut self, at: SimTime, level: f64) {
        let span = at.duration_since(self.last_change);
        self.weighted_sum += self.level * span.as_secs_f64();
        self.last_change = at;
        self.level = level;
    }

    /// Adds `delta` to the current level at instant `at`.
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let level = self.level + delta;
        self.set(at, level);
    }

    /// The current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The time-weighted mean of the level from creation until `now`.
    ///
    /// Returns the current level when no time has elapsed.
    pub fn mean_until(&self, now: SimTime) -> f64 {
        let total = now.saturating_duration_since(self.started).as_secs_f64();
        if total == 0.0 {
            return self.level;
        }
        let tail = now
            .saturating_duration_since(self.last_change)
            .as_secs_f64();
        (self.weighted_sum + self.level * tail) / total
    }

    /// Resets the accumulation window to start at `now`, keeping the level.
    pub fn reset(&mut self, now: SimTime) {
        self.started = now;
        self.last_change = now;
        self.weighted_sum = 0.0;
    }
}

/// A monotonically increasing event counter with rate queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.count
    }

    /// Events per second over the window `[start, now]`.
    ///
    /// Returns 0 for an empty window.
    pub fn rate(&self, start: SimTime, now: SimTime) -> f64 {
        let span = now.saturating_duration_since(start);
        if span.is_zero() {
            0.0
        } else {
            self.count as f64 / span.as_secs_f64()
        }
    }
}

/// Periodic sampler helper: converts a stream of `(time, value)` samples
/// taken every `period` into a [`Samples`] set, mirroring the paper's
/// "samples were taken every 5 seconds" methodology.
#[derive(Debug, Clone)]
pub struct PeriodicSampler {
    period: SimDuration,
    next_due: SimTime,
    samples: Samples,
}

impl PeriodicSampler {
    /// Creates a sampler that first fires at `start + period`.
    pub fn new(start: SimTime, period: SimDuration) -> Self {
        PeriodicSampler {
            period,
            next_due: start + period,
            samples: Samples::new(),
        }
    }

    /// True if a sample is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Records `value` if due; advances the schedule. Returns whether a
    /// sample was taken.
    pub fn offer(&mut self, now: SimTime, value: f64) -> bool {
        if !self.due(now) {
            return false;
        }
        self.samples.record(value);
        while self.next_due <= now {
            self.next_due += self.period;
        }
        true
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &Samples {
        &self.samples
    }

    /// Consumes the sampler, returning its samples.
    pub fn into_samples(self) -> Samples {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_odd_and_even_medians() {
        let s: Samples = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(s.summary().median, 2.0);
        let s: Samples = [4.0, 1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.summary().median, 2.5);
    }

    #[test]
    fn summary_std_dev_matches_hand_computation() {
        let s: Samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        let sum = s.summary();
        assert_eq!(sum.mean, 5.0);
        // Sample variance with n-1 = 32/7.
        assert!((sum.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(sum.min, 2.0);
        assert_eq!(sum.max, 9.0);
        assert_eq!(sum.count, 8);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(Samples::new().summary(), Summary::default());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Samples::new().record(f64::NAN);
    }

    #[test]
    fn percentile_interpolates() {
        let s: Samples = [10.0, 20.0, 30.0, 40.0, 50.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 50.0);
        assert_eq!(s.percentile(50.0), 30.0);
        assert_eq!(s.percentile(25.0), 20.0);
        assert_eq!(s.percentile(12.5), 15.0);
    }

    #[test]
    fn histogram_binning_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 42.0] {
            h.record(v);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 2); // 0.0, 1.9
        assert_eq!(h.bin_count(1), 1); // 2.0
        assert_eq!(h.bin_count(4), 1); // 9.9
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_cdf_reaches_one_without_overflow() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for v in [0.5, 1.5, 2.5, 3.5] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert_eq!(cdf, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn histogram_bin_edges() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_lo(0), 2.0);
        assert_eq!(h.bin_lo(3), 3.5);
    }

    #[test]
    fn time_weighted_mean() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
        g.set(SimTime::from_secs(1), 1.0);
        g.set(SimTime::from_secs(3), 0.0);
        // busy 2s of 4s
        assert!((g.mean_until(SimTime::from_secs(4)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_reset() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 1.0);
        g.reset(SimTime::from_secs(10));
        assert!((g.mean_until(SimTime::from_secs(20)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(500);
        assert_eq!(c.rate(SimTime::ZERO, SimTime::from_secs(5)), 100.0);
        assert_eq!(c.rate(SimTime::ZERO, SimTime::ZERO), 0.0);
    }

    #[test]
    fn periodic_sampler_respects_period() {
        let mut s = PeriodicSampler::new(SimTime::ZERO, SimDuration::from_secs(5));
        assert!(!s.offer(SimTime::from_secs(4), 1.0));
        assert!(s.offer(SimTime::from_secs(5), 2.0));
        assert!(!s.offer(SimTime::from_secs(9), 3.0));
        assert!(s.offer(SimTime::from_secs(10), 4.0));
        assert_eq!(s.samples().values(), &[2.0, 4.0]);
    }

    #[test]
    fn periodic_sampler_skips_missed_slots() {
        let mut s = PeriodicSampler::new(SimTime::ZERO, SimDuration::from_secs(5));
        assert!(s.offer(SimTime::from_secs(17), 1.0));
        // Next due should be 20s, not 10s.
        assert!(!s.offer(SimTime::from_secs(19), 2.0));
        assert!(s.offer(SimTime::from_secs(20), 3.0));
    }
}
