//! Deterministic fault-injection plane.
//!
//! A [`FaultPlan`] is a sim-time schedule of device faults — crashes,
//! transient firmware stalls, link loss-bursts, and descriptor-ring
//! exhaustion — that device models consume through per-device
//! [`FaultInjector`]s. Everything is a pure function of the plan's seed
//! and event list: the stall jitter is drawn from a [`DetRng`] stream
//! split per device *at construction time*, so two injectors built from
//! the same plan behave byte-identically no matter how they are queried.
//!
//! Plans have a canonical text form (see [`FaultPlan::parse`] /
//! [`FaultPlan::render`]) so a schedule can be committed to the repo and
//! replayed by CI:
//!
//! ```text
//! # NIC dies two milliseconds in.
//! seed 42
//! at 500us device 1 stall 200us
//! at 1ms device 1 loss-burst 3
//! at 2ms device 1 crash
//! ```

use std::fmt;

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Extra stall time drawn per stall event, as a fraction of the declared
/// duration: jitter is uniform in `[0, duration / JITTER_DIVISOR]`.
const JITTER_DIVISOR: u64 = 8;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device dies and never comes back (fail-stop).
    Crash,
    /// The device's firmware stalls: work arriving inside the stall
    /// window pays the remaining window (plus deterministic jitter) as
    /// extra latency.
    Stall {
        /// Nominal length of the stall window.
        duration: SimDuration,
    },
    /// The next `frames` receive frames are lost on the wire.
    LossBurst {
        /// How many consecutive frames to drop.
        frames: u32,
    },
    /// `slots` descriptor-ring slots are wedged from this instant on,
    /// shrinking the usable ring.
    RingExhaustion {
        /// How many ring slots become unusable.
        slots: usize,
    },
}

impl FaultKind {
    /// Stable keyword used in the schedule text form.
    fn keyword(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Stall { .. } => "stall",
            FaultKind::LossBurst { .. } => "loss-burst",
            FaultKind::RingExhaustion { .. } => "ring-exhaustion",
        }
    }
}

/// One scheduled fault: `kind` strikes `device` at sim-time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// Registry index of the afflicted device.
    pub device: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A schedule-parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// 1-based line number in the schedule text.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault schedule line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FaultParseError {}

/// A deterministic sim-time fault schedule for a whole device registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given jitter seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The jitter seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, sorted by `(at, device)` insertion-stably.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event, keeping the schedule sorted by `(at, device)`.
    pub fn push(&mut self, event: FaultEvent) {
        let pos = self
            .events
            .partition_point(|e| (e.at, e.device) <= (event.at, event.device));
        self.events.insert(pos, event);
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with_event(mut self, at: SimTime, device: usize, kind: FaultKind) -> Self {
        self.push(FaultEvent { at, device, kind });
        self
    }

    /// Parses the canonical text form. Blank lines and `#` comments are
    /// ignored; the grammar per line is either `seed <n>` or
    /// `at <dur> device <n> crash|stall <dur>|loss-burst <n>|ring-exhaustion <n>`
    /// where `<dur>` is an integer with an `ns`/`us`/`ms`/`s` suffix.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultParseError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, FaultParseError> {
        let mut plan = FaultPlan::new(0);
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let bad = |message: String| FaultParseError { line, message };
            let stripped = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let tokens: Vec<&str> = stripped.split_whitespace().collect();
            if tokens.is_empty() {
                continue;
            }
            match tokens[0] {
                "seed" => {
                    let [_, value] = tokens[..] else {
                        return Err(bad("expected `seed <n>`".into()));
                    };
                    plan.seed = value
                        .parse()
                        .map_err(|_| bad(format!("bad seed {value:?}")))?;
                }
                "at" => {
                    if tokens.len() < 5 || tokens[2] != "device" {
                        return Err(bad("expected `at <dur> device <n> <fault> [arg]`".into()));
                    }
                    let at = SimTime::ZERO + parse_duration(tokens[1]).map_err(&bad)?;
                    let device: usize = tokens[3]
                        .parse()
                        .map_err(|_| bad(format!("bad device index {:?}", tokens[3])))?;
                    let kind = match (tokens[4], tokens.get(5)) {
                        ("crash", None) => FaultKind::Crash,
                        ("stall", Some(d)) => FaultKind::Stall {
                            duration: parse_duration(d).map_err(&bad)?,
                        },
                        ("loss-burst", Some(n)) => FaultKind::LossBurst {
                            frames: n
                                .parse()
                                .map_err(|_| bad(format!("bad frame count {n:?}")))?,
                        },
                        ("ring-exhaustion", Some(n)) => FaultKind::RingExhaustion {
                            slots: n
                                .parse()
                                .map_err(|_| bad(format!("bad slot count {n:?}")))?,
                        },
                        (other, _) => {
                            return Err(bad(format!("unknown or malformed fault {other:?}")));
                        }
                    };
                    if tokens.len()
                        > if matches!(kind, FaultKind::Crash) {
                            5
                        } else {
                            6
                        }
                    {
                        return Err(bad("trailing tokens after fault".into()));
                    }
                    plan.push(FaultEvent { at, device, kind });
                }
                other => {
                    return Err(bad(format!("unknown directive {other:?}")));
                }
            }
        }
        Ok(plan)
    }

    /// Renders the canonical text form; `parse(render())` round-trips.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("seed {}\n", self.seed);
        for e in &self.events {
            out.push_str(&format!(
                "at {} device {} {}",
                render_duration(e.at.duration_since(SimTime::ZERO)),
                e.device,
                e.kind.keyword()
            ));
            match e.kind {
                FaultKind::Crash => {}
                FaultKind::Stall { duration } => {
                    out.push(' ');
                    out.push_str(&render_duration(duration));
                }
                FaultKind::LossBurst { frames } => {
                    out.push_str(&format!(" {frames}"));
                }
                FaultKind::RingExhaustion { slots } => {
                    out.push_str(&format!(" {slots}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Builds the injector for one device. All jitter is drawn here, from
    /// a stream split off `(seed, device)`, so the injector's answers are
    /// pure functions of `now` (except the explicitly stateful loss-burst
    /// credits).
    #[must_use]
    pub fn injector(&self, device: usize) -> FaultInjector {
        let mut rng = DetRng::new(self.seed).split(device as u64);
        let mut crash_at = None;
        let mut stalls = Vec::new();
        let mut bursts = Vec::new();
        let mut rings = Vec::new();
        for e in self.events.iter().filter(|e| e.device == device) {
            match e.kind {
                FaultKind::Crash => {
                    if crash_at.is_none() {
                        crash_at = Some(e.at);
                    }
                }
                FaultKind::Stall { duration } => {
                    let jitter_bound = duration.as_nanos() / JITTER_DIVISOR;
                    let jitter = SimDuration::from_nanos(if jitter_bound == 0 {
                        0
                    } else {
                        rng.next_below(jitter_bound + 1)
                    });
                    stalls.push((e.at, e.at + duration + jitter));
                }
                FaultKind::LossBurst { frames } => {
                    bursts.push((e.at, frames));
                }
                FaultKind::RingExhaustion { slots } => {
                    rings.push((e.at, slots));
                }
            }
        }
        FaultInjector {
            device,
            crash_at,
            stalls,
            bursts,
            rings,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn parse_duration(token: &str) -> Result<SimDuration, String> {
    let (digits, mult) = if let Some(d) = token.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = token.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = token.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = token.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return Err(format!("duration {token:?} needs an ns/us/ms/s suffix"));
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration {token:?}"))?;
    Ok(SimDuration::from_nanos(value.saturating_mul(mult)))
}

fn render_duration(d: SimDuration) -> String {
    let ns = d.as_nanos();
    if ns == 0 {
        "0ns".into()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// The per-device view of a [`FaultPlan`], queried by a device model on
/// its hot paths. Built by [`FaultPlan::injector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjector {
    device: usize,
    crash_at: Option<SimTime>,
    /// Half-open stall windows `[start, end)`, jitter already applied.
    stalls: Vec<(SimTime, SimTime)>,
    /// Loss bursts as `(start, remaining credits)`.
    bursts: Vec<(SimTime, u32)>,
    /// Ring exhaustion as `(start, wedged slots)`.
    rings: Vec<(SimTime, usize)>,
}

impl FaultInjector {
    /// An injector that never fires (for devices outside the plan).
    #[must_use]
    pub fn inert(device: usize) -> Self {
        FaultPlan::new(0).injector(device)
    }

    /// Which device this injector watches.
    #[must_use]
    pub fn device(&self) -> usize {
        self.device
    }

    /// Whether the device has fail-stopped by `now`.
    #[must_use]
    pub fn crashed(&self, now: SimTime) -> bool {
        self.crash_at.is_some_and(|at| at <= now)
    }

    /// When the device crashes, if the plan ever kills it.
    #[must_use]
    pub fn crash_time(&self) -> Option<SimTime> {
        self.crash_at
    }

    /// Extra latency work arriving at `now` must absorb: the remainder of
    /// the longest active stall window (zero outside all windows).
    #[must_use]
    pub fn stall_penalty(&self, now: SimTime) -> SimDuration {
        self.stalls
            .iter()
            .filter(|&&(start, end)| start <= now && now < end)
            .map(|&(_, end)| end.duration_since(now))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Consumes one loss-burst credit if a burst that started at or
    /// before `now` still has frames left; `true` means the caller must
    /// drop the frame. This is the injector's only stateful query.
    pub fn drop_frame(&mut self, now: SimTime) -> bool {
        for (start, remaining) in &mut self.bursts {
            if *start <= now && *remaining > 0 {
                *remaining -= 1;
                return true;
            }
        }
        false
    }

    /// How many descriptor-ring slots are wedged at `now` (summed over
    /// all ring-exhaustion events that have struck).
    #[must_use]
    pub fn wedged_slots(&self, now: SimTime) -> usize {
        self.rings
            .iter()
            .filter(|&&(start, _)| start <= now)
            .map(|&(_, slots)| slots)
            .sum()
    }

    /// Whether any fault at all is active or pending — lets hot paths
    /// skip fault bookkeeping entirely for inert injectors.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.crash_at.is_none()
            && self.stalls.is_empty()
            && self.bursts.is_empty()
            && self.rings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plan() -> FaultPlan {
        FaultPlan::new(42)
            .with_event(SimTime::from_millis(2), 1, FaultKind::Crash)
            .with_event(
                SimTime::from_micros(500),
                1,
                FaultKind::Stall {
                    duration: SimDuration::from_micros(200),
                },
            )
            .with_event(
                SimTime::from_millis(1),
                1,
                FaultKind::LossBurst { frames: 3 },
            )
            .with_event(
                SimTime::from_millis(1),
                3,
                FaultKind::RingExhaustion { slots: 8 },
            )
    }

    #[test]
    fn events_stay_sorted() {
        let plan = demo_plan();
        let keys: Vec<(SimTime, usize)> = plan.events().iter().map(|e| (e.at, e.device)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn render_parse_round_trip() {
        let plan = demo_plan();
        let text = plan.render();
        let back = FaultPlan::parse(&text).expect("canonical text parses");
        assert_eq!(back, plan);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let text = "# a schedule\n\nseed 7\nat 1ms device 2 crash # boom\n";
        let plan = FaultPlan::parse(text).expect("parses");
        assert_eq!(plan.seed(), 7);
        assert_eq!(
            plan.events(),
            &[FaultEvent {
                at: SimTime::from_millis(1),
                device: 2,
                kind: FaultKind::Crash
            }]
        );
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = FaultPlan::parse("seed 1\nat 1ms device 2 melt\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("melt"), "{}", err.message);
        let err = FaultPlan::parse("at 1m device 2 crash\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("suffix"), "{}", err.message);
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = demo_plan();
        let a = plan.injector(1);
        let b = plan.injector(1);
        assert_eq!(a, b);
        // Different seed → different stall jitter (with overwhelming
        // probability for this seed pair).
        let other = FaultPlan::parse(&demo_plan().render().replacen("42", "43", 1))
            .expect("parses")
            .injector(1);
        assert_eq!(other.crash_time(), a.crash_time());
    }

    #[test]
    fn crash_and_stall_queries() {
        let inj = demo_plan().injector(1);
        assert!(!inj.crashed(SimTime::from_micros(1_999)));
        assert!(inj.crashed(SimTime::from_millis(2)));
        assert_eq!(inj.crash_time(), Some(SimTime::from_millis(2)));
        // Inside the stall window the penalty is positive and shrinks as
        // `now` advances; outside it is zero.
        let p0 = inj.stall_penalty(SimTime::from_micros(500));
        let p1 = inj.stall_penalty(SimTime::from_micros(600));
        assert!(p0 >= SimDuration::from_micros(200));
        assert!(p1 < p0);
        assert!(p0 <= SimDuration::from_micros(200 + 200 / 8));
        assert!(inj.stall_penalty(SimTime::from_micros(100)).is_zero());
        assert!(inj.stall_penalty(SimTime::from_millis(1)).is_zero());
    }

    #[test]
    fn loss_burst_credits_are_consumed() {
        let mut inj = demo_plan().injector(1);
        let t = SimTime::from_millis(1);
        assert!(!inj.drop_frame(SimTime::from_micros(999)));
        assert!(inj.drop_frame(t));
        assert!(inj.drop_frame(t));
        assert!(inj.drop_frame(t));
        assert!(!inj.drop_frame(t));
    }

    #[test]
    fn ring_exhaustion_accumulates() {
        let plan = demo_plan().with_event(
            SimTime::from_millis(3),
            3,
            FaultKind::RingExhaustion { slots: 4 },
        );
        let inj = plan.injector(3);
        assert_eq!(inj.wedged_slots(SimTime::ZERO), 0);
        assert_eq!(inj.wedged_slots(SimTime::from_millis(1)), 8);
        assert_eq!(inj.wedged_slots(SimTime::from_millis(3)), 12);
    }

    #[test]
    fn inert_injector() {
        let inj = FaultInjector::inert(5);
        assert!(inj.is_inert());
        assert!(!inj.crashed(SimTime::from_secs(100)));
        assert!(!demo_plan().injector(1).is_inert());
    }
}
