//! The host-side linker.
//!
//! Paper §4.2: "The host-based loader dynamically generates a linker file
//! adjusted by the returned address and links the Offcode object." The
//! [`Linker`] lays sections out at a device-provided base address, merges
//! symbol tables across objects, resolves remaining undefined symbols
//! against firmware exports (the pseudo-Offcode trick that bounds the
//! symbol set), applies relocations, and emits a ready-to-run
//! [`LinkedImage`].

use std::collections::HashMap;

use crate::object::{HofObject, RelocKind, SectionKind, Symbol, SymbolKind};

/// Exports offered by the target environment (firmware / pseudo-Offcodes).
///
/// # Examples
///
/// ```
/// use hydra_link::linker::ExportTable;
///
/// let mut exports = ExportTable::new();
/// exports.insert("hydra_heap_alloc", 0x1000);
/// assert_eq!(exports.resolve("hydra_heap_alloc"), Some(0x1000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExportTable {
    entries: HashMap<String, u64>,
}

impl ExportTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an export.
    pub fn insert(&mut self, name: &str, addr: u64) {
        self.entries.insert(name.to_owned(), addr);
    }

    /// Looks up an export.
    pub fn resolve(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// Number of exports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no exports are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A fully linked, position-fixed image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkedImage {
    /// Load address of the first byte.
    pub base: u64,
    /// The image contents (text + data; BSS is zero-filled at the end).
    pub bytes: Vec<u8>,
    /// Addresses of all global symbols defined by the image.
    pub symbols: HashMap<String, u64>,
    /// Total memory footprint including BSS.
    pub memory_size: u64,
}

impl LinkedImage {
    /// The address of a defined symbol.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }
}

/// Linker failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The same symbol is defined by two objects.
    DuplicateSymbol(String),
    /// A symbol could not be resolved anywhere.
    Unresolved(String),
    /// A PC-relative relocation target is out of ±2 GiB range.
    RelocOutOfRange {
        /// The symbol being referenced.
        symbol: String,
    },
    /// An input object failed validation.
    BadObject(&'static str),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::DuplicateSymbol(s) => write!(f, "duplicate symbol '{s}'"),
            LinkError::Unresolved(s) => write!(f, "unresolved symbol '{s}'"),
            LinkError::RelocOutOfRange { symbol } => {
                write!(f, "relocation to '{symbol}' out of range")
            }
            LinkError::BadObject(what) => write!(f, "bad input object: {what}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// The host-side linker.
#[derive(Debug, Clone, Default)]
pub struct Linker;

impl Linker {
    /// Creates a linker.
    pub fn new() -> Self {
        Linker
    }

    /// Links `objects` at `base`, resolving leftover undefined symbols via
    /// `exports`.
    ///
    /// # Errors
    ///
    /// Fails on invalid inputs, duplicate or unresolved symbols, and
    /// out-of-range PC-relative relocations.
    ///
    /// # Examples
    ///
    /// ```
    /// use hydra_link::linker::{ExportTable, Linker};
    /// use hydra_link::object::{HofObject, Section, Symbol, SymbolKind};
    ///
    /// let obj = HofObject::new("m")
    ///     .with_section(Section::text(vec![0; 8]))
    ///     .with_symbol(Symbol {
    ///         name: "entry".into(),
    ///         kind: SymbolKind::Defined { section: 0, offset: 0 },
    ///     });
    /// let image = Linker::new().link(&[obj], 0x4000, &ExportTable::new()).unwrap();
    /// assert_eq!(image.symbol("entry"), Some(0x4000));
    /// ```
    pub fn link(
        &self,
        objects: &[HofObject],
        base: u64,
        exports: &ExportTable,
    ) -> Result<LinkedImage, LinkError> {
        for obj in objects {
            obj.validate()
                .map_err(|_| LinkError::BadObject("validation failed"))?;
        }

        // Pass 1: lay out sections. Text of all objects first, then data,
        // then BSS, preserving object order within each class.
        let mut addr = base;
        // (object index, section index) -> absolute address
        let mut section_addr: HashMap<(usize, usize), u64> = HashMap::new();
        let mut image_len = 0u64; // bytes actually materialized (text+data)
        for class in [SectionKind::Text, SectionKind::Data, SectionKind::Bss] {
            for (oi, obj) in objects.iter().enumerate() {
                for (si, sec) in obj.sections.iter().enumerate() {
                    if sec.kind != class {
                        continue;
                    }
                    let align = u64::from(sec.align.max(1));
                    addr = addr.div_ceil(align) * align;
                    section_addr.insert((oi, si), addr);
                    addr += u64::from(sec.size);
                    if class != SectionKind::Bss {
                        image_len = addr - base;
                    }
                }
            }
        }
        let memory_size = addr - base;

        // Pass 2: global symbol table.
        let mut globals: HashMap<String, u64> = HashMap::new();
        for (oi, obj) in objects.iter().enumerate() {
            for Symbol { name, kind } in &obj.symbols {
                if let SymbolKind::Defined { section, offset } = kind {
                    let sec_base = section_addr[&(oi, *section as usize)];
                    if globals.contains_key(name) {
                        return Err(LinkError::DuplicateSymbol(name.clone()));
                    }
                    if exports.resolve(name).is_some() {
                        return Err(LinkError::DuplicateSymbol(name.clone()));
                    }
                    globals.insert(name.clone(), sec_base + u64::from(*offset));
                }
            }
        }

        // Pass 3: materialize the image.
        let mut bytes = vec![0u8; image_len as usize];
        for (oi, obj) in objects.iter().enumerate() {
            for (si, sec) in obj.sections.iter().enumerate() {
                if sec.kind == SectionKind::Bss {
                    continue;
                }
                let at = (section_addr[&(oi, si)] - base) as usize;
                bytes[at..at + sec.bytes.len()].copy_from_slice(&sec.bytes);
            }
        }

        // Pass 4: relocations.
        for (oi, obj) in objects.iter().enumerate() {
            for r in &obj.relocations {
                let sym = &obj.symbols[r.symbol as usize];
                let target = match &sym.kind {
                    SymbolKind::Defined { .. } => globals[&sym.name],
                    SymbolKind::Undefined => globals
                        .get(&sym.name)
                        .copied()
                        .or_else(|| exports.resolve(&sym.name))
                        .ok_or_else(|| LinkError::Unresolved(sym.name.clone()))?,
                };
                let target = (target as i64 + r.addend) as u64;
                let site_addr = section_addr[&(oi, r.section as usize)] + u64::from(r.offset);
                let site = (site_addr - base) as usize;
                match r.kind {
                    RelocKind::Abs64 => {
                        bytes[site..site + 8].copy_from_slice(&target.to_le_bytes());
                    }
                    RelocKind::Rel32 => {
                        let rel = target as i64 - (site_addr as i64 + 4);
                        let rel32 = i32::try_from(rel).map_err(|_| LinkError::RelocOutOfRange {
                            symbol: sym.name.clone(),
                        })?;
                        bytes[site..site + 4].copy_from_slice(&rel32.to_le_bytes());
                    }
                }
            }
        }

        Ok(LinkedImage {
            base,
            bytes,
            symbols: globals,
            memory_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Relocation, Section};

    fn defined(name: &str, section: u32, offset: u32) -> Symbol {
        Symbol {
            name: name.into(),
            kind: SymbolKind::Defined { section, offset },
        }
    }

    fn undefined(name: &str) -> Symbol {
        Symbol {
            name: name.into(),
            kind: SymbolKind::Undefined,
        }
    }

    #[test]
    fn single_object_layout() {
        let obj = HofObject::new("m")
            .with_section(Section::text(vec![1; 20]))
            .with_section(Section::data(vec![2; 10]))
            .with_section(Section::bss(100))
            .with_symbol(defined("entry", 0, 4))
            .with_symbol(defined("state", 2, 8));
        let img = Linker::new()
            .link(&[obj], 0x1000, &ExportTable::new())
            .unwrap();
        assert_eq!(img.base, 0x1000);
        assert_eq!(img.symbol("entry"), Some(0x1004));
        // text 20 @0x1000, data @0x1018 (aligned 8), bss @0x1028
        assert_eq!(img.symbol("state"), Some(0x1028 + 8));
        assert_eq!(img.bytes.len(), 0x22); // through end of data (0x1018+10)
        assert_eq!(img.memory_size, 0x28 + 100);
        assert_eq!(&img.bytes[0..20], &[1u8; 20][..]);
        assert_eq!(&img.bytes[0x18..0x22], &[2u8; 10][..]);
    }

    #[test]
    fn cross_object_symbol_resolution() {
        let a = HofObject::new("a")
            .with_section(Section::text(vec![0; 16]))
            .with_symbol(undefined("b_fn"))
            .with_relocation(Relocation {
                section: 0,
                offset: 0,
                symbol: 0,
                addend: 0,
                kind: RelocKind::Abs64,
            });
        let b = HofObject::new("b")
            .with_section(Section::text(vec![0; 16]))
            .with_symbol(defined("b_fn", 0, 8));
        let img = Linker::new()
            .link(&[a, b], 0x2000, &ExportTable::new())
            .unwrap();
        // b's text follows a's text: 0x2000 + 16 aligned to 16 = 0x2010.
        let expect = 0x2010u64 + 8;
        assert_eq!(img.symbol("b_fn"), Some(expect));
        assert_eq!(&img.bytes[0..8], &expect.to_le_bytes());
    }

    #[test]
    fn firmware_export_resolution() {
        let obj = HofObject::new("m")
            .with_section(Section::text(vec![0; 8]))
            .with_symbol(undefined("hydra_heap_alloc"))
            .with_relocation(Relocation {
                section: 0,
                offset: 0,
                symbol: 0,
                addend: 16,
                kind: RelocKind::Abs64,
            });
        let mut exports = ExportTable::new();
        exports.insert("hydra_heap_alloc", 0xF000);
        let img = Linker::new().link(&[obj], 0x1000, &exports).unwrap();
        assert_eq!(&img.bytes[0..8], &0xF010u64.to_le_bytes());
    }

    #[test]
    fn rel32_is_pc_relative() {
        let obj = HofObject::new("m")
            .with_section(Section::text(vec![0; 32]))
            .with_symbol(defined("target", 0, 24))
            .with_relocation(Relocation {
                section: 0,
                offset: 4,
                symbol: 0,
                addend: 0,
                kind: RelocKind::Rel32,
            });
        let img = Linker::new()
            .link(&[obj], 0x1000, &ExportTable::new())
            .unwrap();
        // target = 0x1018; site end = 0x1004 + 4 = 0x1008; rel = 0x10.
        let rel = i32::from_le_bytes(img.bytes[4..8].try_into().unwrap());
        assert_eq!(rel, 0x10);
    }

    #[test]
    fn unresolved_symbol_fails() {
        let obj = HofObject::new("m")
            .with_section(Section::text(vec![0; 8]))
            .with_symbol(undefined("missing"))
            .with_relocation(Relocation {
                section: 0,
                offset: 0,
                symbol: 0,
                addend: 0,
                kind: RelocKind::Abs64,
            });
        assert_eq!(
            Linker::new().link(&[obj], 0, &ExportTable::new()),
            Err(LinkError::Unresolved("missing".into()))
        );
    }

    #[test]
    fn duplicate_symbol_fails() {
        let mk = || {
            HofObject::new("m")
                .with_section(Section::text(vec![0; 8]))
                .with_symbol(defined("f", 0, 0))
        };
        assert_eq!(
            Linker::new().link(&[mk(), mk()], 0, &ExportTable::new()),
            Err(LinkError::DuplicateSymbol("f".into()))
        );
    }

    #[test]
    fn duplicate_with_export_fails() {
        let obj = HofObject::new("m")
            .with_section(Section::text(vec![0; 8]))
            .with_symbol(defined("hydra_heap_alloc", 0, 0));
        let mut exports = ExportTable::new();
        exports.insert("hydra_heap_alloc", 0xF000);
        assert_eq!(
            Linker::new().link(&[obj], 0, &exports),
            Err(LinkError::DuplicateSymbol("hydra_heap_alloc".into()))
        );
    }

    #[test]
    fn rel32_out_of_range_fails() {
        let obj = HofObject::new("m")
            .with_section(Section::text(vec![0; 8]))
            .with_symbol(undefined("far"))
            .with_relocation(Relocation {
                section: 0,
                offset: 0,
                symbol: 0,
                addend: 0,
                kind: RelocKind::Rel32,
            });
        let mut exports = ExportTable::new();
        exports.insert("far", 0x1_0000_0000_0000);
        assert!(matches!(
            Linker::new().link(&[obj], 0, &exports),
            Err(LinkError::RelocOutOfRange { .. })
        ));
    }

    #[test]
    fn base_address_shifts_everything() {
        let obj = || {
            HofObject::new("m")
                .with_section(Section::text(vec![0; 8]))
                .with_symbol(defined("entry", 0, 0))
        };
        let img1 = Linker::new()
            .link(&[obj()], 0x1000, &ExportTable::new())
            .unwrap();
        let img2 = Linker::new()
            .link(&[obj()], 0x8000, &ExportTable::new())
            .unwrap();
        assert_eq!(img1.symbol("entry"), Some(0x1000));
        assert_eq!(img2.symbol("entry"), Some(0x8000));
    }
}
