//! The HOF (Hydra Object Format) relocatable object file.
//!
//! Offcodes ship as object files that are linked against a device's
//! firmware exports before execution (paper §3.1, §4.2). HOF is a small
//! ELF-shaped format: sections of code/data, a symbol table with defined
//! and undefined entries, and relocations that patch section contents once
//! addresses are known. The format has a complete binary encoding so the
//! loader path can "transfer the Offcode as is" byte-for-byte.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Section classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Executable code.
    Text,
    /// Initialized data.
    Data,
    /// Zero-initialized data (occupies no file space).
    Bss,
}

/// One section of an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section class.
    pub kind: SectionKind,
    /// Contents; for [`SectionKind::Bss`] this must be empty.
    pub bytes: Vec<u8>,
    /// Size; equals `bytes.len()` except for BSS.
    pub size: u32,
    /// Required alignment (power of two).
    pub align: u32,
}

impl Section {
    /// A text section with the given contents.
    pub fn text(bytes: Vec<u8>) -> Self {
        let size = bytes.len() as u32;
        Section {
            kind: SectionKind::Text,
            bytes,
            size,
            align: 16,
        }
    }

    /// A data section with the given contents.
    pub fn data(bytes: Vec<u8>) -> Self {
        let size = bytes.len() as u32;
        Section {
            kind: SectionKind::Data,
            bytes,
            size,
            align: 8,
        }
    }

    /// A BSS section of the given size.
    pub fn bss(size: u32) -> Self {
        Section {
            kind: SectionKind::Bss,
            bytes: Vec::new(),
            size,
            align: 8,
        }
    }
}

/// Symbol binding/definition state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// Defined at (section, offset) in this object.
    Defined {
        /// Index into the object's section list.
        section: u32,
        /// Offset within that section.
        offset: u32,
    },
    /// Referenced here, defined elsewhere (another object or a firmware
    /// export).
    Undefined,
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name (globally scoped).
    pub name: String,
    /// Definition state.
    pub kind: SymbolKind,
}

/// Relocation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocKind {
    /// Write the symbol's absolute 64-bit address (little endian).
    Abs64,
    /// Write a signed 32-bit offset from the end of the field to the
    /// symbol (PC-relative call/jump).
    Rel32,
}

/// One relocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Relocation {
    /// Section whose contents are patched.
    pub section: u32,
    /// Byte offset of the patch site within the section.
    pub offset: u32,
    /// Index into the object's symbol table.
    pub symbol: u32,
    /// Constant added to the resolved address.
    pub addend: i64,
    /// Patch kind.
    pub kind: RelocKind,
}

/// A relocatable object file.
///
/// # Examples
///
/// ```
/// use hydra_link::object::{HofObject, Section, Symbol, SymbolKind};
///
/// let obj = HofObject::new("checksum")
///     .with_section(Section::text(vec![0x90; 16]))
///     .with_symbol(Symbol {
///         name: "checksum_run".into(),
///         kind: SymbolKind::Defined { section: 0, offset: 0 },
///     });
/// let decoded = HofObject::decode(obj.encode()).unwrap();
/// assert_eq!(decoded, obj);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HofObject {
    /// Object (module) name.
    pub name: String,
    /// Sections in order.
    pub sections: Vec<Section>,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Relocations.
    pub relocations: Vec<Relocation>,
}

/// Errors decoding a HOF byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HofError {
    /// Wrong magic number.
    BadMagic,
    /// Stream ended early.
    Truncated,
    /// A field had an invalid value.
    Corrupt(&'static str),
}

impl std::fmt::Display for HofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HofError::BadMagic => f.write_str("not a HOF object (bad magic)"),
            HofError::Truncated => f.write_str("object file truncated"),
            HofError::Corrupt(what) => write!(f, "corrupt object file: {what}"),
        }
    }
}

impl std::error::Error for HofError {}

const HOF_MAGIC: u32 = 0x484F_4631; // "HOF1"

impl HofObject {
    /// Creates an empty object.
    pub fn new(name: impl Into<String>) -> Self {
        HofObject {
            name: name.into(),
            sections: Vec::new(),
            symbols: Vec::new(),
            relocations: Vec::new(),
        }
    }

    /// Adds a section.
    pub fn with_section(mut self, section: Section) -> Self {
        self.sections.push(section);
        self
    }

    /// Adds a symbol.
    pub fn with_symbol(mut self, symbol: Symbol) -> Self {
        self.symbols.push(symbol);
        self
    }

    /// Adds a relocation.
    pub fn with_relocation(mut self, reloc: Relocation) -> Self {
        self.relocations.push(reloc);
        self
    }

    /// Total loaded size (sections padded to their alignment), the number
    /// the device's `AllocateOffcodeMemory` is asked for.
    pub fn load_size(&self) -> u32 {
        let mut addr = 0u32;
        for s in &self.sections {
            let align = s.align.max(1);
            addr = addr.div_ceil(align) * align;
            addr += s.size;
        }
        addr
    }

    /// Names of symbols this object needs resolved externally.
    pub fn undefined_symbols(&self) -> Vec<&str> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Undefined)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Validates internal consistency (indices in range, BSS empty).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), HofError> {
        for s in &self.sections {
            match s.kind {
                SectionKind::Bss => {
                    if !s.bytes.is_empty() {
                        return Err(HofError::Corrupt("bss section with contents"));
                    }
                }
                _ => {
                    if s.bytes.len() != s.size as usize {
                        return Err(HofError::Corrupt("section size mismatch"));
                    }
                }
            }
            if s.align == 0 || !s.align.is_power_of_two() {
                return Err(HofError::Corrupt("alignment not a power of two"));
            }
        }
        for sym in &self.symbols {
            if let SymbolKind::Defined { section, offset } = sym.kind {
                let Some(s) = self.sections.get(section as usize) else {
                    return Err(HofError::Corrupt("symbol section out of range"));
                };
                if offset > s.size {
                    return Err(HofError::Corrupt("symbol offset out of range"));
                }
            }
        }
        for r in &self.relocations {
            let Some(s) = self.sections.get(r.section as usize) else {
                return Err(HofError::Corrupt("relocation section out of range"));
            };
            if s.kind == SectionKind::Bss {
                return Err(HofError::Corrupt("relocation in bss"));
            }
            let field = match r.kind {
                RelocKind::Abs64 => 8,
                RelocKind::Rel32 => 4,
            };
            if r.offset as usize + field > s.bytes.len() {
                return Err(HofError::Corrupt("relocation site out of range"));
            }
            if r.symbol as usize >= self.symbols.len() {
                return Err(HofError::Corrupt("relocation symbol out of range"));
            }
        }
        Ok(())
    }

    /// Encodes to the binary format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32(HOF_MAGIC);
        put_str(&mut b, &self.name);
        b.put_u32(self.sections.len() as u32);
        for s in &self.sections {
            b.put_u8(match s.kind {
                SectionKind::Text => 0,
                SectionKind::Data => 1,
                SectionKind::Bss => 2,
            });
            b.put_u32(s.size);
            b.put_u32(s.align);
            b.put_u32(s.bytes.len() as u32);
            b.put_slice(&s.bytes);
        }
        b.put_u32(self.symbols.len() as u32);
        for sym in &self.symbols {
            put_str(&mut b, &sym.name);
            match sym.kind {
                SymbolKind::Defined { section, offset } => {
                    b.put_u8(1);
                    b.put_u32(section);
                    b.put_u32(offset);
                }
                SymbolKind::Undefined => b.put_u8(0),
            }
        }
        b.put_u32(self.relocations.len() as u32);
        for r in &self.relocations {
            b.put_u32(r.section);
            b.put_u32(r.offset);
            b.put_u32(r.symbol);
            b.put_i64(r.addend);
            b.put_u8(match r.kind {
                RelocKind::Abs64 => 0,
                RelocKind::Rel32 => 1,
            });
        }
        b.freeze()
    }

    /// Decodes from the binary format and validates.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, truncation, or inconsistent indices.
    pub fn decode(mut raw: Bytes) -> Result<HofObject, HofError> {
        if raw.remaining() < 4 {
            return Err(HofError::Truncated);
        }
        if raw.get_u32() != HOF_MAGIC {
            return Err(HofError::BadMagic);
        }
        let name = get_str(&mut raw)?;
        let nsec = get_u32(&mut raw)? as usize;
        if nsec > 1 << 16 {
            return Err(HofError::Corrupt("unreasonable section count"));
        }
        let mut sections = Vec::with_capacity(nsec);
        for _ in 0..nsec {
            if raw.remaining() < 1 {
                return Err(HofError::Truncated);
            }
            let kind = match raw.get_u8() {
                0 => SectionKind::Text,
                1 => SectionKind::Data,
                2 => SectionKind::Bss,
                _ => return Err(HofError::Corrupt("unknown section kind")),
            };
            let size = get_u32(&mut raw)?;
            let align = get_u32(&mut raw)?;
            let blen = get_u32(&mut raw)? as usize;
            if raw.remaining() < blen {
                return Err(HofError::Truncated);
            }
            let bytes = raw.split_to(blen).to_vec();
            sections.push(Section {
                kind,
                bytes,
                size,
                align,
            });
        }
        let nsym = get_u32(&mut raw)? as usize;
        if nsym > 1 << 20 {
            return Err(HofError::Corrupt("unreasonable symbol count"));
        }
        let mut symbols = Vec::with_capacity(nsym);
        for _ in 0..nsym {
            let name = get_str(&mut raw)?;
            if raw.remaining() < 1 {
                return Err(HofError::Truncated);
            }
            let kind = match raw.get_u8() {
                1 => SymbolKind::Defined {
                    section: get_u32(&mut raw)?,
                    offset: get_u32(&mut raw)?,
                },
                0 => SymbolKind::Undefined,
                _ => return Err(HofError::Corrupt("unknown symbol kind")),
            };
            symbols.push(Symbol { name, kind });
        }
        let nrel = get_u32(&mut raw)? as usize;
        if nrel > 1 << 20 {
            return Err(HofError::Corrupt("unreasonable relocation count"));
        }
        let mut relocations = Vec::with_capacity(nrel);
        for _ in 0..nrel {
            let section = get_u32(&mut raw)?;
            let offset = get_u32(&mut raw)?;
            let symbol = get_u32(&mut raw)?;
            if raw.remaining() < 9 {
                return Err(HofError::Truncated);
            }
            let addend = raw.get_i64();
            let kind = match raw.get_u8() {
                0 => RelocKind::Abs64,
                1 => RelocKind::Rel32,
                _ => return Err(HofError::Corrupt("unknown relocation kind")),
            };
            relocations.push(Relocation {
                section,
                offset,
                symbol,
                addend,
                kind,
            });
        }
        let obj = HofObject {
            name,
            sections,
            symbols,
            relocations,
        };
        obj.validate()?;
        Ok(obj)
    }
}

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u16(s.len() as u16);
    b.put_slice(s.as_bytes());
}

fn get_str(raw: &mut Bytes) -> Result<String, HofError> {
    if raw.remaining() < 2 {
        return Err(HofError::Truncated);
    }
    let n = raw.get_u16() as usize;
    if raw.remaining() < n {
        return Err(HofError::Truncated);
    }
    String::from_utf8(raw.split_to(n).to_vec()).map_err(|_| HofError::Corrupt("non-utf8 name"))
}

fn get_u32(raw: &mut Bytes) -> Result<u32, HofError> {
    if raw.remaining() < 4 {
        return Err(HofError::Truncated);
    }
    Ok(raw.get_u32())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HofObject {
        HofObject::new("streamer")
            .with_section(Section::text(vec![0xAA; 100]))
            .with_section(Section::data(vec![0xBB; 40]))
            .with_section(Section::bss(64))
            .with_symbol(Symbol {
                name: "streamer_entry".into(),
                kind: SymbolKind::Defined {
                    section: 0,
                    offset: 0,
                },
            })
            .with_symbol(Symbol {
                name: "hydra_heap_alloc".into(),
                kind: SymbolKind::Undefined,
            })
            .with_relocation(Relocation {
                section: 0,
                offset: 16,
                symbol: 1,
                addend: 0,
                kind: RelocKind::Abs64,
            })
            .with_relocation(Relocation {
                section: 0,
                offset: 32,
                symbol: 0,
                addend: 4,
                kind: RelocKind::Rel32,
            })
    }

    #[test]
    fn encode_decode_round_trip() {
        let obj = sample();
        assert_eq!(HofObject::decode(obj.encode()).unwrap(), obj);
    }

    #[test]
    fn load_size_respects_alignment() {
        // text 100 @16 -> 0..100; data 40 @8 -> 104..144; bss 64 @8 -> 144..208
        assert_eq!(sample().load_size(), 208);
        assert_eq!(HofObject::new("empty").load_size(), 0);
    }

    #[test]
    fn undefined_symbols_listed() {
        assert_eq!(sample().undefined_symbols(), vec!["hydra_heap_alloc"]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = sample().encode().to_vec();
        raw[0] = 0;
        assert_eq!(HofObject::decode(Bytes::from(raw)), Err(HofError::BadMagic));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let raw = sample().encode();
        for cut in 0..raw.len() {
            let r = HofObject::decode(raw.slice(0..cut));
            assert!(r.is_err(), "decode succeeded on {cut}-byte prefix");
        }
    }

    #[test]
    fn validate_rejects_bss_with_contents() {
        let mut obj = sample();
        obj.sections[2].bytes = vec![1];
        assert_eq!(
            obj.validate(),
            Err(HofError::Corrupt("bss section with contents"))
        );
    }

    #[test]
    fn validate_rejects_out_of_range_symbol() {
        let obj = HofObject::new("x")
            .with_section(Section::text(vec![0; 8]))
            .with_symbol(Symbol {
                name: "s".into(),
                kind: SymbolKind::Defined {
                    section: 5,
                    offset: 0,
                },
            });
        assert_eq!(
            obj.validate(),
            Err(HofError::Corrupt("symbol section out of range"))
        );
    }

    #[test]
    fn validate_rejects_reloc_site_past_end() {
        let obj = HofObject::new("x")
            .with_section(Section::text(vec![0; 8]))
            .with_symbol(Symbol {
                name: "s".into(),
                kind: SymbolKind::Undefined,
            })
            .with_relocation(Relocation {
                section: 0,
                offset: 4, // Abs64 needs 8 bytes; only 4 remain
                symbol: 0,
                addend: 0,
                kind: RelocKind::Abs64,
            });
        assert_eq!(
            obj.validate(),
            Err(HofError::Corrupt("relocation site out of range"))
        );
    }

    #[test]
    fn validate_rejects_bad_alignment() {
        let mut obj = sample();
        obj.sections[0].align = 3;
        assert_eq!(
            obj.validate(),
            Err(HofError::Corrupt("alignment not a power of two"))
        );
    }
}
